"""§6.3 window-query helpers vs their linear-scan references."""

import pytest

from repro.core.dominance import Preference
from repro.core.tuples import UncertainTuple
from repro.index.prtree import PRTree
from repro.index.window import (
    dominance_window,
    linear_dominators,
    linear_dominators_product,
    window_tuples,
)

from ..conftest import make_random_database


class TestDominanceWindow:
    def test_window_spans_origin_to_target(self):
        db = make_random_database(50, 2, seed=1, grid=10)
        tree = PRTree.build(db)
        target = UncertainTuple(999, (5.0, 5.0), 0.5)
        window = dominance_window(tree, target)
        assert window.upper == (5.0, 5.0)
        assert window.lower == tree.root.rect.lower

    def test_empty_tree_degenerate_window(self):
        tree = PRTree()
        target = UncertainTuple(999, (5.0, 5.0), 0.5)
        window = dominance_window(tree, target)
        assert window.lower == window.upper == (5.0, 5.0)

    def test_window_respects_preference_projection(self):
        db = make_random_database(50, 2, seed=2, grid=10)
        pref = Preference.of("min,max")
        tree = PRTree.build(db, preference=pref)
        target = UncertainTuple(999, (5.0, 5.0), 0.5)
        window = dominance_window(tree, target)
        assert window.upper == (5.0, -5.0)


class TestWindowTuples:
    def test_matches_linear_reference(self):
        db = make_random_database(300, 2, seed=3, grid=8)
        tree = PRTree.build(db)
        for t in db[::29]:
            expected = {s.key for s in linear_dominators(db, t)}
            assert {s.key for s in window_tuples(tree, t)} == expected

    def test_refinement_drops_window_ties(self):
        """The rectangular window over-approximates; ties must be filtered."""
        db = [
            UncertainTuple(0, (1.0, 1.0), 0.5),  # the target's own point
            UncertainTuple(1, (1.0, 0.5), 0.5),  # dominates
            UncertainTuple(2, (1.0, 1.0), 0.5),  # tie: inside window, no dominance
        ]
        tree = PRTree.build(db)
        assert {s.key for s in window_tuples(tree, db[0])} == {1}

    def test_with_preference(self):
        db = make_random_database(150, 2, seed=4, grid=8)
        pref = Preference.of("max,min")
        tree = PRTree.build(db, preference=pref)
        for t in db[::17]:
            expected = {s.key for s in linear_dominators(db, t, pref)}
            assert {s.key for s in window_tuples(tree, t)} == expected


class TestLinearReferences:
    def test_product_reference_matches_tree(self):
        db = make_random_database(200, 3, seed=5, grid=8)
        tree = PRTree.build(db)
        for t in db[::31]:
            assert tree.dominators_product(t) == pytest.approx(
                linear_dominators_product(db, t), abs=1e-12
            )

    def test_product_of_no_dominators(self):
        db = [UncertainTuple(0, (0.0, 1.0), 0.5), UncertainTuple(1, (1.0, 0.0), 0.5)]
        assert linear_dominators_product(db, db[0]) == 1.0

"""PR-tree: probability aggregates and the §6.3 dominator-product probe."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.probability import non_occurrence_product
from repro.core.tuples import UncertainTuple
from repro.index.prtree import PRTree

from ..conftest import make_random_database


class TestAggregates:
    def test_p1_p2_match_paper_semantics(self):
        """P1 = min, P2 = max occurrence probability under each entry (Fig. 5)."""
        db = [
            UncertainTuple(0, (0.0, 0.0), 0.6),
            UncertainTuple(1, (0.1, 0.1), 0.4),
            UncertainTuple(2, (0.2, 0.2), 0.2),
        ]
        tree = PRTree.build(db)
        assert tree.root.aggregate.p_min == pytest.approx(0.2)
        assert tree.root.aggregate.p_max == pytest.approx(0.6)

    def test_aggregates_maintained_through_mutation(self):
        db = make_random_database(300, 2, seed=1)
        tree = PRTree(max_entries=6)
        for t in db:
            tree.add(t)
        tree.check_invariants()
        for t in db[:150]:
            assert tree.remove(t)
        tree.check_invariants()
        live = db[150:]
        assert tree.root.aggregate.p_min == pytest.approx(
            min(t.probability for t in live)
        )
        assert tree.root.aggregate.p_max == pytest.approx(
            max(t.probability for t in live)
        )

    def test_store_products_off_leaves_products_neutral(self):
        db = make_random_database(100, 2, seed=2)
        tree = PRTree.build(db, store_products=False)
        tree.check_invariants()
        assert tree.root.aggregate.non_occurrence == 1.0


class TestDominatorsProduct:
    @pytest.mark.parametrize("store_products", [True, False])
    def test_matches_linear_scan(self, store_products):
        db = make_random_database(400, 2, seed=3, grid=12)
        tree = PRTree.build(db, store_products=store_products)
        for t in db[::17]:
            expected = non_occurrence_product(t, db)
            assert tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    def test_excludes_target_itself(self):
        db = [UncertainTuple(0, (1.0, 1.0), 0.5), UncertainTuple(1, (1.0, 1.0), 0.5)]
        tree = PRTree.build(db)
        # identical points never dominate each other
        assert tree.dominators_product(db[0]) == 1.0

    def test_foreign_tuple_probe(self):
        db = make_random_database(200, 2, seed=4, grid=10)
        tree = PRTree.build(db)
        foreign = UncertainTuple(5555, (5.0, 5.0), 0.7)
        expected = non_occurrence_product(foreign, db)
        assert tree.dominators_product(foreign) == pytest.approx(expected, abs=1e-12)

    def test_floor_early_exit_upper_bounds(self):
        db = make_random_database(500, 2, seed=5, grid=5)
        tree = PRTree.build(db)
        for t in db[::23]:
            exact = non_occurrence_product(t, db)
            floored = tree.dominators_product(t, floor=0.3)
            if exact >= 0.3:
                assert floored == pytest.approx(exact, abs=1e-12)
            else:
                assert floored < 0.3

    def test_with_max_preference(self):
        db = make_random_database(200, 2, seed=6, grid=10)
        pref = Preference.of("min,max")
        tree = PRTree.build(db, preference=pref)
        for t in db[::13]:
            expected = non_occurrence_product(t, db, pref)
            assert tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    def test_with_subspace_preference(self):
        db = make_random_database(200, 3, seed=7, grid=10)
        pref = Preference(subspace=(0, 2))
        tree = PRTree.build(db, preference=pref)
        for t in db[::13]:
            expected = non_occurrence_product(t, db, pref)
            assert tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    def test_probe_after_mutations(self):
        db = make_random_database(300, 2, seed=8, grid=10)
        tree = PRTree.build(db, max_entries=6)
        removed = db[:100]
        for t in removed:
            tree.remove(t)
        extra = make_random_database(50, 2, seed=9, grid=10, start_key=5000)
        for t in extra:
            tree.add(t)
        live = db[100:] + extra
        for t in live[::19]:
            expected = non_occurrence_product(t, live)
            assert tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    @given(st.integers(min_value=0, max_value=10_000), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_probe_equivalence_property(self, seed, store_products):
        db = make_random_database(60, 2, seed=seed, grid=6)
        tree = PRTree.build(db, store_products=store_products, max_entries=4)
        rng = random.Random(seed)
        for _ in range(5):
            t = rng.choice(db)
            expected = non_occurrence_product(t, db)
            assert tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    def test_node_access_counter_advances(self):
        db = make_random_database(200, 2, seed=10)
        tree = PRTree.build(db)
        before = tree.node_accesses
        tree.dominators_product(db[0])
        assert tree.node_accesses > before


class TestDominators:
    def test_dominators_listing(self):
        db = [
            UncertainTuple(0, (0.0, 0.0), 0.5),
            UncertainTuple(1, (1.0, 1.0), 0.5),
            UncertainTuple(2, (2.0, 0.5), 0.5),
        ]
        tree = PRTree.build(db)
        keys = {t.key for t in tree.dominators(db[1])}
        assert keys == {0}

    def test_tuples_roundtrip(self):
        db = make_random_database(80, 2, seed=11)
        tree = PRTree.build(db)
        assert {t.key for t in tree.tuples()} == {t.key for t in db}

"""The uniform grid index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.probability import non_occurrence_product
from repro.core.tuples import UncertainTuple
from repro.index.grid import GridIndex

from ..conftest import make_random_database


class TestConstruction:
    def test_build_and_size(self):
        db = make_random_database(300, 2, seed=1)
        grid = GridIndex.build(db)
        assert len(grid) == 300
        assert {t.key for t in grid.tuples()} == {t.key for t in db}
        grid.check_invariants()

    def test_cells_per_dim_validation(self):
        with pytest.raises(ValueError):
            GridIndex(cells_per_dim=0)

    def test_empty_grid(self):
        grid = GridIndex.build([])
        assert len(grid) == 0
        assert grid.dominators_product(UncertainTuple(0, (1.0, 1.0), 0.5)) == 1.0


class TestMutation:
    def test_add_remove_roundtrip(self):
        db = make_random_database(200, 2, seed=2)
        grid = GridIndex.build(db[:100])
        for t in db[100:]:
            grid.add(t)
        grid.check_invariants()
        for t in db[:150]:
            assert grid.remove(t)
        grid.check_invariants()
        assert len(grid) == 50

    def test_remove_missing(self):
        grid = GridIndex.build(make_random_database(20, 2, seed=3))
        assert not grid.remove(UncertainTuple(9999, (0.5, 0.5), 0.5))

    def test_add_outside_build_domain_clamps(self):
        db = make_random_database(50, 2, seed=4)
        grid = GridIndex.build(db)
        outlier = UncertainTuple(9999, (99.0, -99.0), 0.5)
        grid.add(outlier)
        grid.check_invariants()
        assert 9999 in {t.key for t in grid.tuples()}

    def test_add_to_empty_grid(self):
        grid = GridIndex()
        t = UncertainTuple(0, (1.0, 2.0), 0.5)
        grid.add(t)
        assert len(grid) == 1
        grid.check_invariants()


class TestProbe:
    @pytest.mark.parametrize("cells", [1, 4, 16, 64])
    def test_matches_linear_scan(self, cells):
        db = make_random_database(300, 2, seed=5, grid=12)
        index = GridIndex.build(db, cells_per_dim=cells)
        for t in db[::23]:
            expected = non_occurrence_product(t, db)
            assert index.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    def test_foreign_probe_and_floor(self):
        db = make_random_database(400, 2, seed=6, grid=8)
        index = GridIndex.build(db)
        foreign = UncertainTuple(7777, (6.0, 6.0), 0.9)
        exact = non_occurrence_product(foreign, db)
        assert index.dominators_product(foreign) == pytest.approx(exact, abs=1e-12)
        floored = index.dominators_product(foreign, floor=0.5)
        if exact >= 0.5:
            assert floored == pytest.approx(exact)
        else:
            assert floored < 0.5

    def test_probe_after_outlier_insertions(self):
        db = make_random_database(200, 2, seed=7, grid=10)
        index = GridIndex.build(db)
        outliers = [
            UncertainTuple(9000 + i, (-1.0 - i, -1.0), 0.5) for i in range(5)
        ]
        for t in outliers:
            index.add(t)
        live = db + outliers
        for t in live[::17]:
            expected = non_occurrence_product(t, live)
            assert index.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    def test_with_preference(self):
        db = make_random_database(200, 2, seed=8, grid=10)
        pref = Preference.of("min,max")
        index = GridIndex.build(db, preference=pref)
        for t in db[::19]:
            expected = non_occurrence_product(t, db, pref)
            assert index.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([2, 5, 10]))
    @settings(max_examples=25, deadline=None)
    def test_probe_equivalence_property(self, seed, cells):
        db = make_random_database(60, 2, seed=seed, grid=6)
        index = GridIndex.build(db, cells_per_dim=cells)
        rng = random.Random(seed)
        for _ in range(5):
            t = rng.choice(db)
            expected = non_occurrence_product(t, db)
            assert index.dominators_product(t) == pytest.approx(expected, abs=1e-12)


class TestSiteIntegration:
    def test_grid_backed_sites_answer_correctly(self):
        from repro.core.prob_skyline import prob_skyline_sfs
        from repro.distributed.query import distributed_skyline
        from repro.distributed.site import SiteConfig

        db = make_random_database(400, 2, seed=9, grid=10)
        partitions = [db[i::4] for i in range(4)]
        central = prob_skyline_sfs(db, 0.3)
        result = distributed_skyline(
            partitions, 0.3, algorithm="edsud",
            site_config=SiteConfig(index_kind="grid"),
        )
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_unknown_index_kind_rejected(self):
        from repro.distributed.site import LocalSite, SiteConfig

        with pytest.raises(ValueError, match="index kind"):
            LocalSite(0, make_random_database(5, 2, seed=10),
                      config=SiteConfig(index_kind="btree"))

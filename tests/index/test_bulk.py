"""STR bulk loading: packing quality and invariant preservation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bulk import even_chunks, str_bulk_load
from repro.index.geometry import Rect
from repro.index.prtree import PRTree
from repro.index.rtree import IndexedItem, RTree

from ..conftest import make_random_database


def items_for(db):
    return [IndexedItem(t.key, t.values, t.probability, payload=t) for t in db]


class TestEvenChunks:
    def test_even_split(self):
        assert even_chunks(list(range(10)), 2) == [list(range(5)), list(range(5, 10))]

    def test_uneven_sizes_differ_by_at_most_one(self):
        chunks = even_chunks(list(range(17)), 5)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == 17
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items_drops_empties(self):
        chunks = even_chunks([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            even_chunks([1], 0)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=20))
    def test_partition_property(self, n, k):
        chunks = even_chunks(list(range(n)), k)
        flat = [x for c in chunks for x in c]
        assert flat == list(range(n))
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestStrBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 15, 16, 17, 100, 1000])
    def test_invariants_across_sizes(self, n):
        db = make_random_database(n, 2, seed=n)
        tree = str_bulk_load(RTree(max_entries=16), items_for(db))
        assert len(tree) == n
        tree.check_invariants()

    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_dimensionalities(self, d):
        db = make_random_database(300, d, seed=d)
        tree = str_bulk_load(RTree(max_entries=8), items_for(db))
        tree.check_invariants()
        assert {i.key for i in tree.items()} == {t.key for t in db}

    def test_requires_empty_tree(self):
        db = make_random_database(10, 2, seed=1)
        tree = RTree()
        tree.insert(items_for(db)[0])
        with pytest.raises(ValueError, match="empty"):
            str_bulk_load(tree, items_for(db)[1:])

    def test_height_near_optimal(self):
        n, cap = 4096, 16
        db = make_random_database(n, 2, seed=2)
        tree = str_bulk_load(RTree(max_entries=cap), items_for(db))
        optimal = math.ceil(math.log(n, cap))
        assert tree.height <= optimal + 1

    def test_search_after_bulk_load(self):
        db = make_random_database(800, 3, seed=3)
        tree = str_bulk_load(RTree(max_entries=12), items_for(db))
        window = Rect((0.0, 0.0, 0.0), (0.5, 0.5, 0.5))
        expected = {t.key for t in db if window.contains_point(t.values)}
        assert {i.key for i in tree.search_window(window)} == expected

    def test_mutations_after_bulk_load(self):
        db = make_random_database(200, 2, seed=4)
        tree = str_bulk_load(RTree(max_entries=8), items_for(db))
        for t in db[:50]:
            assert tree.delete(t.key, t.values)
        extra = make_random_database(30, 2, seed=5, start_key=1000)
        for item in items_for(extra):
            tree.insert(item)
        tree.check_invariants()
        assert len(tree) == 180

    def test_prtree_aggregates_populated(self):
        """Bulk loading through the subclass hook fills P1/P2/products."""
        db = make_random_database(500, 2, seed=6)
        tree = PRTree.build(db, max_entries=8)
        tree.check_invariants()
        agg = tree.root.aggregate
        assert agg.p_min == pytest.approx(min(t.probability for t in db))
        assert agg.p_max == pytest.approx(max(t.probability for t in db))
        expected_product = 1.0
        for t in db:
            expected_product *= 1.0 - t.probability
        assert agg.non_occurrence == pytest.approx(expected_product, abs=1e-12)

    @given(st.integers(min_value=0, max_value=500), st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=25, deadline=None)
    def test_invariants_property(self, n, cap):
        db = make_random_database(n, 2, seed=n + cap)
        tree = str_bulk_load(RTree(max_entries=cap), items_for(db))
        tree.check_invariants()

"""R-tree structure: insert, delete, split, search, and invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.geometry import Rect
from repro.index.rtree import IndexedItem, RTree

from ..conftest import make_random_database


def items_for(db):
    return [IndexedItem(t.key, t.values, t.probability, payload=t) for t in db]


def build_tree(n, seed=0, d=2, max_entries=8):
    tree = RTree(max_entries=max_entries)
    db = make_random_database(n, d, seed=seed)
    for item in items_for(db):
        tree.insert(item)
    return tree, db


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1
        tree.check_invariants()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)


class TestInsert:
    def test_growth_and_invariants(self):
        tree, db = build_tree(300, seed=1)
        assert len(tree) == 300
        assert tree.height >= 2
        tree.check_invariants()

    def test_items_iteration_complete(self):
        tree, db = build_tree(120, seed=2)
        assert {i.key for i in tree.items()} == {t.key for t in db}

    def test_duplicate_points_coexist(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert(IndexedItem(i, (1.0, 1.0), 0.5))
        assert len(tree) == 20
        tree.check_invariants()

    def test_root_split_produces_uniform_depth(self):
        tree, _ = build_tree(500, seed=3, max_entries=4)
        tree.check_invariants()  # includes uniform leaf depth
        assert tree.height >= 4


class TestSearch:
    def test_window_search_matches_linear_scan(self):
        tree, db = build_tree(250, seed=4)
        window = Rect((0.2, 0.3), (0.7, 0.9))
        expected = {t.key for t in db if window.contains_point(t.values)}
        found = {i.key for i in tree.search_window(window)}
        assert found == expected

    def test_search_empty_tree(self):
        tree = RTree()
        assert list(tree.search_window(Rect((0.0,), (1.0,)))) == []

    def test_find_existing(self):
        tree, db = build_tree(100, seed=5)
        target = db[42]
        item = tree.find(target.key, target.values)
        assert item is not None and item.key == target.key

    def test_find_missing(self):
        tree, _ = build_tree(50, seed=6)
        assert tree.find(99999, (0.5, 0.5)) is None


class TestDelete:
    def test_delete_all_one_by_one(self):
        tree, db = build_tree(150, seed=7, max_entries=6)
        order = list(db)
        random.Random(0).shuffle(order)
        for i, t in enumerate(order):
            assert tree.delete(t.key, t.values)
            if i % 25 == 0:
                tree.check_invariants()
        assert len(tree) == 0
        tree.check_invariants()

    def test_delete_missing_returns_false(self):
        tree, _ = build_tree(50, seed=8)
        assert not tree.delete(99999, (0.5, 0.5))
        assert len(tree) == 50

    def test_delete_then_search_consistent(self):
        tree, db = build_tree(120, seed=9)
        removed = {t.key for t in db[:60]}
        for t in db[:60]:
            assert tree.delete(t.key, t.values)
        tree.check_invariants()
        remaining = {i.key for i in tree.items()}
        assert remaining == {t.key for t in db} - removed

    def test_root_collapse_after_mass_delete(self):
        tree, db = build_tree(400, seed=10, max_entries=4)
        high = tree.height
        for t in db[:390]:
            tree.delete(t.key, t.values)
        tree.check_invariants()
        assert tree.height < high


class TestRandomizedWorkload:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_mixed_insert_delete_keeps_invariants(self, seed):
        rng = random.Random(seed)
        tree = RTree(max_entries=5)
        live = {}
        key = 0
        for _ in range(rng.randrange(30, 120)):
            if live and rng.random() < 0.4:
                k = rng.choice(list(live))
                assert tree.delete(k, live.pop(k))
            else:
                values = (float(rng.randrange(10)), float(rng.randrange(10)))
                tree.insert(IndexedItem(key, values, 0.5))
                live[key] = values
                key += 1
        tree.check_invariants()
        assert {i.key for i in tree.items()} == set(live)

    def test_aggregate_count_tracks_size(self):
        tree, db = build_tree(200, seed=11)
        assert tree.root.aggregate.count == 200
        for t in db[:77]:
            tree.delete(t.key, t.values)
        assert tree.root.aggregate.count == 123

"""Stateful property testing of the PR-tree under arbitrary workloads.

Hypothesis drives random interleavings of insert/delete/probe against a
dictionary model; every step the tree must answer probes exactly like a
linear scan, and the structural invariants (MBRs, fill factors, uniform
depth, P1/P2/product aggregates) must hold.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.probability import non_occurrence_product
from repro.core.tuples import UncertainTuple
from repro.index.prtree import PRTree

values_strategy = st.tuples(
    st.integers(min_value=0, max_value=8).map(float),
    st.integers(min_value=0, max_value=8).map(float),
)
prob_strategy = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


class PRTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = PRTree(max_entries=4)
        self.model = {}
        self.next_key = 0

    @rule(values=values_strategy, prob=prob_strategy)
    def insert(self, values, prob):
        t = UncertainTuple(self.next_key, values, prob)
        self.next_key += 1
        self.tree.add(t)
        self.model[t.key] = t

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        t = self.model.pop(key)
        assert self.tree.remove(t)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def probe_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        t = self.model[key]
        expected = non_occurrence_product(t, self.model.values())
        assert self.tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    @rule(values=values_strategy, prob=prob_strategy)
    def probe_foreign(self, values, prob):
        t = UncertainTuple(10_000_000, values, prob)
        expected = non_occurrence_product(t, self.model.values())
        assert self.tree.dominators_product(t) == pytest.approx(expected, abs=1e-12)

    @invariant()
    def structure_is_sound(self):
        self.tree.check_invariants()

    @invariant()
    def contents_match_model(self):
        assert {i.key for i in self.tree.items()} == set(self.model)


PRTreeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestPRTreeStateful = PRTreeMachine.TestCase

"""BBS probabilistic skyline over the PR-tree (§6.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.prob_skyline import prob_skyline_brute_force
from repro.core.tuples import UncertainTuple
from repro.index.bbs import bbs_prob_skyline, bbs_prob_skyline_progressive
from repro.index.prtree import PRTree

from ..conftest import make_random_database


class TestCorrectness:
    @pytest.mark.parametrize("q", [0.1, 0.3, 0.6, 0.9, 1.0])
    def test_matches_brute_force(self, q):
        db = make_random_database(300, 2, seed=1, grid=10)
        tree = PRTree.build(db)
        assert bbs_prob_skyline(tree, q).agrees_with(prob_skyline_brute_force(db, q))

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_dimensionalities(self, d):
        db = make_random_database(200, d, seed=d, grid=8)
        tree = PRTree.build(db)
        assert bbs_prob_skyline(tree, 0.3).agrees_with(
            prob_skyline_brute_force(db, 0.3)
        )

    def test_empty_tree(self):
        assert len(bbs_prob_skyline(PRTree(), 0.5)) == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            bbs_prob_skyline(PRTree(), 0.0)

    def test_with_preference(self):
        db = make_random_database(200, 2, seed=5, grid=8)
        pref = Preference.of("max,min")
        tree = PRTree.build(db, preference=pref)
        assert bbs_prob_skyline(tree, 0.3).agrees_with(
            prob_skyline_brute_force(db, 0.3, pref)
        )

    def test_without_product_aggregate(self):
        db = make_random_database(200, 2, seed=6, grid=8)
        tree = PRTree.build(db, store_products=False)
        assert bbs_prob_skyline(tree, 0.3).agrees_with(
            prob_skyline_brute_force(db, 0.3)
        )

    def test_after_dynamic_construction(self):
        db = make_random_database(250, 2, seed=7, grid=8)
        tree = PRTree(max_entries=5)
        for t in db:
            tree.add(t)
        assert bbs_prob_skyline(tree, 0.3).agrees_with(
            prob_skyline_brute_force(db, 0.3)
        )

    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([0.2, 0.4, 0.7]))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed, q):
        db = make_random_database(70, 2, seed=seed, grid=6)
        tree = PRTree.build(db, max_entries=4)
        assert bbs_prob_skyline(tree, q).agrees_with(prob_skyline_brute_force(db, q))


class TestProgressiveness:
    def test_yields_in_mindist_order(self):
        db = make_random_database(300, 2, seed=8, grid=12)
        tree = PRTree.build(db)
        sums = [
            sum(m.tuple.values)
            for m in bbs_prob_skyline_progressive(tree, 0.3)
        ]
        assert sums == sorted(sums)

    def test_first_result_without_full_consumption(self):
        db = make_random_database(500, 2, seed=9)
        tree = PRTree.build(db)
        gen = bbs_prob_skyline_progressive(tree, 0.2)
        first = next(gen)
        assert first.probability >= 0.2

    def test_low_probability_subtrees_pruned(self):
        """A cluster of sub-threshold tuples should be skipped wholesale."""
        dominators = [UncertainTuple(0, (0.0, 0.0), 0.99)]
        chaff = [
            UncertainTuple(1 + i, (5.0 + (i % 10) * 0.01, 5.0 + (i // 10) * 0.01), 0.9)
            for i in range(100)
        ]
        tree = PRTree.build(dominators + chaff, max_entries=8)
        tree.node_accesses = 0
        answer = bbs_prob_skyline(tree, 0.5)
        assert answer.keys() == [0]
        # The chaff cluster is dominated by a 0.99 tuple: bound = 0.9 *
        # 0.01 << q, so its subtrees never enter the heap.  Accesses
        # stay far below the full node count.
        assert tree.node_accesses < 40

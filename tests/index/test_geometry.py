"""MBR geometry unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.geometry import Rect

coords = st.lists(st.integers(min_value=-5, max_value=5).map(float), min_size=2, max_size=2)


def rect_from(a, b):
    lower = tuple(min(x, y) for x, y in zip(a, b))
    upper = tuple(max(x, y) for x, y in zip(a, b))
    return Rect(lower, upper)


class TestConstruction:
    def test_valid(self):
        r = Rect((0.0, 0.0), (1.0, 2.0))
        assert r.dimensionality == 2

    def test_degenerate_point(self):
        r = Rect.from_point((3.0, 4.0))
        assert r.lower == r.upper == (3.0, 4.0)
        assert r.area() == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Rect((1.0,), (0.0,))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 2.0))


class TestMetrics:
    def test_area(self):
        assert Rect((0.0, 0.0), (2.0, 3.0)).area() == pytest.approx(6.0)

    def test_margin(self):
        assert Rect((0.0, 0.0), (2.0, 3.0)).margin() == pytest.approx(5.0)

    def test_enlargement(self):
        base = Rect((0.0, 0.0), (1.0, 1.0))
        other = Rect((2.0, 2.0), (3.0, 3.0))
        # union is [0,3]^2 with area 9
        assert base.enlargement(other) == pytest.approx(8.0)

    def test_enlargement_zero_when_contained(self):
        base = Rect((0.0, 0.0), (4.0, 4.0))
        inner = Rect((1.0, 1.0), (2.0, 2.0))
        assert base.enlargement(inner) == 0.0

    def test_min_coordinate_sum_handles_negative_space(self):
        r = Rect((-3.0, 1.0), (0.0, 5.0))
        assert r.min_coordinate_sum() == pytest.approx(-2.0)


class TestUnion:
    def test_union_of_multiple(self):
        r = Rect.union_of([Rect.from_point((0, 0)), Rect.from_point((2, 1)),
                           Rect.from_point((1, 3))])
        assert r == Rect((0.0, 0.0), (2.0, 3.0))

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.union_of([])

    @given(coords, coords, coords, coords)
    def test_union_contains_both(self, a, b, c, d):
        r1, r2 = rect_from(a, b), rect_from(c, d)
        u = r1.union(r2)
        assert u.contains_rect(r1) and u.contains_rect(r2)

    @given(coords, coords, coords, coords)
    def test_union_commutative(self, a, b, c, d):
        r1, r2 = rect_from(a, b), rect_from(c, d)
        assert r1.union(r2) == r2.union(r1)


class TestPredicates:
    def test_intersects_touching_edges(self):
        assert Rect((0.0,), (1.0,)).intersects(Rect((1.0,), (2.0,)))

    def test_disjoint(self):
        assert not Rect((0.0,), (1.0,)).intersects(Rect((1.5,), (2.0,)))

    def test_contains_point_boundary(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.contains_point((1.0, 0.0))
        assert not r.contains_point((1.1, 0.0))

    @given(coords, coords, coords, coords)
    def test_intersects_symmetric(self, a, b, c, d):
        r1, r2 = rect_from(a, b), rect_from(c, d)
        assert r1.intersects(r2) == r2.intersects(r1)


class TestDominanceRegionPredicates:
    def test_fully_inside(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.fully_inside_dominance_region((2.0, 2.0))
        assert r.fully_inside_dominance_region((1.0, 2.0))  # tie on one dim OK

    def test_equal_upper_not_fully_inside(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert not r.fully_inside_dominance_region((1.0, 1.0))

    def test_disjoint_from_region(self):
        r = Rect((3.0, 0.0), (4.0, 1.0))
        assert r.disjoint_from_dominance_region((2.0, 9.0))

    def test_boundary_overlap_not_disjoint(self):
        # lower corner exactly at the target: only equal points, but the
        # conservative test must keep it (leaf check refines).
        r = Rect((2.0, 2.0), (3.0, 3.0))
        assert not r.disjoint_from_dominance_region((2.0, 2.0))

    @given(coords, coords, coords)
    def test_predicates_never_both_true(self, a, b, target):
        r = rect_from(a, b)
        assert not (
            r.fully_inside_dominance_region(target)
            and r.disjoint_from_dominance_region(target)
        )

"""Space-filling curves and curve-based bulk loading."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bulk import curve_bulk_load
from repro.index.prtree import PRTree
from repro.index.rtree import IndexedItem, RTree
from repro.index.space_filling import (
    hilbert_coords,
    hilbert_index,
    morton_index,
    quantize,
)

from ..conftest import make_random_database


class TestQuantize:
    def test_corners(self):
        assert quantize((0.0, 0.0), (0.0, 0.0), (1.0, 1.0), 4) == (0, 0)
        assert quantize((1.0, 1.0), (0.0, 0.0), (1.0, 1.0), 4) == (15, 15)

    def test_out_of_domain_clamps(self):
        assert quantize((-5.0,), (0.0,), (1.0,), 4) == (0,)
        assert quantize((5.0,), (0.0,), (1.0,), 4) == (15,)

    def test_degenerate_dimension(self):
        assert quantize((3.0,), (3.0,), (3.0,), 4) == (0,)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize((0.5,), (0.0,), (1.0,), 0)


class TestMorton:
    def test_interleaving(self):
        # x=01, y=10 -> bits y1 x1 y0 x0? our order is coords order, MSB first:
        # bit1: (1,2): 1>>1=0, 2>>1=1 -> 01 ; bit0: 1&1=1, 2&1=0 -> 10 -> 0b0110=6
        assert morton_index((1, 2), 2) == 6

    def test_bijective_on_small_grid(self):
        seen = set()
        for coords in itertools.product(range(8), repeat=2):
            seen.add(morton_index(coords, 3))
        assert len(seen) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            morton_index((8,), 3)
        with pytest.raises(ValueError):
            morton_index((), 3)


class TestHilbert:
    @pytest.mark.parametrize("d,bits", [(1, 4), (2, 3), (3, 2), (4, 2)])
    def test_bijective_with_inverse(self, d, bits):
        seen = set()
        for coords in itertools.product(range(1 << bits), repeat=d):
            idx = hilbert_index(coords, bits)
            assert 0 <= idx < 1 << (d * bits)
            assert idx not in seen
            seen.add(idx)
            assert hilbert_coords(idx, d, bits) == coords

    @pytest.mark.parametrize("d,bits", [(2, 3), (2, 4), (3, 2)])
    def test_adjacency_property(self, d, bits):
        """Consecutive curve positions are Manhattan-distance-1 cells —
        Hilbert's defining locality guarantee (Morton lacks it)."""
        cells = {}
        for coords in itertools.product(range(1 << bits), repeat=d):
            cells[hilbert_index(coords, bits)] = coords
        for i in range(len(cells) - 1):
            a, b = cells[i], cells[i + 1]
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    def test_morton_lacks_adjacency(self):
        cells = {}
        for coords in itertools.product(range(8), repeat=2):
            cells[morton_index(coords, 3)] = coords
        jumps = sum(
            1
            for i in range(63)
            if sum(abs(x - y) for x, y in zip(cells[i], cells[i + 1])) > 1
        )
        assert jumps > 0

    def test_inverse_validation(self):
        with pytest.raises(ValueError):
            hilbert_coords(-1, 2, 3)
        with pytest.raises(ValueError):
            hilbert_coords(1 << 10, 2, 3)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, coords):
        bits = 8
        idx = hilbert_index(coords, bits)
        assert hilbert_coords(idx, len(coords), bits) == tuple(coords)


def items_for(db):
    return [IndexedItem(t.key, t.values, t.probability, payload=t) for t in db]


class TestCurveBulkLoad:
    @pytest.mark.parametrize("curve", ["hilbert", "morton"])
    @pytest.mark.parametrize("n", [0, 1, 17, 500])
    def test_invariants(self, curve, n):
        db = make_random_database(n, 2, seed=n + 1)
        tree = curve_bulk_load(RTree(max_entries=8), items_for(db), curve=curve)
        tree.check_invariants()
        assert {i.key for i in tree.items()} == {t.key for t in db}

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            curve_bulk_load(RTree(), [], curve="peano")

    def test_requires_empty_tree(self):
        db = make_random_database(5, 2, seed=2)
        tree = RTree()
        tree.insert(items_for(db)[0])
        with pytest.raises(ValueError, match="empty"):
            curve_bulk_load(tree, items_for(db)[1:])

    def test_prtree_aggregates_through_curve_load(self):
        db = make_random_database(300, 3, seed=3)
        tree = curve_bulk_load(PRTree(), items_for(db), curve="hilbert")
        tree.check_invariants()
        from repro.core.probability import non_occurrence_product

        for t in db[::29]:
            assert tree.dominators_product(t) == pytest.approx(
                non_occurrence_product(t, db), abs=1e-12
            )

    def test_hilbert_leaves_tighter_than_morton(self):
        """Locality pays: Hilbert leaf MBRs cover less area on average."""
        db = make_random_database(4000, 2, seed=4)

        def mean_leaf_area(curve):
            tree = curve_bulk_load(RTree(max_entries=16), items_for(db), curve=curve)
            leaves = []
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    leaves.append(node.rect.area())
                else:
                    stack.extend(node.entries)
            return sum(leaves) / len(leaves)

        assert mean_leaf_area("hilbert") <= mean_leaf_area("morton") * 1.05

"""The service against a genuinely distributed cluster.

Site servers run in their own OS processes
(:func:`~repro.net.sockets.host_sites_in_processes`); the service
dials each session its own :class:`AsyncRemoteSiteProxy` fan-out via
``connect_async_sites``.  Sessions stepped concurrently over the wire
must still be bit-identical to their solo synchronous runs, and the
per-session sockets must be released once a session is terminal.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

import pytest

from repro.distributed.query import distributed_skyline
from repro.distributed.runner import RunResult
from repro.fault.schedule import FaultSchedule
from repro.net.sockets import host_sites_in_processes
from repro.serve import AdmissionPolicy, QuerySpec, SkylineService

from ..conftest import make_random_database

SITES = 3
DB = make_random_database(150, 2, seed=47, grid=10)
PARTITIONS = [DB[i::SITES] for i in range(SITES)]


@pytest.fixture(scope="module")
def cluster():
    with host_sites_in_processes(PARTITIONS) as c:
        yield c


def _fingerprint(result: RunResult) -> Dict[str, object]:
    coverage = result.coverage
    return {
        "answer": [(m.key, m.probability) for m in result.answer],
        "emissions": [
            (e.key, e.global_probability, e.tuples_transmitted)
            for e in result.progress.events
        ],
        "tuples": result.stats.tuples_transmitted,
        "messages": result.stats.messages,
        "by_kind": dict(result.stats.by_kind),
        "complete": coverage.complete if coverage else None,
    }


def _solo(spec: QuerySpec) -> RunResult:
    return distributed_skyline(
        PARTITIONS,
        spec.threshold,
        algorithm=spec.algorithm,
        limit=spec.limit,
        batch_size=spec.batch_size,
    )


def test_remote_sessions_match_their_solo_sync_runs(cluster):
    specs = [
        QuerySpec(threshold=0.3, algorithm="dsud"),
        QuerySpec(threshold=0.5, algorithm="dsud"),
        QuerySpec(threshold=0.4, algorithm="edsud"),
        QuerySpec(threshold=0.4, algorithm="dsud", limit=3),
    ]

    async def drive() -> List[Optional[RunResult]]:
        policy = AdmissionPolicy(max_inflight=4, max_queued=8)
        async with SkylineService(
            remote_sites=cluster.addresses, policy=policy
        ) as service:
            sessions = [await service.submit(spec) for spec in specs]
            await service.drain()
        # Terminal sessions have surrendered their sockets.
        assert all(not s.owned_endpoints for s in sessions)
        return [s.result for s in sessions]

    served = asyncio.run(drive())
    for spec, result in zip(specs, served):
        assert result is not None, f"{spec} did not finish"
        assert _fingerprint(result) == _fingerprint(_solo(spec)), spec


def test_remote_mode_rejects_in_process_only_knobs(cluster):
    async def drive() -> None:
        async with SkylineService(remote_sites=cluster.addresses) as service:
            with pytest.raises(ValueError, match="chaos"):
                await service.submit(
                    QuerySpec(threshold=0.4, fault_schedule=FaultSchedule(seed=1))
                )
            with pytest.raises(ValueError, match="replica"):
                await service.submit(
                    QuerySpec(threshold=0.4, replication_factor=2)
                )

    asyncio.run(drive())


def test_service_constructor_validates_cluster_choice(cluster):
    with pytest.raises(ValueError, match="not both"):
        SkylineService(PARTITIONS, remote_sites=cluster.addresses)
    with pytest.raises(ValueError, match="at least one"):
        SkylineService()
    with pytest.raises(ValueError, match="at least one"):
        SkylineService(remote_sites=[])


def test_unreachable_cluster_rejects_at_submission():
    dead = [(0, ("127.0.0.1", 1))]  # nothing listens on port 1

    async def drive() -> None:
        async with SkylineService(
            remote_sites=dead, remote_timeout=2.0
        ) as service:
            with pytest.raises((ConnectionError, OSError)):
                await service.submit(QuerySpec(threshold=0.4))

    asyncio.run(drive())

"""Serving with all-probabilities tables keeps the exactness contract.

``SiteConfig(use_index=False, all_probs_table=True)`` swaps every
site's per-candidate Eq. 3 arithmetic for the partitioned table, and
the serving layer shares one table per host template across session
forks.  The headline contract must survive unchanged: every served
session is byte-identical — answer, emission order, bandwidth bill,
message counts — to the same spec run solo on fresh table-enabled
sites, and to the plain vectorized path within 1e-9.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

import pytest

from repro.core.dominance import Preference
from repro.distributed.query import distributed_skyline
from repro.distributed.runner import RunResult
from repro.distributed.site import SiteConfig
from repro.serve import AdmissionPolicy, QuerySpec, SkylineService

from ..conftest import make_random_database

SITES = 4
DB = make_random_database(200, 3, seed=61)
PARTITIONS = [DB[i::SITES] for i in range(SITES)]
TABLE = SiteConfig(use_index=False, all_probs_table=True)


def _solo(spec: QuerySpec, config: Optional[SiteConfig] = TABLE) -> RunResult:
    return distributed_skyline(
        PARTITIONS,
        spec.threshold,
        algorithm=spec.algorithm,
        preference=spec.preference,
        limit=spec.limit,
        batch_size=spec.batch_size,
        site_config=config,
    )


def _fingerprint(result: RunResult) -> Dict[str, object]:
    return {
        "answer": [(m.key, m.probability) for m in result.answer],
        "emissions": [
            (e.key, e.global_probability, e.tuples_transmitted)
            for e in result.progress.events
        ],
        "tuples": result.stats.tuples_transmitted,
        "messages": result.stats.messages,
        "by_kind": dict(result.stats.by_kind),
    }


def _serve_all(specs: List[QuerySpec]) -> List[Optional[RunResult]]:
    async def drive() -> List[Optional[RunResult]]:
        policy = AdmissionPolicy(max_inflight=len(specs), max_queued=len(specs))
        async with SkylineService(
            PARTITIONS, policy=policy, site_config=TABLE
        ) as service:
            sessions = [await service.submit(spec) for spec in specs]
            await service.drain()
        return [session.result for session in sessions]

    return asyncio.run(drive())


def test_served_table_sessions_match_their_solo_runs():
    specs = [
        QuerySpec(threshold=0.3, algorithm="dsud"),
        QuerySpec(threshold=0.5, algorithm="edsud"),
        QuerySpec(threshold=0.4, algorithm="dsud", limit=5),
        QuerySpec(
            threshold=0.35, algorithm="dsud", preference=Preference(subspace=(0, 2))
        ),
    ]
    served = _serve_all(specs)
    for spec, result in zip(specs, served):
        assert result is not None, f"{spec} did not finish"
        assert _fingerprint(result) == _fingerprint(_solo(spec)), spec


def test_table_answers_match_plain_vectorized_answers():
    """The table changes the arithmetic path, never the answer."""
    for threshold in (0.3, 0.6):
        spec = QuerySpec(threshold=threshold, algorithm="dsud")
        with_table = _solo(spec)
        plain = _solo(spec, config=SiteConfig(use_index=False, vectorized=True))
        got = {k: p for k, p in _fingerprint(with_table)["answer"]}
        want = {k: p for k, p in _fingerprint(plain)["answer"]}
        assert set(got) == set(want)
        for key, p in got.items():
            assert p == pytest.approx(want[key], abs=1e-9)


def test_concurrent_identical_specs_share_tables_and_stay_identical():
    spec = QuerySpec(threshold=0.4, algorithm="dsud")
    served = _serve_all([spec, spec, spec])
    prints = [_fingerprint(r) for r in served if r is not None]
    assert len(prints) == 3
    assert prints[0] == prints[1] == prints[2] == _fingerprint(_solo(spec))

"""The serving layer's headline contract: concurrency changes nothing.

Every session served concurrently over shared site forks must be
bit-identical to the same :class:`QuerySpec` run solo through
:func:`~repro.distributed.query.distributed_skyline` on fresh sites —
same answer (keys *and* probabilities), same progressive emission
order, same bandwidth bill, same per-kind message counts, same
coverage verdict.  Including under chaos fault schedules and with
buddy replication, where the standing replica book substitutes
pre-provisioned forks for solo shipping.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.core.dominance import Preference
from repro.distributed.query import distributed_skyline
from repro.distributed.runner import RunResult
from repro.fault.retry import RetryPolicy
from repro.fault.schedule import FaultSchedule
from repro.serve import AdmissionPolicy, QuerySpec, SkylineService

from ..conftest import make_random_database

SITES = 5
DB = make_random_database(240, 3, seed=41)
PARTITIONS = [DB[i::SITES] for i in range(SITES)]


def _solo(spec: QuerySpec) -> RunResult:
    """The reference run: fresh sites, one query, nothing shared."""
    return distributed_skyline(
        PARTITIONS,
        spec.threshold,
        algorithm=spec.algorithm,
        preference=spec.preference,
        limit=spec.limit,
        batch_size=spec.batch_size,
        fault_schedule=spec.fault_schedule,
        retry_policy=spec.retry_policy,
        replication_factor=spec.replication_factor,
        edsud_config=spec.edsud_config,
    )


def _fingerprint(result: RunResult) -> Dict[str, object]:
    """Everything observable about a run, down to the message books."""
    coverage = result.coverage
    return {
        "answer": [(m.key, m.probability) for m in result.answer],
        "emissions": [
            (e.key, e.global_probability, e.tuples_transmitted)
            for e in result.progress.events
        ],
        "tuples": result.stats.tuples_transmitted,
        "messages": result.stats.messages,
        "by_kind": dict(result.stats.by_kind),
        "failovers": result.stats.failovers,
        "sites_lost": result.stats.sites_lost,
        "complete": coverage.complete if coverage else None,
        "down_sites": coverage.down_sites if coverage else None,
    }


def _serve_all(
    specs: List[QuerySpec], max_inflight: int = 8
) -> List[Optional[RunResult]]:
    """Run every spec concurrently on one service; results in order."""

    async def drive() -> List[Optional[RunResult]]:
        policy = AdmissionPolicy(max_inflight=max_inflight, max_queued=len(specs))
        async with SkylineService(PARTITIONS, policy=policy) as service:
            sessions = [await service.submit(spec) for spec in specs]
            await service.drain()
        return [session.result for session in sessions]

    return asyncio.run(drive())


def _chaos(seed: int, victim: int, until: Optional[int] = 24) -> Tuple[
    FaultSchedule, RetryPolicy
]:
    schedule = FaultSchedule(seed=seed).crash(victim, at_call=6, until_call=until)
    policy = RetryPolicy(max_attempts=2, base_backoff=1e-4, max_backoff=1e-3)
    return schedule, policy


def test_eight_concurrent_sessions_each_match_their_solo_run():
    specs = [
        QuerySpec(threshold=0.3, algorithm="dsud"),
        QuerySpec(threshold=0.5, algorithm="dsud"),
        QuerySpec(threshold=0.3, algorithm="edsud"),
        QuerySpec(threshold=0.6, algorithm="edsud"),
        QuerySpec(threshold=0.4, algorithm="dsud", limit=5),
        QuerySpec(threshold=0.4, algorithm="edsud", limit=3),
        QuerySpec(threshold=0.3, algorithm="dsud", batch_size=4),
        QuerySpec(
            threshold=0.35, algorithm="dsud", preference=Preference(subspace=(0, 2))
        ),
    ]
    served = _serve_all(specs, max_inflight=8)
    for spec, result in zip(specs, served):
        assert result is not None, f"{spec} did not finish"
        assert _fingerprint(result) == _fingerprint(_solo(spec)), spec
        assert result.coverage is not None and result.coverage.complete


def test_identical_specs_served_together_stay_identical():
    spec = QuerySpec(threshold=0.4, algorithm="edsud")
    served = _serve_all([spec, spec, spec])
    prints = [_fingerprint(r) for r in served if r is not None]
    assert len(prints) == 3
    assert prints[0] == prints[1] == prints[2] == _fingerprint(_solo(spec))


def test_chaos_session_matches_solo_while_sharing_the_cluster():
    schedule, retry = _chaos(seed=99, victim=1)
    chaotic = QuerySpec(
        threshold=0.3, algorithm="dsud", fault_schedule=schedule, retry_policy=retry
    )
    noise = [
        QuerySpec(threshold=0.5, algorithm="dsud"),
        QuerySpec(threshold=0.4, algorithm="edsud"),
        QuerySpec(threshold=0.3, algorithm="dsud", limit=5),
    ]
    served = _serve_all([chaotic] + noise)
    chaos_print = _fingerprint(served[0])
    solo_print = _fingerprint(_solo(chaotic))
    assert chaos_print == solo_print
    # The schedule actually bit: the session lost (and re-found) a site.
    assert chaos_print["sites_lost"] >= 1
    # The bystanders never see the chaotic session's private faults.
    for spec, result in zip(noise, served[1:]):
        fp = _fingerprint(result)
        assert fp == _fingerprint(_solo(spec))
        assert fp["sites_lost"] == 0


def test_replicated_chaos_session_fails_over_exactly_like_solo():
    schedule, retry = _chaos(seed=7, victim=2, until=None)  # permanent crash
    spec = QuerySpec(
        threshold=0.3,
        algorithm="dsud",
        replication_factor=2,
        fault_schedule=schedule,
        retry_policy=retry,
    )
    noise = QuerySpec(threshold=0.5, algorithm="edsud")
    served = _serve_all([spec, noise, noise])
    fp = _fingerprint(served[0])
    assert fp == _fingerprint(_solo(spec))
    # Failover actually happened and the answer stayed exact: the
    # standing replica forks substitute for solo-shipped replicas.
    assert fp["failovers"] >= 1
    assert fp["complete"] is True


def test_replicated_topk_chaos_session_matches_solo():
    schedule, retry = _chaos(seed=13, victim=0)
    spec = QuerySpec(
        threshold=0.3,
        algorithm="edsud",
        limit=5,
        replication_factor=2,
        fault_schedule=schedule,
        retry_policy=retry,
    )
    served = _serve_all([spec, QuerySpec(threshold=0.4)])
    assert _fingerprint(served[0]) == _fingerprint(_solo(spec))


def test_serving_throughput_amortizes_site_preparation():
    """Shared templates: N sessions at one threshold build one index."""

    async def drive() -> Tuple[int, int]:
        async with SkylineService(PARTITIONS) as service:
            for _ in range(4):
                await service.submit(QuerySpec(threshold=0.4))
            await service.drain()
            return (
                sum(h.templates_built for h in service.hosts),
                sum(h.forks_served for h in service.hosts),
            )

    templates, forks = asyncio.run(drive())
    assert templates == SITES  # one template per site, not per session
    assert forks == 4 * SITES  # but every session got private views

"""Shared standing state: site hosts, replica books, the liveness book."""

from __future__ import annotations

import pytest

from repro.core.dominance import Preference
from repro.distributed.dsud import DSUD
from repro.distributed.query import build_sites
from repro.fault.injection import FaultyEndpoint
from repro.fault.liveness import LivenessBook
from repro.fault.schedule import FaultSchedule
from repro.replica.manager import ReplicaManager
from repro.serve import SharedSiteHost, StandingReplicaBook

from ..conftest import make_random_database

DB = make_random_database(120, 3, seed=23)
PARTITIONS = [DB[i::4] for i in range(4)]


# ----------------------------------------------------------------------
# SharedSiteHost


def test_templates_are_cached_per_preference():
    host = SharedSiteHost(0, PARTITIONS[0])
    assert host.templates_built == 0
    full = host.template()
    assert host.template() is full
    sub = host.template(Preference(subspace=(0, 1)))
    assert sub is not full
    assert host.templates_built == 2


def test_views_share_the_standing_index_but_not_queue_state():
    host = SharedSiteHost(0, PARTITIONS[0])
    a = host.view()
    b = host.view()
    assert host.forks_served == 2
    assert a is not b
    assert a.database is b.database
    assert a.tree is b.tree
    a.prepare(0.3)
    b.prepare(0.3)
    first_from_a = a.pop_representative()
    # a's pop did not consume b's queue: b still yields the same head.
    assert b.pop_representative() == first_from_a
    assert a.queue_size() == b.queue_size()


def test_view_matches_a_fresh_solo_site_exactly():
    host = SharedSiteHost(0, PARTITIONS[0])
    view = host.view()
    solo = build_sites([PARTITIONS[0]])[0]
    assert view.prepare(0.4) == solo.prepare(0.4)
    while True:
        ours, theirs = view.pop_representative(), solo.pop_representative()
        assert ours == theirs
        if ours is None:
            break


def test_maintenance_applies_to_templates_and_future_views():
    host = SharedSiteHost(0, PARTITIONS[0])
    before = host.view().prepare(0.99)  # deep queue: almost nothing pruned
    extra = make_random_database(1, 3, seed=99, start_key=10_000)[0]
    host.apply_insert(extra)
    assert len(host) == len(PARTITIONS[0]) + 1
    assert extra.key in host.template().database
    assert host.view().prepare(0.99) >= before
    host.apply_delete(extra.key)
    assert extra.key not in host.template().database


# ----------------------------------------------------------------------
# StandingReplicaBook


def test_standing_book_reproduces_solo_placement():
    sites = [SharedSiteHost(i, p) for i, p in enumerate(PARTITIONS)]
    book = StandingReplicaBook(sites, seed=0)
    session_sites = [host.view() for host in sites]
    issued = book.manager_for(session_sites, replication_factor=2)
    solo = ReplicaManager(build_sites(PARTITIONS), 2, seed=0)
    assert issued.placement == solo.placement
    assert book.managers_issued == 1


def test_standing_book_injects_pre_provisioned_template_forks():
    sites = [SharedSiteHost(i, p) for i, p in enumerate(PARTITIONS)]
    book = StandingReplicaBook(sites, seed=0)
    manager = book.manager_for(
        [host.view() for host in sites], replication_factor=2
    )
    for sid, copies in manager._replicas.items():
        template = sites[sid].template()
        for _buddy, replica in copies:
            # A fork of the standing template: same data, private queue.
            assert replica is not template
            assert replica.database is template.database
    # Nothing left to ship: provisioning is marked done up front.
    assert manager._provisioned


# ----------------------------------------------------------------------
# LivenessBook


def test_liveness_book_epochs_and_counters():
    book = LivenessBook()
    assert book.epoch == 0 and len(book) == 0
    assert book.lookup(("site", 3)) is None
    book.record(("site", 3), False)
    assert book.probes == 1
    assert book.lookup(("site", 3)) is False
    assert book.hits == 1
    book.advance()
    assert book.epoch == 1
    assert book.lookup(("site", 3)) is None  # stale: a new epoch re-probes
    assert len(book) == 0


def test_shared_book_deduplicates_liveness_probes_across_queries():
    always_down = FaultSchedule(seed=0).crash(0, at_call=0)
    book = LivenessBook()
    book.advance()

    def coordinator() -> DSUD:
        sites = build_sites(PARTITIONS)
        wrapped = [FaultyEndpoint(sites[0], always_down)] + list(sites[1:])
        return DSUD(wrapped, 0.3, liveness_book=book)

    with coordinator() as first, coordinator() as second:
        dead = first.sites[0]
        assert first._probe_liveness(dead) is False
        assert book.probes == 1
        baseline = second.stats.messages
        # The second query reads the epoch's verdict: no new CONTROL
        # message, no new probe — the snapshot answered.
        assert second._probe_liveness(second.sites[0]) is False
        assert book.probes == 1 and book.hits == 1
        assert second.stats.messages == baseline
        # A new epoch makes every verdict stale again.
        book.advance()
        assert second._probe_liveness(second.sites[0]) is False
        assert book.probes == 2


def test_private_book_is_the_default():
    sites = build_sites(PARTITIONS)
    with DSUD(sites, 0.3) as coordinator:
        assert coordinator.liveness_book is None


def test_book_keys_separate_site_and_primary_probes():
    book = LivenessBook()
    book.record(("site", 0), False)
    assert book.lookup(("primary", 0)) is None
    book.record(("primary", 0), True)
    assert book.lookup(("site", 0)) is False
    assert book.lookup(("primary", 0)) is True


@pytest.mark.parametrize("replication_factor", [1, 2])
def test_hosts_survive_replicated_and_plain_sessions(replication_factor):
    # Regression guard: issuing managers must not mutate host templates.
    sites = [SharedSiteHost(i, p) for i, p in enumerate(PARTITIONS)]
    book = StandingReplicaBook(sites, seed=0)
    if replication_factor > 1:
        book.manager_for([h.view() for h in sites], replication_factor)
    counts = [len(h.template().database) for h in sites]
    assert counts == [len(p) for p in PARTITIONS]

"""Subscription sessions: the continuous plane of the service.

Standing queries subscribe against the service's stream coordinator
and receive each published epoch's ordered delta batch on a private
asyncio queue.  These tests pin the plane's admission, billing,
fan-out, and teardown contracts — the continuous mirrors of what
test_session.py pins for one-shot queries.
"""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from repro.core.tuples import UncertainTuple
from repro.serve import (
    AdmissionPolicy,
    AdmissionRejected,
    SkylineService,
    SubscriptionState,
)
from repro.stream import CountWindow, DeltaKind, StandingQuery


def _windows(n: int = 2, capacity: int = 16) -> List[CountWindow]:
    return [CountWindow(capacity) for _ in range(n)]


def _t(key: int, values=(0.0, 0.0), p: float = 0.9) -> UncertainTuple:
    return UncertainTuple(key, tuple(float(v) for v in values), p)


# ----------------------------------------------------------------------
# admission


def test_subscribe_needs_a_stream_plane():
    async def drive() -> None:
        async with SkylineService([[_t(1)]]) as service:
            with pytest.raises(RuntimeError, match="no stream plane"):
                await service.subscribe(StandingQuery(threshold=0.3))

    asyncio.run(drive())


def test_subscribe_needs_a_started_service():
    async def drive() -> None:
        service = SkylineService(stream_windows=_windows())
        with pytest.raises(RuntimeError, match="not started"):
            await service.subscribe(StandingQuery(threshold=0.3))

    asyncio.run(drive())


def test_subscription_cap_rejects_outright():
    """No queue behind the cap: standing queries never finish on their
    own, so waiting for a slot would wait forever."""

    async def drive() -> None:
        policy = AdmissionPolicy(max_subscriptions=1)
        async with SkylineService(
            stream_windows=_windows(), policy=policy
        ) as service:
            first = await service.subscribe(StandingQuery(threshold=0.3))
            with pytest.raises(AdmissionRejected, match="subscription cap"):
                await service.subscribe(StandingQuery(threshold=0.4))
            # A voluntary close frees the slot immediately.
            service.unsubscribe(first)
            again = await service.subscribe(StandingQuery(threshold=0.4))
            assert again.active

    asyncio.run(drive())


def test_over_budget_tenant_is_rejected_at_subscribe():
    async def drive() -> None:
        async with SkylineService(
            stream_windows=_windows(), tenant_budgets={"capped": 1.0}
        ) as service:
            service.ledger.charge("capped", 5.0)
            with pytest.raises(AdmissionRejected, match="over its bandwidth budget"):
                await service.subscribe(
                    StandingQuery(threshold=0.3, tenant="capped")
                )

    asyncio.run(drive())


# ----------------------------------------------------------------------
# fan-out delivery


def test_published_deltas_fan_out_to_each_subscriber():
    async def drive() -> None:
        async with SkylineService(
            stream_windows=_windows(), auto_publish=False
        ) as service:
            loose = await service.subscribe(StandingQuery(threshold=0.3))
            tight = await service.subscribe(StandingQuery(threshold=0.95))
            # Incomparable corners: both qualify loosely, only the
            # 0.99-probability one clears the tight threshold.
            service.ingest(0, _t(1, (0.0, 1.0), 0.9))
            service.ingest(1, _t(2, (1.0, 0.0), 0.99))
            await service.publish()
            batch = await loose.next_batch()
            assert batch is not None
            assert all(d.query_id == loose.query_id for d in batch)
            assert {d.key for d in batch if d.kind is DeltaKind.ENTER} == {1, 2}
            tight_batch = await tight.next_batch()
            assert tight_batch is not None
            assert {d.key for d in tight_batch} == {2}
            assert loose.notified == len(batch)

    asyncio.run(drive())


def test_batches_iterator_drains_then_terminates_on_close():
    async def drive() -> List[int]:
        async with SkylineService(
            stream_windows=_windows(1), auto_publish=False
        ) as service:
            session = await service.subscribe(StandingQuery(threshold=0.3))
            service.ingest(0, _t(1, (0.0, 1.0), 0.9))
            await service.publish()
            service.ingest(0, _t(2, (1.0, 0.0), 0.8))
            await service.publish()
            service.unsubscribe(session)
            epochs = []
            async for batch in session.batches():
                epochs.append(batch[0].epoch)
            # Queued batches delivered in order; then the iterator ends.
            return epochs

    assert asyncio.run(drive()) == [1, 2]


def test_quiet_epoch_delivers_nothing():
    async def drive() -> None:
        async with SkylineService(
            stream_windows=_windows(1), auto_publish=False
        ) as service:
            session = await service.subscribe(StandingQuery(threshold=0.3))
            service.ingest(0, _t(1, (0.0, 0.0), 0.9))
            await service.publish()
            assert await session.next_batch() is not None
            # A dominated straggler changes no result: no batch queued.
            service.ingest(0, _t(2, (9.0, 9.0), 0.05))
            await service.publish()
            assert session._queue.empty()

    asyncio.run(drive())


# ----------------------------------------------------------------------
# billing


def test_delta_traffic_is_split_across_subscriptions_and_billed():
    async def drive() -> None:
        async with SkylineService(
            stream_windows=_windows(), auto_publish=False
        ) as service:
            a = await service.subscribe(StandingQuery(threshold=0.3, tenant="a"))
            b = await service.subscribe(StandingQuery(threshold=0.3, tenant="b"))
            service.ingest(0, _t(1, (0.0, 1.0), 0.9))
            service.ingest(1, _t(2, (1.0, 0.0), 0.9))
            await service.publish()
            traffic = service.stream.stats.tuples_transmitted
            assert traffic > 0
            assert a.billed_tuples == b.billed_tuples == traffic / 2
            assert service.ledger.spent["a"] == traffic / 2
            assert service.ledger.spent["b"] == traffic / 2

    asyncio.run(drive())


def test_budget_exhaustion_cancels_the_subscription_with_a_reason():
    async def drive() -> None:
        async with SkylineService(
            stream_windows=_windows(),
            tenant_budgets={"capped": 0.5},
            auto_publish=False,
        ) as service:
            session = await service.subscribe(
                StandingQuery(threshold=0.3, tenant="capped")
            )
            service.ingest(0, _t(1, (0.0, 0.0), 0.9))
            await service.publish()
            assert session.state is SubscriptionState.CANCELLED
            assert "bandwidth budget exhausted" in session.abort_reason
            # The standing query is gone from the coordinator too.
            with pytest.raises(KeyError):
                service.stream.result(session.query_id)
            # Cancellation lands before delivery — the epoch that blew
            # the budget is never pushed; the consumer just sees close.
            assert session.notified == 0
            assert await session.next_batch() is None

    asyncio.run(drive())


# ----------------------------------------------------------------------
# scheduler integration and teardown


def test_auto_publish_pushes_without_a_manual_publish():
    async def drive() -> int:
        async with SkylineService(stream_windows=_windows(1)) as service:
            session = await service.subscribe(StandingQuery(threshold=0.3))
            service.ingest(0, _t(1, (0.0, 0.0), 0.9))
            batch = await asyncio.wait_for(session.next_batch(), timeout=5.0)
            assert batch is not None
            return batch[0].key

    assert asyncio.run(drive()) == 1


def test_close_cancels_remaining_subscriptions():
    async def drive() -> None:
        service = SkylineService(stream_windows=_windows())
        async with service:
            session = await service.subscribe(StandingQuery(threshold=0.3))
        assert session.state is SubscriptionState.CANCELLED
        assert session.abort_reason == "service closed"
        assert await session.next_batch() is None

    asyncio.run(drive())


def test_unsubscribe_is_idempotent():
    async def drive() -> None:
        async with SkylineService(stream_windows=_windows()) as service:
            session = await service.subscribe(StandingQuery(threshold=0.3))
            service.unsubscribe(session)
            service.unsubscribe(session)  # second close is a no-op
            assert session.state is SubscriptionState.CANCELLED
            assert session.abort_reason is None
            with pytest.raises(KeyError):
                service.stream.result(session.query_id)

    asyncio.run(drive())

"""``asteps()`` is ``steps()`` in await-clothing: bit-identical, cancellable.

The tentpole contract of the awaitable coordinator: driving the *same*
protocol script through the async funnel — chaos schedules, replica
failover, top-k limits and all — must produce byte-for-byte the
answer, emission order, message books, and coverage verdict of the
synchronous run.  Plus the teardown half: cancelling an in-flight
``asteps()`` await propagates cleanly and leaves the sites serving.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

import pytest

from repro.distributed.dsud import DSUD
from repro.distributed.query import (
    adistributed_skyline,
    build_coordinator,
    distributed_skyline,
)
from repro.distributed.runner import RunResult
from repro.distributed.site import LocalSite
from repro.fault.retry import RetryPolicy
from repro.fault.schedule import FaultSchedule
from repro.net.aio import AsyncLocalEndpoint
from repro.serve import QuerySession, QuerySpec

from ..conftest import make_random_database

SITES = 4
DB = make_random_database(200, 3, seed=23)
PARTITIONS = [DB[i::SITES] for i in range(SITES)]


def _fingerprint(result: RunResult) -> Dict[str, object]:
    """Everything observable about a run, down to the message books."""
    coverage = result.coverage
    return {
        "answer": [(m.key, m.probability) for m in result.answer],
        "emissions": [
            (e.key, e.global_probability, e.tuples_transmitted)
            for e in result.progress.events
        ],
        "tuples": result.stats.tuples_transmitted,
        "messages": result.stats.messages,
        "by_kind": dict(result.stats.by_kind),
        "failovers": result.stats.failovers,
        "sites_lost": result.stats.sites_lost,
        "complete": coverage.complete if coverage else None,
        "down_sites": coverage.down_sites if coverage else None,
    }


def _chaos(seed: int, victim: int, until: Optional[int]) -> Tuple[
    FaultSchedule, RetryPolicy
]:
    schedule = FaultSchedule(seed=seed).crash(victim, at_call=6, until_call=until)
    policy = RetryPolicy(max_attempts=2, base_backoff=1e-4, max_backoff=1e-3)
    return schedule, policy


def _cases():
    chaos, retry = _chaos(seed=5, victim=1, until=24)
    perma, perma_retry = _chaos(seed=8, victim=2, until=None)
    for algorithm in ("dsud", "edsud"):
        yield pytest.param(
            {"algorithm": algorithm}, id=f"{algorithm}-plain"
        )
        yield pytest.param(
            {
                "algorithm": algorithm,
                "fault_schedule": chaos,
                "retry_policy": retry,
            },
            id=f"{algorithm}-chaos",
        )
        yield pytest.param(
            {
                "algorithm": algorithm,
                "replication_factor": 2,
                "fault_schedule": perma,
                "retry_policy": perma_retry,
            },
            id=f"{algorithm}-rf2-failover",
        )
        yield pytest.param(
            {"algorithm": algorithm, "limit": 4}, id=f"{algorithm}-limit"
        )


@pytest.mark.parametrize("kwargs", _cases())
def test_async_run_is_bit_identical_to_sync(kwargs):
    sync_result = distributed_skyline(PARTITIONS, 0.3, **kwargs)
    async_result = asyncio.run(adistributed_skyline(PARTITIONS, 0.3, **kwargs))
    assert _fingerprint(async_result) == _fingerprint(sync_result)
    # The scenario actually exercised what its name claims.
    if kwargs.get("replication_factor", 1) > 1:
        assert async_result.stats.failovers >= 1
    elif kwargs.get("fault_schedule") is not None:
        assert async_result.stats.sites_lost >= 1
    if kwargs.get("limit") is not None:
        assert len(async_result.answer) <= kwargs["limit"]


def test_async_iterator_yields_exactly_as_often_as_sync():
    sync_steps = sum(
        1 for _ in build_coordinator(PARTITIONS, 0.4, algorithm="dsud").steps()
    )

    async def count() -> int:
        coordinator = build_coordinator(PARTITIONS, 0.4, algorithm="dsud")
        n = 0
        async for _ in coordinator.asteps():
            n += 1
        return n

    assert asyncio.run(count()) == sync_steps


# ----------------------------------------------------------------------
# cancellation


def _async_sites():
    return [
        AsyncLocalEndpoint(LocalSite(i, part))
        for i, part in enumerate(PARTITIONS)
    ]


def test_cancelled_asteps_await_leaves_sites_consistent():
    """Cancel a step mid-await: the error propagates, the generator's
    ``finally`` runs, and every site still serves RPCs afterwards."""

    async def scenario() -> None:
        sites = _async_sites()
        coordinator = DSUD(sites, 0.3)
        agen = coordinator.asteps()
        await agen.__anext__()  # prepared and into the feedback loop
        task = asyncio.ensure_future(agen.__anext__())
        await asyncio.sleep(0)  # let the step park on a site await
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        # The async generator is finished: its finally closed the
        # script and detached the pool, so aclose is a clean no-op and
        # further draws see exhaustion, not a wedged script.
        await agen.aclose()
        with pytest.raises(StopAsyncIteration):
            await agen.__anext__()
        # Sites are left at a request boundary: no lock held, every
        # endpoint still answers (a fresh query over forks would work).
        for endpoint in sites:
            assert isinstance(await endpoint.queue_size(), int)
        coordinator.close()  # idempotent after the generator teardown

    asyncio.run(scenario())


def test_cancelled_session_step_can_still_be_aborted():
    async def scenario() -> None:
        spec = QuerySpec(threshold=0.3, algorithm="dsud")
        coordinator = DSUD(_async_sites(), spec.threshold)
        session = QuerySession(1, spec, coordinator)
        session.start()
        assert not await session.step()
        task = asyncio.ensure_future(session.step())
        await asyncio.sleep(0)
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        # Cancellation is not a site fault: the session is not FAILED,
        # and an explicit abort still tears it down cleanly.
        assert not session.done
        await session.abort("caller cancelled")
        assert session.done
        assert session.abort_reason == "caller cancelled"

    asyncio.run(scenario())

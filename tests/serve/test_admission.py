"""Admission control, backpressure, and per-tenant bandwidth budgets."""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from repro.serve import (
    AdmissionPolicy,
    AdmissionRejected,
    QuerySpec,
    SessionState,
    SkylineService,
    TenantLedger,
)

from ..conftest import make_random_database

SITES = 3
DB = make_random_database(90, 2, seed=17, grid=8)
PARTITIONS = [DB[i::SITES] for i in range(SITES)]
SPEC = QuerySpec(threshold=0.4)


# ----------------------------------------------------------------------
# AdmissionPolicy / TenantLedger units


def test_admission_policy_validates_its_limits():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_queued=-1)


def test_tenant_ledger_meters_only_listed_tenants():
    ledger = TenantLedger({"metered": 100.0})
    assert ledger.within_budget("anonymous")  # unmetered: infinite budget
    assert ledger.charge("anonymous", 1e9)
    assert ledger.remaining("anonymous") is None
    assert ledger.charge("metered", 60.0)
    assert ledger.remaining("metered") == 40.0
    assert not ledger.charge("metered", 60.0)  # over: charge lands, gate trips
    assert ledger.spent["metered"] == 120.0
    assert not ledger.within_budget("metered")


def test_tenant_ledger_budgets_can_be_raised_and_lifted():
    ledger = TenantLedger({"t": 10.0})
    ledger.charge("t", 15.0)
    assert not ledger.within_budget("t")
    ledger.set_budget("t", 100.0)
    assert ledger.within_budget("t")
    ledger.set_budget("t", None)
    assert ledger.remaining("t") is None


# ----------------------------------------------------------------------
# concurrency caps and queue backpressure


def test_inflight_never_exceeds_the_admission_cap():
    async def drive() -> int:
        policy = AdmissionPolicy(max_inflight=2, max_queued=16)
        peak = 0
        async with SkylineService(PARTITIONS, policy=policy) as service:
            for _ in range(6):
                await service.submit(SPEC)
            while service.queue_depth or service.inflight:
                peak = max(peak, service.inflight)
                await asyncio.sleep(0)
            assert len(service.finished) == 6
        return peak

    peak = asyncio.run(drive())
    assert 1 <= peak <= 2


def test_full_queue_rejects_when_asked_not_to_wait():
    async def drive() -> None:
        policy = AdmissionPolicy(max_inflight=1, max_queued=1)
        async with SkylineService(PARTITIONS, policy=policy) as service:
            # The scheduler has not run yet: the first submit fills the
            # only queue slot, so an impatient second submit sheds.
            await service.submit(SPEC)
            with pytest.raises(AdmissionRejected, match="queue full"):
                await service.submit(SPEC, wait=False)
            await service.drain()

    asyncio.run(drive())


def test_full_queue_blocks_then_admits_when_asked_to_wait():
    async def drive() -> List[SessionState]:
        policy = AdmissionPolicy(max_inflight=1, max_queued=1)
        async with SkylineService(PARTITIONS, policy=policy) as service:
            sessions = []
            for _ in range(4):  # 4 queries through a 1-deep queue
                sessions.append(await service.submit(SPEC, wait=True))
            await service.drain()
        return [s.state for s in sessions]

    states = asyncio.run(drive())
    assert states == [SessionState.FINISHED] * 4


def test_submitting_to_a_stopped_service_is_an_error():
    async def drive() -> None:
        service = SkylineService(PARTITIONS)
        with pytest.raises(RuntimeError, match="not started"):
            await service.submit(SPEC)

    asyncio.run(drive())


def test_close_finishes_inflight_work_first():
    async def drive() -> List[SessionState]:
        service = SkylineService(PARTITIONS)
        async with service:
            sessions = [await service.submit(SPEC) for _ in range(3)]
        # __aexit__ drains before stopping: nothing left half-run.
        return [s.state for s in sessions]

    assert asyncio.run(drive()) == [SessionState.FINISHED] * 3


# ----------------------------------------------------------------------
# tenant budgets


def test_over_budget_tenant_is_aborted_and_then_rejected():
    async def drive() -> None:
        async with SkylineService(
            PARTITIONS, tenant_budgets={"metered": 40.0}
        ) as service:
            metered = QuerySpec(threshold=0.3, tenant="metered")
            sessions = [await service.submit(metered) for _ in range(4)]
            await service.drain()
            states = {s.state for s in sessions}
            # The budget is far below four runs' bandwidth: at least one
            # session was cut off mid-flight at a step boundary.
            assert SessionState.ABORTED in states
            aborted = [s for s in sessions if s.state is SessionState.ABORTED]
            assert all("budget" in (s.abort_reason or "") for s in aborted)
            assert service.ledger.spent["metered"] >= 40.0
            # ... and new submissions shed at the door.
            with pytest.raises(AdmissionRejected, match="budget"):
                await service.submit(metered)
            # Raising the budget reopens admission.
            service.ledger.set_budget("metered", 1e9)
            reopened = await service.submit(metered)
            await service.drain()
            assert reopened.state is SessionState.FINISHED

    asyncio.run(drive())


def test_budgets_are_per_tenant_not_global():
    async def drive() -> None:
        async with SkylineService(
            PARTITIONS, tenant_budgets={"capped": 1.0}
        ) as service:
            capped = await service.submit(QuerySpec(threshold=0.4, tenant="capped"))
            free = await service.submit(QuerySpec(threshold=0.4, tenant="free"))
            await service.drain()
            assert capped.state is SessionState.ABORTED
            assert free.state is SessionState.FINISHED

    asyncio.run(drive())


def test_aborted_sessions_release_their_coordinator():
    async def drive() -> None:
        async with SkylineService(
            PARTITIONS, tenant_budgets={"capped": 1.0}
        ) as service:
            session = await service.submit(QuerySpec(threshold=0.3, tenant="capped"))
            await service.drain()
            assert session.state is SessionState.ABORTED
            # The abort closed the stepping generator, which runs the
            # coordinator's finally: close() — no half-open pools.
            assert session.result is None
            assert session.latency is not None

    asyncio.run(drive())

"""QuerySession bookkeeping: step counting, abort billing, teardown.

Pins the serving-layer bugfix sweep: ``steps_taken`` counts completed
coordinator iterations (not the exhaustion probe, not a raising step),
and an aborted session's bandwidth book is frozen the moment
``abort()`` returns — an in-flight broadcast finishing afterwards can
never be billed to the tenant.
"""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from repro.distributed.query import build_coordinator
from repro.net.message import Message, MessageKind
from repro.serve import (
    QuerySession,
    QuerySpec,
    SessionState,
    SkylineService,
)

from ..conftest import make_random_database

SITES = 3
DB = make_random_database(120, 2, seed=31, grid=10)
PARTITIONS = [DB[i::SITES] for i in range(SITES)]


def _session(threshold: float = 0.4, **spec_kwargs) -> QuerySession:
    spec = QuerySpec(threshold=threshold, **spec_kwargs)
    coordinator = build_coordinator(
        PARTITIONS, spec.threshold, algorithm=spec.algorithm, limit=spec.limit
    )
    return QuerySession(1, spec, coordinator)


# ----------------------------------------------------------------------
# steps_taken


def test_steps_taken_counts_completed_iterations_exactly():
    """N yields → N steps: the probe that discovers exhaustion is not
    an iteration and must not inflate the counter (the old off-by-one)."""
    sync_steps = sum(
        1 for _ in build_coordinator(PARTITIONS, 0.4, algorithm="dsud").steps()
    )

    async def drive() -> int:
        session = _session(0.4)
        session.start()
        while not await session.step():
            pass
        assert session.state is SessionState.FINISHED
        return session.steps_taken

    assert asyncio.run(drive()) == sync_steps


def test_step_after_completion_reports_done_without_counting():
    async def drive() -> None:
        session = _session(0.5)
        session.start()
        while not await session.step():
            pass
        taken = session.steps_taken
        assert await session.step() is True
        assert session.steps_taken == taken

    asyncio.run(drive())


def test_a_raising_step_fails_the_session_and_is_not_counted():
    async def drive() -> None:
        session = _session(0.4)
        session.start()
        assert not await session.step()
        taken = session.steps_taken

        async def explode():
            raise RuntimeError("site melted")
            yield  # pragma: no cover

        old = session._steps
        session._steps = explode()
        assert await session.step() is True
        assert session.state is SessionState.FAILED
        assert isinstance(session.error, RuntimeError)
        assert session.steps_taken == taken
        await old.aclose()

    asyncio.run(drive())


# ----------------------------------------------------------------------
# post-abort billing freeze


def test_aborted_session_bandwidth_book_is_frozen():
    async def drive() -> None:
        session = _session(0.3)
        session.start()
        assert not await session.step()
        assert not await session.step()
        await session.abort("admission kill")
        assert session.state is SessionState.ABORTED
        frozen = session.transmitted_tuples
        # A straggling in-flight broadcast drains after abort() returned
        # and lands on the coordinator's books ...
        session.coordinator.stats.record(
            Message.bearing(MessageKind.FEEDBACK, "server", "site-0", None)
        )
        assert session.coordinator.stats.tuples_transmitted == frozen + 1
        # ... but the session's billable figure never moves again.
        assert session.transmitted_tuples == frozen

    asyncio.run(drive())


def test_finished_session_bandwidth_book_is_frozen_too():
    async def drive() -> None:
        session = _session(0.5)
        session.start()
        while not await session.step():
            pass
        frozen = session.transmitted_tuples
        session.coordinator.stats.record(
            Message.bearing(MessageKind.DATA, "site-0", "server", None)
        )
        assert session.transmitted_tuples == frozen

    asyncio.run(drive())


def test_tenant_is_never_billed_past_abort():
    """Service-level pin: once the budget abort lands, later scheduler
    passes cannot grow the tenant's spent figure from that session."""

    async def drive() -> float:
        async with SkylineService(
            PARTITIONS, tenant_budgets={"capped": 2.0}
        ) as service:
            session = await service.submit(
                QuerySpec(threshold=0.3, tenant="capped")
            )
            await service.drain()
            assert session.state is SessionState.ABORTED
            spent_at_abort = service.ledger.spent["capped"]
            # Simulate the straggler after the service already settled.
            session.coordinator.stats.record(
                Message.bearing(MessageKind.FEEDBACK, "server", "site-1", None)
            )
            for _ in range(3):
                await asyncio.sleep(0)
            assert session.billed_tuples == session.transmitted_tuples
            return service.ledger.spent["capped"] - spent_at_abort

    assert asyncio.run(drive()) == 0.0


# ----------------------------------------------------------------------
# endpoint teardown


class _Recorder:
    def __init__(self, log: List[str], name: str, awaitable: bool) -> None:
        self.log = log
        self.name = name
        self.awaitable = awaitable

    def close(self):
        if not self.awaitable:
            self.log.append(self.name)
            return None

        async def _do() -> None:
            self.log.append(self.name)

        return _do()


def test_release_endpoints_awaits_async_closers_once():
    async def drive() -> List[str]:
        session = _session(0.4)
        log: List[str] = []
        session.owned_endpoints = [
            _Recorder(log, "sync", awaitable=False),
            _Recorder(log, "async", awaitable=True),
        ]
        await session.release_endpoints()
        await session.release_endpoints()  # idempotent: nothing re-closed
        return log

    assert asyncio.run(drive()) == ["sync", "async"]


def test_start_twice_is_an_error():
    session = _session(0.4)

    async def drive() -> None:
        session.start()
        with pytest.raises(RuntimeError, match="already"):
            session.start()
        await session.abort("test over")

    asyncio.run(drive())

"""The two-phase engine: incremental cache behaviour, stats, reporters.

The cache contract under test: touching a file without changing it is a
hit (no re-parse), editing one byte is a miss, a changed engine
signature discards everything, and cached findings round-trip
identically — including their line-drift-tolerant fingerprints.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import compare
from repro.analysis.cache import SummaryCache, content_sha, engine_signature
from repro.analysis.engine import ENGINE_VERSION, analyze_project
from repro.analysis.framework import ModuleContext, run_rules
from repro.analysis.reporters import render_sarif
from repro.analysis.rules import ALL_RULES, PROGRAM_RULES
from repro.analysis.rules.determinism import WallClockRule

#: A module that always produces exactly one finding (SKY202).
_DIRTY = """\
import time


def stamp():
    return time.time()
"""

_CLEAN = """\
import time


def stamp():
    return time.perf_counter()
"""


def _project(tmp_path: Path, source: str = _DIRTY) -> Path:
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "fake.py").write_text(source, encoding="utf-8")
    return tmp_path / "src"


def _run(tmp_path: Path):
    return analyze_project(
        [tmp_path / "src"],
        ALL_RULES,
        PROGRAM_RULES,
        root=tmp_path,
        cache_path=tmp_path / ".skylint-cache.json",
    )


def test_cold_then_warm_run_hits_the_cache(tmp_path):
    _project(tmp_path)
    findings1, stats1 = _run(tmp_path)
    assert stats1.parsed == 1 and stats1.summary_hits == 0
    assert not stats1.warm
    findings2, stats2 = _run(tmp_path)
    assert stats2.parsed == 0 and stats2.summary_hits == 1
    assert stats2.findings_hits == 1
    assert stats2.warm
    # Cached findings are byte-identical to freshly computed ones.
    assert [f.to_dict() for f in findings2] == [f.to_dict() for f in findings1]
    assert [f.rule for f in findings1] == ["SKY202"]


def test_touching_without_changing_is_a_hit_and_editing_is_a_miss(tmp_path):
    src = _project(tmp_path)
    _run(tmp_path)
    # Touch: rewrite identical bytes -> same content hash -> hit.
    (src / "repro" / "core" / "fake.py").write_text(_DIRTY, encoding="utf-8")
    _, stats = _run(tmp_path)
    assert stats.parsed == 0 and stats.summary_hits == 1
    # Edit: the finding disappears and the file re-parses.
    (src / "repro" / "core" / "fake.py").write_text(_CLEAN, encoding="utf-8")
    findings, stats = _run(tmp_path)
    assert stats.parsed == 1 and stats.summary_hits == 0
    assert findings == []


def test_a_changed_engine_signature_discards_the_cache(tmp_path):
    _project(tmp_path)
    _run(tmp_path)
    cache_path = tmp_path / ".skylint-cache.json"
    sha = content_sha(_DIRTY)
    stale = SummaryCache.load(
        cache_path, engine_signature(ENGINE_VERSION + ".different", ["SKY000"])
    )
    assert stale.get("src/repro/core/fake.py", sha) is None
    fresh = SummaryCache.load(
        cache_path,
        engine_signature(
            ENGINE_VERSION,
            [r.id for r in ALL_RULES] + [r.id for r in PROGRAM_RULES],
        ),
    )
    assert fresh.get("src/repro/core/fake.py", sha) is not None


def test_a_corrupt_cache_file_degrades_to_a_cold_run(tmp_path):
    _project(tmp_path)
    (tmp_path / ".skylint-cache.json").write_text("{not json", encoding="utf-8")
    findings, stats = _run(tmp_path)
    assert stats.parsed == 1
    assert [f.rule for f in findings] == ["SKY202"]


def test_deleted_files_are_pruned_from_the_cache(tmp_path):
    src = _project(tmp_path)
    extra = src / "repro" / "core" / "extra.py"
    extra.write_text("X = 1\n", encoding="utf-8")
    _run(tmp_path)
    raw = json.loads((tmp_path / ".skylint-cache.json").read_text())
    assert "src/repro/core/extra.py" in raw["entries"]
    extra.unlink()
    _run(tmp_path)
    raw = json.loads((tmp_path / ".skylint-cache.json").read_text())
    assert "src/repro/core/extra.py" not in raw["entries"]


def test_suppressions_survive_the_cache(tmp_path):
    source = _DIRTY.replace(
        "return time.time()",
        "return time.time()  # skylint: ignore[SKY202] bench stamp",
    )
    _project(tmp_path, source)
    findings, _ = _run(tmp_path)
    assert findings == []
    findings, stats = _run(tmp_path)
    assert stats.warm and findings == []


# ----------------------------------------------------------------------
# fingerprint stability


def test_fingerprints_are_stable_under_line_shifts():
    shifted = "# a new leading comment\n\n" + _DIRTY
    original = run_rules(
        [ModuleContext("repro/core/fake.py", _DIRTY)], [WallClockRule()]
    )
    moved = run_rules(
        [ModuleContext("repro/core/fake.py", shifted)], [WallClockRule()]
    )
    assert len(original) == len(moved) == 1
    assert moved[0].line != original[0].line
    assert moved[0].fingerprint() == original[0].fingerprint()
    # ... which is exactly what keeps the baseline comparison clean.
    comparison = compare(moved, [_entry(original[0])])
    assert comparison.clean


def _entry(finding):
    from repro.analysis.baseline import BaselineEntry

    return BaselineEntry(
        rule=finding.rule,
        path=finding.path,
        context=finding.context,
        snippet=finding.snippet,
        justification="pinned for the line-shift test",
    )


def test_fingerprints_change_when_the_offending_line_changes():
    edited = _DIRTY.replace("time.time()", "time.time()  # noqa")
    original = run_rules(
        [ModuleContext("repro/core/fake.py", _DIRTY)], [WallClockRule()]
    )
    moved = run_rules(
        [ModuleContext("repro/core/fake.py", edited)], [WallClockRule()]
    )
    assert original[0].fingerprint() != moved[0].fingerprint()


# ----------------------------------------------------------------------
# SARIF reporter


def test_render_sarif_shape():
    findings = run_rules(
        [ModuleContext("repro/core/fake.py", _DIRTY)], [WallClockRule()]
    )
    comparison = compare(findings, [])
    doc = json.loads(
        render_sarif(comparison, [WallClockRule()], engine_version=ENGINE_VERSION)
    )
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "skylint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["SKY202"]
    (result,) = run["results"]
    assert result["ruleId"] == "SKY202"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/core/fake.py"
    assert location["region"]["startLine"] == findings[0].line
    assert result["partialFingerprints"]["skylint/v1"]


def test_render_sarif_omits_baselined_findings():
    findings = run_rules(
        [ModuleContext("repro/core/fake.py", _DIRTY)], [WallClockRule()]
    )
    comparison = compare(findings, [_entry(findings[0])])
    doc = json.loads(render_sarif(comparison, [WallClockRule()]))
    assert doc["runs"][0]["results"] == []

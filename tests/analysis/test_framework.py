"""Framework-level behaviour: suppressions, fingerprints, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import (
    BaselineEntry,
    compare,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import ModuleContext, run_rules
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, rules_by_id
from repro.analysis.rules.probability import FloatEqualityRule

BAD_FLOAT_EQ = """\
def check(prob):
    return prob == 0.5
"""


def _module(source: str, relpath: str = "repro/core/fake.py") -> ModuleContext:
    return ModuleContext(relpath, source)


def test_rule_registry_ids_are_unique():
    ids = [rule.id for rule in ALL_RULES]
    assert len(ids) == len(set(ids))
    assert rules_by_id()["SKY301"].name == "probability-float-equality"


def test_suppression_with_reason_silences_the_finding():
    source = BAD_FLOAT_EQ.replace(
        "prob == 0.5",
        "prob == 0.5  # skylint: ignore[SKY301] fixture: documented waiver",
    )
    findings = run_rules([_module(source)], [FloatEqualityRule()])
    assert findings == []


def test_suppression_without_reason_is_itself_reported():
    source = BAD_FLOAT_EQ.replace(
        "prob == 0.5", "prob == 0.5  # skylint: ignore[SKY301]"
    )
    findings = run_rules([_module(source)], [FloatEqualityRule()])
    assert [f.rule for f in findings] == ["SKY000"]
    assert findings[0].severity == "error"


def test_wildcard_suppression_covers_every_rule():
    source = BAD_FLOAT_EQ.replace(
        "prob == 0.5", "prob == 0.5  # skylint: ignore[*] fixture: waive all"
    )
    findings = run_rules([_module(source)], [FloatEqualityRule()])
    assert findings == []


def test_fingerprint_survives_line_shifts():
    findings_a = run_rules([_module(BAD_FLOAT_EQ)], [FloatEqualityRule()])
    shifted = "import math\n\n\n" + BAD_FLOAT_EQ
    findings_b = run_rules([_module(shifted)], [FloatEqualityRule()])
    assert len(findings_a) == len(findings_b) == 1
    assert findings_a[0].line != findings_b[0].line
    assert findings_a[0].fingerprint() == findings_b[0].fingerprint()


def test_baseline_round_trip_and_compare(tmp_path: Path):
    findings = run_rules([_module(BAD_FLOAT_EQ)], [FloatEqualityRule()])
    path = tmp_path / "skylint-baseline.json"
    write_baseline(path, findings)

    raw = json.loads(path.read_text())
    assert raw["version"] == 1
    assert len(raw["entries"]) == 1

    baseline = load_baseline(path)
    comparison = compare(findings, baseline)
    assert comparison.clean
    assert not comparison.new and not comparison.stale


def test_missing_baseline_means_every_finding_is_new(tmp_path: Path):
    findings = run_rules([_module(BAD_FLOAT_EQ)], [FloatEqualityRule()])
    baseline = load_baseline(tmp_path / "does-not-exist.json")
    comparison = compare(findings, baseline)
    assert not comparison.clean
    assert len(comparison.new) == 1


def test_fixed_finding_turns_the_baseline_entry_stale():
    finding = run_rules([_module(BAD_FLOAT_EQ)], [FloatEqualityRule()])[0]
    entry = BaselineEntry(
        rule=finding.rule,
        path=finding.path,
        context=finding.context,
        snippet=finding.snippet,
        justification="fixture",
    )
    comparison = compare([], [entry])
    assert not comparison.clean
    assert len(comparison.stale) == 1


def test_reporters_render_both_formats():
    findings = run_rules([_module(BAD_FLOAT_EQ)], [FloatEqualityRule()])
    comparison = compare(findings, [])
    text = render_text(comparison, ALL_RULES)
    assert "SKY301" in text and "repro/core/fake.py" in text
    payload = json.loads(render_json(comparison, ALL_RULES))
    assert payload["clean"] is False
    assert payload["summary"]["total"] == 1
    assert payload["new"][0]["rule"] == "SKY301"

"""Good/bad fixture pairs for the whole-program (SKY6xx) rule family.

Each fixture is a tiny multi-file project: sources are linked into a
:class:`~repro.analysis.callgraph.Program` exactly the way phase 2 of
the engine does it, so these tests pin the *call-graph* semantics —
resolution through ``self`` methods, attribute types, imports, the
generator boundary — not just the per-rule predicates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.callgraph import Program, ProgramRule
from repro.analysis.framework import Finding, ModuleContext, run_rules
from repro.analysis.rules import PROGRAM_RULES
from repro.analysis.rules.asyncio_discipline import AsyncioDisciplineRule
from repro.analysis.rules.interprocedural import (
    InterproceduralBillingRule,
    LedgerSymmetryRule,
    LockDisciplineRule,
    SeedProvenanceRule,
    TransitiveBlockingRule,
)
from repro.analysis.rules.protocol import ProtocolAccountingRule
from repro.analysis.summaries import build_summary


def _program(files: Dict[str, str]) -> Program:
    summaries = [
        build_summary(ModuleContext(relpath, source))
        for relpath, source in files.items()
    ]
    return Program(summaries)


def _check(files: Dict[str, str], rules: Sequence[ProgramRule]) -> List[Finding]:
    program = _program(files)
    findings = [
        finding
        for rule in rules
        for finding in rule.check_program(program)
        if not program.is_suppressed(finding.path, finding.rule, finding.line)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings


# ----------------------------------------------------------------------
# SKY601 — async-transitive-blocking


SKY601_BAD_TRANSITIVE = {
    "repro/serve/fake.py": """\
import time


class Service:
    async def step(self):
        self._drain()

    def _drain(self):
        self._flush()

    def _flush(self):
        time.sleep(0.1)
"""
}

SKY601_GOOD_GENERATOR_BOUNDARY = {
    "repro/serve/fake.py": """\
import time


class Service:
    async def poll(self):
        self._advance()

    def _advance(self):
        return self.steps()

    def steps(self):
        time.sleep(0.1)
        yield 1
"""
}


def test_sky601_follows_blocking_through_sync_helpers():
    findings = _check(SKY601_BAD_TRANSITIVE, [TransitiveBlockingRule()])
    assert [f.rule for f in findings] == ["SKY601"]
    assert "Service._drain -> Service._flush" in findings[0].message
    assert "time.sleep" in findings[0].message
    # Anchored at the async call site, not the deep blocking line.
    assert findings[0].context == "Service.step"


def test_sky601_treats_calling_a_generator_as_a_boundary():
    # Calling a generator function executes none of its body, so the
    # sleep inside `steps` is not reachable from `poll`.
    assert _check(SKY601_GOOD_GENERATOR_BOUNDARY, [TransitiveBlockingRule()]) == []


def test_sky601_transitive_pool_join_flagged_and_nowait_accepted():
    bad = {
        "repro/serve/fake.py": """\
class Service:
    async def abort(self):
        self._release()

    def _release(self):
        self._pool.shutdown(wait=True)
"""
    }
    good = {
        "repro/serve/fake.py": """\
class Service:
    async def abort(self):
        self._release()

    def _release(self):
        self._pool.shutdown(wait=False)
"""
    }
    findings = _check(bad, [TransitiveBlockingRule()])
    assert [f.rule for f in findings] == ["SKY601"]
    assert "pool-join" in findings[0].message
    assert _check(good, [TransitiveBlockingRule()]) == []


_SYNC_ENDPOINT = """\
class SiteEndpoint:
    def prepare(self, threshold):
        return 0
"""


def test_sky601_flags_sync_site_endpoint_calls_in_async_defs():
    files = {
        "repro/net/transport.py": _SYNC_ENDPOINT,
        "repro/net/aio_fake.py": """\
from repro.net.transport import SiteEndpoint


class Adapter:
    def __init__(self, inner: SiteEndpoint) -> None:
        self.inner = inner

    async def prepare(self, threshold):
        return self.inner.prepare(threshold)
""",
    }
    findings = _check(files, [TransitiveBlockingRule()])
    assert [f.rule for f in findings] == ["SKY601"]
    assert "sync" in findings[0].message and "SiteEndpoint" in findings[0].message


def test_sky601_respects_reasoned_suppressions():
    files = {
        "repro/net/transport.py": _SYNC_ENDPOINT,
        "repro/net/aio_fake.py": """\
from repro.net.transport import SiteEndpoint


class Adapter:
    def __init__(self, inner: SiteEndpoint) -> None:
        self.inner = inner

    async def prepare(self, threshold):
        return self.inner.prepare(threshold)  # skylint: ignore[SKY601] in-process compute by design
""",
    }
    assert _check(files, [TransitiveBlockingRule()]) == []


# SKY601 must reproduce everything SKY503 caught on its old scope
# (direct blocking calls and pool joins in async defs).

SKY503_BAD_BLOCKING = """\
import socket
import time


class Service:
    async def step(self):
        time.sleep(0.1)
        conn = socket.create_connection(("site-0", 9000))
        return conn
"""

SKY503_BAD_POOL_JOIN = """\
class TablePool:
    async def aclose(self):
        self._executor.shutdown(wait=True)

    async def drain(self):
        self._pool.join()
"""


def test_sky601_reproduces_sky503_blocking_findings():
    old = run_rules(
        [ModuleContext("repro/serve/fake.py", SKY503_BAD_BLOCKING)],
        [AsyncioDisciplineRule()],
    )
    new = _check(
        {"repro/serve/fake.py": SKY503_BAD_BLOCKING}, [TransitiveBlockingRule()]
    )
    assert [(f.path, f.line) for f in new] == [(f.path, f.line) for f in old]


def test_sky601_reproduces_sky503_pool_join_findings():
    old = run_rules(
        [ModuleContext("repro/distributed/workers.py", SKY503_BAD_POOL_JOIN)],
        [AsyncioDisciplineRule()],
    )
    new = _check(
        {"repro/distributed/workers.py": SKY503_BAD_POOL_JOIN},
        [TransitiveBlockingRule()],
    )
    assert [(f.path, f.line) for f in new] == [(f.path, f.line) for f in old]


def test_sky503_steps_back_to_fire_and_forget_only_under_sky601():
    source = """\
import asyncio
import time


class Service:
    async def step(self):
        time.sleep(0.1)
        asyncio.create_task(self._scheduler())
"""
    modules = [ModuleContext("repro/serve/fake.py", source)]
    alone = run_rules(modules, [AsyncioDisciplineRule()])
    assert sorted({f.rule for f in alone}) == ["SKY503"]
    assert len(alone) == 2  # blocking + fire-and-forget
    superseded = run_rules(
        modules, [AsyncioDisciplineRule()], superseding={"SKY601"}
    )
    assert len(superseded) == 1
    assert "fire-and-forget" in superseded[0].message


# ----------------------------------------------------------------------
# SKY602 — rpc-billing-paths


SKY602_GOOD_WRAPPER_TWO_UP = {
    "repro/distributed/fake.py": """\
class Region:
    def entry(self, site):
        self._account("PREPARE")
        self.middle(site)

    def middle(self, site):
        self.leaf(site)

    def leaf(self, site):
        return site.prepare(0.5)

    def _account(self, kind):
        self.stats.record(kind)
"""
}

SKY602_BAD_UNBILLED = {
    "repro/distributed/fake.py": """\
class Region:
    def entry(self, site):
        self.leaf(site)

    def leaf(self, site):
        return site.prepare(0.5)
"""
}

SKY602_BAD_DOUBLE = {
    "repro/distributed/fake.py": """\
class Region:
    def entry(self, site):
        self._account("PREPARE")
        self.leaf(site)

    def leaf(self, site):
        self.stats.record("PREPARE")
        return site.prepare(0.5)

    def _account(self, kind):
        self.stats.record(kind)
"""
}


def test_sky602_accepts_billing_in_a_wrapper_two_calls_up():
    assert _check(SKY602_GOOD_WRAPPER_TWO_UP, [InterproceduralBillingRule()]) == []


def test_sky602_flags_rpc_billed_nowhere_on_the_path():
    findings = _check(SKY602_BAD_UNBILLED, [InterproceduralBillingRule()])
    assert [f.rule for f in findings] == ["SKY602"]
    assert "site.prepare" in findings[0].message
    assert "Region.entry" in findings[0].message  # names the unbilled root


def test_sky602_flags_double_billing_through_a_wrapper():
    findings = _check(SKY602_BAD_DOUBLE, [InterproceduralBillingRule()])
    assert [f.rule for f in findings] == ["SKY602"]
    assert "twice" in findings[0].message
    assert "Region.entry" in findings[0].message


def test_sky602_scope_excludes_the_site_module_and_core():
    for relpath in ("repro/distributed/site.py", "repro/core/fake.py"):
        files = {relpath: SKY602_BAD_UNBILLED["repro/distributed/fake.py"]}
        assert _check(files, [InterproceduralBillingRule()]) == []


def test_sky101_steps_back_under_sky602():
    source = SKY602_BAD_UNBILLED["repro/distributed/fake.py"]
    modules = [ModuleContext("repro/distributed/fake.py", source)]
    alone = run_rules(modules, [ProtocolAccountingRule()])
    assert [f.rule for f in alone] == ["SKY101"]
    assert run_rules(modules, [ProtocolAccountingRule()], superseding={"SKY602"}) == []


# ----------------------------------------------------------------------
# SKY603 — message-kind-ledger


_MESSAGE_MODULE = """\
import enum


class MessageKind(enum.Enum):
    PREPARE = "prepare"
    RESULT = "result"
"""


def test_sky603_accepts_kinds_billed_from_their_rpc_sites():
    files = {
        "repro/net/message.py": _MESSAGE_MODULE,
        "repro/distributed/fake.py": """\
from repro.net.message import MessageKind


class Region:
    def pull(self, site):
        self.stats.record(MessageKind.PREPARE, "server", "site-0")
        self.stats.record(MessageKind.RESULT, "server", "client")
        return site.prepare(0.5)
""",
    }
    assert _check(files, [LedgerSymmetryRule()]) == []


def test_sky603_flags_a_kind_nothing_ever_bills():
    files = {
        "repro/net/message.py": _MESSAGE_MODULE,
        "repro/distributed/fake.py": """\
from repro.net.message import MessageKind


class Region:
    def pull(self, site):
        self.stats.record(MessageKind.PREPARE, "server", "site-0")
        return site.prepare(0.5)
""",
    }
    findings = _check(files, [LedgerSymmetryRule()])
    assert [f.rule for f in findings] == ["SKY603"]
    assert "RESULT" in findings[0].message
    assert findings[0].path == "repro/net/message.py"


def test_sky603_flags_a_kind_billed_away_from_its_rpc():
    files = {
        "repro/net/message.py": _MESSAGE_MODULE,
        "repro/distributed/fake.py": """\
from repro.net.message import MessageKind


class Region:
    def pull(self, site):
        self.stats.record(MessageKind.PREPARE, "server", "site-0")
        self.stats.record(MessageKind.RESULT, "server", "client")
        return site.pop_representative()
""",
    }
    findings = _check(files, [LedgerSymmetryRule()])
    assert [f.rule for f in findings] == ["SKY603"]
    assert "PREPARE" in findings[0].message


def test_sky603_attributes_bills_in_helpers_to_their_callers():
    # The repo's `_tuple_message` idiom: the bill sits in a pure helper,
    # the RPC in its caller — the ledger entry still matches.
    files = {
        "repro/net/message.py": _MESSAGE_MODULE,
        "repro/distributed/fake.py": """\
from repro.net.message import MessageKind


class Region:
    def pull(self, site):
        self._account()
        self.stats.record(MessageKind.RESULT, "server", "client")
        return site.prepare(0.5)

    def _account(self):
        self.stats.record(MessageKind.PREPARE, "server", "site-0")
""",
    }
    assert _check(files, [LedgerSymmetryRule()]) == []


# ----------------------------------------------------------------------
# The continuous-query (stream/) push path: SKY602's scope and SKY603's
# ledger both learn the SUBSCRIBE/DELTA/NOTIFY/EXPIRE kinds.


SKY602_BAD_STREAM_UNBILLED = {
    "repro/stream/fake.py": """\
class Hub:
    def epoch(self, site):
        return site.close_epoch("g0")
"""
}


def test_sky602_covers_the_stream_push_path():
    findings = _check(SKY602_BAD_STREAM_UNBILLED, [InterproceduralBillingRule()])
    assert [f.rule for f in findings] == ["SKY602"]
    assert "site.close_epoch" in findings[0].message


def test_sky602_stream_site_module_is_the_endpoint_not_a_sender():
    files = {
        "repro/stream/site.py": SKY602_BAD_STREAM_UNBILLED["repro/stream/fake.py"]
    }
    assert _check(files, [InterproceduralBillingRule()]) == []


def test_sky602_accepts_a_locally_billed_stream_epoch():
    files = {
        "repro/stream/fake.py": """\
class Hub:
    def epoch(self, site):
        self._account("DELTA")
        return site.close_epoch("g0")

    def _account(self, kind):
        self.stats.record(kind)
"""
    }
    assert _check(files, [InterproceduralBillingRule()]) == []


def test_sky101_applies_to_stream_senders_but_not_the_stream_site():
    source = SKY602_BAD_STREAM_UNBILLED["repro/stream/fake.py"]
    flagged = run_rules(
        [ModuleContext("repro/stream/fake.py", source)], [ProtocolAccountingRule()]
    )
    assert [f.rule for f in flagged] == ["SKY101"]
    assert (
        run_rules(
            [ModuleContext("repro/stream/site.py", source)],
            [ProtocolAccountingRule()],
        )
        == []
    )


_STREAM_MESSAGE_MODULE = """\
import enum


class MessageKind(enum.Enum):
    SUBSCRIBE = "subscribe"
    DELTA = "delta"
    NOTIFY = "notify"
    EXPIRE = "expire"
"""


def test_sky603_accepts_the_stream_kinds_billed_from_their_rpcs():
    files = {
        "repro/net/message.py": _STREAM_MESSAGE_MODULE,
        "repro/stream/fake.py": """\
from repro.net.message import MessageKind


class Hub:
    def register(self, site, query):
        self.stats.record(MessageKind.SUBSCRIBE, "client", "server")
        return site.register_group("g0", query)

    def epoch(self, site):
        self.stats.record(MessageKind.DELTA, "site-0", "server")
        self.stats.record(MessageKind.EXPIRE, "site-0", "server")
        self.stats.record(MessageKind.NOTIFY, "server", "client")
        return site.close_epoch("g0")
""",
    }
    assert _check(files, [LedgerSymmetryRule()]) == []


def test_sky603_flags_stream_kinds_billed_away_from_their_rpcs():
    # DELTA and EXPIRE price the close_epoch digest; billing them from
    # the registration path (register_group) breaks the ledger pairing.
    files = {
        "repro/net/message.py": _STREAM_MESSAGE_MODULE,
        "repro/stream/fake.py": """\
from repro.net.message import MessageKind


class Hub:
    def register(self, site, query):
        self.stats.record(MessageKind.SUBSCRIBE, "client", "server")
        self.stats.record(MessageKind.DELTA, "site-0", "server")
        self.stats.record(MessageKind.EXPIRE, "site-0", "server")
        self.stats.record(MessageKind.NOTIFY, "server", "client")
        return site.register_group("g0", query)
""",
    }
    findings = _check(files, [LedgerSymmetryRule()])
    assert [f.rule for f in findings] == ["SKY603", "SKY603"]
    assert "DELTA" in findings[0].message
    assert "EXPIRE" in findings[1].message


def test_sky603_flags_a_stream_kind_nothing_ever_bills():
    files = {
        "repro/net/message.py": _STREAM_MESSAGE_MODULE,
        "repro/stream/fake.py": """\
from repro.net.message import MessageKind


class Hub:
    def register(self, site, query):
        self.stats.record(MessageKind.SUBSCRIBE, "client", "server")
        return site.register_group("g0", query)

    def epoch(self, site):
        self.stats.record(MessageKind.DELTA, "site-0", "server")
        self.stats.record(MessageKind.NOTIFY, "server", "client")
        return site.close_epoch("g0")
""",
    }
    findings = _check(files, [LedgerSymmetryRule()])
    assert [f.rule for f in findings] == ["SKY603"]
    assert "EXPIRE" in findings[0].message
    assert "no billed send site" in findings[0].message


# ----------------------------------------------------------------------
# SKY604 — seed-provenance


_PROTOCOL_CONSUMER = """\
def run_query(rng):
    return rng.random()
"""


def test_sky604_flags_unseeded_rng_flowing_into_protocol_code():
    files = {
        "repro/distributed/fake.py": _PROTOCOL_CONSUMER,
        "bench/driver.py": """\
import random

from repro.distributed.fake import run_query


def main():
    rng = random.Random()
    return run_query(rng)
""",
    }
    findings = _check(files, [SeedProvenanceRule()])
    assert [f.rule for f in findings] == ["SKY604"]
    assert "unseeded" in findings[0].message
    assert findings[0].path == "bench/driver.py"  # anchored at the ctor


def test_sky604_flags_wall_clock_seeds():
    files = {
        "repro/distributed/fake.py": _PROTOCOL_CONSUMER,
        "bench/driver.py": """\
import random
import time

from repro.distributed.fake import run_query


def main():
    rng = random.Random(time.time())
    return run_query(rng)
""",
    }
    findings = _check(files, [SeedProvenanceRule()])
    assert [f.rule for f in findings] == ["SKY604"]
    assert "wall-clock-seeded" in findings[0].message


def test_sky604_accepts_seeded_generators_and_local_unseeded_ones():
    seeded = {
        "repro/distributed/fake.py": _PROTOCOL_CONSUMER,
        "bench/driver.py": """\
import random

from repro.distributed.fake import run_query


def main():
    rng = random.Random(1234)
    return run_query(rng)
""",
    }
    local_only = {
        "bench/driver.py": """\
import random


def jitter(rng):
    return rng.random()


def main():
    rng = random.Random()
    return jitter(rng)
""",
    }
    assert _check(seeded, [SeedProvenanceRule()]) == []
    assert _check(local_only, [SeedProvenanceRule()]) == []


def test_sky604_follows_returns_into_protocol_callers():
    files = {
        "bench/factory.py": """\
import random


def make_rng():
    return random.Random()
""",
        "repro/serve/fake.py": """\
from bench.factory import make_rng


class Service:
    def start(self):
        self.rng = make_rng()
""",
    }
    findings = _check(files, [SeedProvenanceRule()])
    assert [f.rule for f in findings] == ["SKY604"]
    assert findings[0].path == "bench/factory.py"


# ----------------------------------------------------------------------
# SKY605 — lock-discipline


def test_sky605_flags_an_unguarded_write_to_guarded_state():
    files = {
        "repro/distributed/fake.py": """\
class Books:
    def __init__(self):
        self.count = 0

    def hit(self):
        with self._state_lock:
            self.count += 1

    def race(self):
        self.count += 1
""",
    }
    findings = _check(files, [LockDisciplineRule()])
    assert [f.rule for f in findings] == ["SKY605"]
    assert "Books.race" in findings[0].message
    assert findings[0].line == 10


def test_sky605_accepts_uniformly_guarded_writes_and_init():
    files = {
        "repro/distributed/fake.py": """\
class Books:
    def __init__(self):
        self.count = 0

    def hit(self):
        with self._state_lock:
            self.count += 1

    def miss(self):
        with self._state_lock:
            self.count -= 1
""",
    }
    assert _check(files, [LockDisciplineRule()]) == []


def test_sky605_distinguishes_full_attribute_paths():
    # Guarding `self.stats.sites_lost` says nothing about `self.stats.rounds`.
    files = {
        "repro/distributed/fake.py": """\
class Books:
    def hit(self):
        with self._state_lock:
            self.stats.sites_lost += 1

    def other(self):
        self.stats.rounds += 1
""",
    }
    assert _check(files, [LockDisciplineRule()]) == []


# ----------------------------------------------------------------------
# registry sanity


def test_program_rules_cover_sky601_through_sky605():
    assert [rule.id for rule in PROGRAM_RULES] == [
        "SKY601",
        "SKY602",
        "SKY603",
        "SKY604",
        "SKY605",
    ]
    for rule in PROGRAM_RULES:
        assert rule.description.strip()

"""Good/bad fixture pairs for every skylint rule.

Each bad fixture proves the rule catches the defect class it was
written for; each good fixture proves the idiomatic repo pattern stays
clean (no false positives on the code style the fix commits introduced).
"""

from __future__ import annotations

from typing import List

from repro.analysis.framework import Finding, ModuleContext, Rule, run_rules
from repro.analysis.rules.asyncio_discipline import AsyncioDisciplineRule
from repro.analysis.rules.concurrency import ThreadSharedStateRule
from repro.analysis.rules.determinism import UnseededRandomRule, WallClockRule
from repro.analysis.rules.probability import (
    FloatEqualityRule,
    RawNonOccurrenceProductRule,
)
from repro.analysis.rules.protocol import (
    EmissionDisciplineRule,
    ProtocolAccountingRule,
)
from repro.analysis.rules.replica import ReplicaAccountingRule
from repro.analysis.rules.rpc import RpcDisciplineRule


def _run(source: str, rule: Rule, relpath: str = "repro/core/fake.py") -> List[Finding]:
    return run_rules([ModuleContext(relpath, source)], [rule])


# ----------------------------------------------------------------------
# SKY101 — protocol-accounting


SKY101_BAD = """\
class Region:
    def pull(self, site, preference):
        return site.prepare(preference)
"""

SKY101_GOOD = """\
class Region:
    def pull(self, site, preference):
        self._lan("PREPARE", to_site=site)
        return site.prepare(preference)
"""


def test_sky101_flags_unbilled_site_rpc():
    findings = _run(SKY101_BAD, ProtocolAccountingRule(), "repro/distributed/fake.py")
    assert [f.rule for f in findings] == ["SKY101"]
    assert "prepare" in findings[0].message


def test_sky101_accepts_rpc_with_accounting_in_same_function():
    assert _run(SKY101_GOOD, ProtocolAccountingRule(), "repro/distributed/fake.py") == []


def test_sky101_nested_thunk_bills_against_outermost_function():
    source = """\
class Region:
    def pull(self, site):
        thunk = lambda: site.pop_representative()
        return thunk()
"""
    findings = _run(source, ProtocolAccountingRule(), "repro/distributed/fake.py")
    assert [f.rule for f in findings] == ["SKY101"]


def test_sky101_exempts_the_site_module_itself():
    assert _run(SKY101_BAD, ProtocolAccountingRule(), "repro/distributed/site.py") == []


def test_sky101_ignores_non_distributed_modules():
    assert _run(SKY101_BAD, ProtocolAccountingRule(), "repro/core/fake.py") == []


# ----------------------------------------------------------------------
# SKY102 — emission-discipline


SKY102_BAD = """\
class Fast(Coordinator):
    def _execute(self):
        for head in self._heap:
            self.report(head.tuple, head.probability)
            buffer.offer(head.tuple, head.probability)
"""

SKY102_GOOD = """\
class Fast(Coordinator):
    def _execute(self):
        for head in self._heap:
            self.emit(head.tuple, head.probability)
            if self.drain_topk(remaining_cap):
                return
        self.finish_topk()

    def emit(self, t, global_probability):
        self._topk.offer(t, global_probability)
"""


def test_sky102_flags_emission_bypassing_the_funnel():
    findings = _run(SKY102_BAD, EmissionDisciplineRule(), "repro/distributed/fake.py")
    assert [f.rule for f in findings] == ["SKY102", "SKY102"]
    assert "self.report(...)" in findings[0].message
    assert "offer" in findings[1].message


def test_sky102_accepts_the_emit_funnel():
    assert _run(SKY102_GOOD, EmissionDisciplineRule(), "repro/distributed/fake.py") == []


def test_sky102_transitive_coordinator_subclasses_are_covered():
    source = """\
class Base(Coordinator):
    pass

class Leaf(Base):
    def _execute(self):
        self.report(t, p)
"""
    findings = _run(source, EmissionDisciplineRule(), "repro/distributed/fake.py")
    assert [f.rule for f in findings] == ["SKY102"]


def test_sky102_exempts_bookkeeping_and_callbacks():
    # `self.coverage.report(...)` is accounting, not emission, and
    # passing `self.report` as the drain callback is the sanctioned
    # hand-off — neither may trip the rule.
    source = """\
class Fast(Coordinator):
    def run(self):
        self.coverage.report(result_keys=keys)
        self._topk.drain(cap, self.report)
"""
    assert _run(source, EmissionDisciplineRule(), "repro/distributed/fake.py") == []


def test_sky102_ignores_non_coordinator_classes():
    source = """\
class Helper:
    def push(self):
        self.report(t, p)
        queue.offer(t, p)
"""
    assert _run(source, EmissionDisciplineRule(), "repro/distributed/fake.py") == []


# ----------------------------------------------------------------------
# SKY201 — determinism-rng


def test_sky201_flags_process_global_random():
    source = """\
import random

def jitter():
    return random.random()
"""
    findings = _run(source, UnseededRandomRule())
    assert [f.rule for f in findings] == ["SKY201"]


def test_sky201_flags_unseeded_constructors():
    source = """\
import random
import numpy as np

def build():
    a = random.Random()
    b = np.random.default_rng()
    return a, b
"""
    findings = _run(source, UnseededRandomRule())
    assert [f.rule for f in findings] == ["SKY201", "SKY201"]


def test_sky201_flags_numpy_legacy_global_state():
    source = """\
import numpy as np

def draw():
    return np.random.rand(3)
"""
    findings = _run(source, UnseededRandomRule())
    assert [f.rule for f in findings] == ["SKY201"]


def test_sky201_flags_maybe_none_seed_passthrough():
    source = """\
import numpy as np

def make(seed=None):
    return np.random.default_rng(seed)
"""
    findings = _run(source, UnseededRandomRule())
    assert [f.rule for f in findings] == ["SKY201"]
    assert "seed" in findings[0].message


def test_sky201_flags_conditional_none_seed():
    source = """\
import random

def make(flag):
    return random.Random(None if flag else 3)
"""
    findings = _run(source, UnseededRandomRule())
    assert [f.rule for f in findings] == ["SKY201"]


def test_sky201_accepts_seeded_and_normalised_generators():
    source = """\
import random
import numpy as np

def make(seed=None):
    rng = np.random.default_rng(0 if seed is None else seed)
    seed = 0 if seed is None else seed
    sub = random.Random(seed + 1)
    return rng, sub
"""
    assert _run(source, UnseededRandomRule()) == []


def test_sky201_exempts_bench_and_cli_paths():
    source = """\
import random

def jitter():
    return random.random()
"""
    assert _run(source, UnseededRandomRule(), "repro/bench/fake.py") == []
    assert _run(source, UnseededRandomRule(), "repro/cli.py") == []


# ----------------------------------------------------------------------
# SKY202 — determinism-clock


def test_sky202_flags_wall_clock_reads():
    source = """\
import time

def stamp():
    return time.time()
"""
    findings = _run(source, WallClockRule())
    assert [f.rule for f in findings] == ["SKY202"]


def test_sky202_accepts_monotonic_measurement_clocks():
    source = """\
import time

def measure():
    return time.perf_counter() - time.process_time()
"""
    assert _run(source, WallClockRule()) == []


def test_sky202_exempts_socket_transport():
    source = """\
import time

def stamp():
    return time.time()
"""
    assert _run(source, WallClockRule(), "repro/net/sockets.py") == []


# ----------------------------------------------------------------------
# SKY301 — probability-float-equality


def test_sky301_flags_probability_equality_with_float_literal():
    source = """\
def check(prob):
    return prob == 0.5
"""
    findings = _run(source, FloatEqualityRule())
    assert [f.rule for f in findings] == ["SKY301"]


def test_sky301_flags_probability_to_probability_inequality():
    source = """\
def same(p_sky, other_prob):
    return p_sky != other_prob
"""
    findings = _run(source, FloatEqualityRule())
    assert [f.rule for f in findings] == ["SKY301"]


def test_sky301_accepts_integer_sentinels_and_order_comparisons():
    source = """\
def check(prob, count, threshold):
    if count == 0:
        return False
    return prob >= threshold
"""
    assert _run(source, FloatEqualityRule()) == []


# ----------------------------------------------------------------------
# SKY302 — probability-raw-product


def test_sky302_flags_loop_accumulation_of_one_minus_p():
    source = """\
def bound(tuples):
    acc = 1.0
    for t in tuples:
        acc *= 1.0 - t.probability
    return acc
"""
    findings = _run(source, RawNonOccurrenceProductRule())
    assert [f.rule for f in findings] == ["SKY302"]


def test_sky302_flags_prod_calls_over_one_minus_p():
    source = """\
import numpy as np

def bound(probs):
    return np.prod([1.0 - prob for prob in probs])
"""
    findings = _run(source, RawNonOccurrenceProductRule())
    assert [f.rule for f in findings] == ["SKY302"]


def test_sky302_accepts_helper_calls_and_single_factors():
    source = """\
from repro.core.probability import non_occurrence_product

def bound(prob, other_prob, probs):
    single = prob * (1.0 - other_prob)
    return single * non_occurrence_product(probs)
"""
    assert _run(source, RawNonOccurrenceProductRule()) == []


def test_sky302_exempts_the_blessed_helper_modules():
    source = """\
def bound(tuples):
    acc = 1.0
    for t in tuples:
        acc *= 1.0 - t.probability
    return acc
"""
    assert _run(source, RawNonOccurrenceProductRule(), "repro/core/probability.py") == []
    assert _run(source, RawNonOccurrenceProductRule(), "repro/index/fake.py") == []


# ----------------------------------------------------------------------
# SKY401 — rpc-discipline


def test_sky401_flags_direct_rpc_from_a_coordinator_subclass():
    source = """\
class FastCoordinator(Coordinator):
    def poll(self, site, t):
        return site.probe(t)
"""
    findings = _run(source, RpcDisciplineRule(), "repro/distributed/fake.py")
    assert [f.rule for f in findings] == ["SKY401"]
    assert "_rpc" in findings[0].message


def test_sky401_accepts_rpcs_inside_the_funnel():
    source = """\
class FastCoordinator(Coordinator):
    def poll(self, site, t):
        return self._rpc(site, "probe", lambda: site.probe(t))

    def liveness(self, site):
        try:
            return site.queue_size()
        except RETRYABLE_FAULTS:
            return None
"""
    assert _run(source, RpcDisciplineRule(), "repro/distributed/fake.py") == []


def test_sky401_ignores_non_coordinator_classes():
    source = """\
class RegionMaintainer:
    def poll(self, site, t):
        return site.probe(t)
"""
    assert _run(source, RpcDisciplineRule(), "repro/distributed/fake.py") == []


def test_sky401_transitive_inheritance_is_resolved_across_modules():
    base = ModuleContext(
        "repro/distributed/base.py",
        "class EagerCoordinator(Coordinator):\n    pass\n",
    )
    leaf = ModuleContext(
        "repro/distributed/leaf.py",
        """\
class Leaf(EagerCoordinator):
    def poll(self, site, t):
        return site.probe(t)
""",
    )
    findings = run_rules([base, leaf], [RpcDisciplineRule()])
    assert [f.rule for f in findings] == ["SKY401"]
    assert findings[0].path == "repro/distributed/leaf.py"


# ----------------------------------------------------------------------
# SKY501 — thread-shared-state


def test_sky501_flags_unlocked_augassign_reachable_from_pool_workers():
    source = """\
class Coordinator:
    def broadcast(self, sites):
        def probe(site):
            self.stats.sites_lost += 1
        return list(self._pool.map(probe, sites))
"""
    findings = _run(source, ThreadSharedStateRule())
    assert [f.rule for f in findings] == ["SKY501"]
    assert "lock" in findings[0].message


def test_sky501_follows_self_method_calls_transitively():
    source = """\
class Coordinator:
    def _book(self, site):
        self.stats.rounds += 1

    def broadcast(self, sites):
        return list(self._pool.map(self._book, sites))
"""
    findings = _run(source, ThreadSharedStateRule())
    assert [f.rule for f in findings] == ["SKY501"]


def test_sky501_accepts_writes_under_a_lock():
    source = """\
class Coordinator:
    def broadcast(self, sites):
        def probe(site):
            with self._state_lock:
                self.stats.sites_lost += 1
        return list(self._pool.map(probe, sites))
"""
    assert _run(source, ThreadSharedStateRule()) == []


def test_sky501_warns_on_plain_assigns_shared_with_other_methods():
    source = """\
class Coordinator:
    def __init__(self):
        self.latest = None

    def reset(self):
        self.latest = None

    def broadcast(self, sites):
        def probe(site):
            self.latest = site
        return list(self._pool.map(probe, sites))
"""
    findings = _run(source, ThreadSharedStateRule())
    assert [f.rule for f in findings] == ["SKY501"]
    assert findings[0].severity == "warning"
    assert "reset" in findings[0].message


def test_sky501_ignores_classes_without_executor_dispatch():
    source = """\
class Coordinator:
    def run(self, sites):
        for site in sites:
            self.stats.rounds += 1
"""
    assert _run(source, ThreadSharedStateRule()) == []


SKY501_BAD_PROCESS_WRITE = """\
class TablePool:
    def build(self, stores):
        def worker(store):
            self.tables_built += 1
            return store
        return list(self._process_pool.map(worker, stores))
"""

SKY501_BAD_PROCESS_WRITE_UNDER_LOCK = """\
class TablePool:
    def build(self, stores):
        def worker(store):
            with self._lock:
                self.latest = store
            return store
        return list(self._process_pool.map(worker, stores))
"""

SKY501_GOOD_PROCESS_PAYLOAD = """\
class TablePool:
    def build(self, store):
        future = self._process_pool.submit(build_payload, store.values)
        self.payloads += 1
        return future.result()
"""


def test_sky501_flags_any_self_write_in_process_pool_callables():
    findings = _run(SKY501_BAD_PROCESS_WRITE, ThreadSharedStateRule())
    assert [f.rule for f in findings] == ["SKY501"]
    assert "pickled copy" in findings[0].message


def test_sky501_process_writes_are_not_excused_by_locks():
    """Locks don't cross process boundaries — still an error."""
    findings = _run(SKY501_BAD_PROCESS_WRITE_UNDER_LOCK, ThreadSharedStateRule())
    assert [f.rule for f in findings] == ["SKY501"]
    assert findings[0].severity == "error"


def test_sky501_accepts_module_level_workers_returning_payloads():
    """The sanctioned shape: ship arguments in, return a payload out.

    The submitted callable is module-level (not resolvable to shared
    state), and the parent-side bookkeeping write is outside it.
    """
    assert _run(SKY501_GOOD_PROCESS_PAYLOAD, ThreadSharedStateRule()) == []


def test_sky501_recognises_process_pools_by_constructor_alias():
    source = """\
from concurrent.futures import ProcessPoolExecutor


class TablePool:
    def build(self, stores):
        def worker(store):
            self.tables_built += 1
        with ProcessPoolExecutor() as pool:
            return list(pool.map(worker, stores))
"""
    findings = _run(source, ThreadSharedStateRule())
    assert [f.rule for f in findings] == ["SKY501"]
    assert "pickled copy" in findings[0].message


# ----------------------------------------------------------------------
# SKY103 — replica-accounting


SKY103_BAD = """\
class Manager:
    def forward(self, replica, t):
        replica.insert_tuple(t)
"""

SKY103_GOOD = """\
class Manager:
    def forward(self, replica, t):
        self._account("REPLICA_SYNC", "site-0", "replica-0", tuples=1)
        replica.insert_tuple(t)
"""


def test_sky103_flags_unbilled_replica_rpc():
    findings = _run(SKY103_BAD, ReplicaAccountingRule(), "repro/replica/fake.py")
    assert [f.rule for f in findings] == ["SKY103"]
    assert "insert_tuple" in findings[0].message


def test_sky103_accepts_billed_replica_rpc():
    assert _run(SKY103_GOOD, ReplicaAccountingRule(), "repro/replica/fake.py") == []


def test_sky103_covers_the_maintenance_surface_sky101_skips():
    source = """\
class Manager:
    def digest(self, replica):
        return replica.partition_digest()
"""
    findings = _run(source, ReplicaAccountingRule(), "repro/replica/fake.py")
    assert [f.rule for f in findings] == ["SKY103"]
    # SKY101 owns distributed/, not replica/ — same defect, zero overlap.
    assert _run(source, ProtocolAccountingRule(), "repro/replica/fake.py") == []


def test_sky103_ignores_modules_outside_replica():
    assert _run(SKY103_BAD, ReplicaAccountingRule(), "repro/distributed/fake.py") == []


def test_sky103_nested_thunk_bills_against_outermost_function():
    source = """\
class Manager:
    def sweep(self, replicas):
        return [r.partition_digest() for r in replicas]
"""
    findings = _run(source, ReplicaAccountingRule(), "repro/replica/fake.py")
    assert [f.rule for f in findings] == ["SKY103"]


# ----------------------------------------------------------------------
# SKY503 — asyncio-discipline


SKY503_BAD_BLOCKING = """\
import socket
import time


class Service:
    async def step(self):
        time.sleep(0.1)
        conn = socket.create_connection(("site-0", 9000))
        return conn
"""

SKY503_GOOD_ASYNC = """\
import asyncio


class Service:
    async def step(self):
        await asyncio.sleep(0)
        reader, writer = await asyncio.open_connection("site-0", 9000)
        return reader, writer
"""

SKY503_BAD_FORGOTTEN_TASK = """\
import asyncio


class Service:
    async def start(self):
        asyncio.create_task(self._scheduler())
"""

SKY503_GOOD_KEPT_TASK = """\
import asyncio


class Service:
    def start(self, loop):
        self._scheduler_task = loop.create_task(self._scheduler())

    async def run_clients(self, n):
        workers = [asyncio.ensure_future(self._client()) for _ in range(n)]
        await asyncio.gather(*workers)
"""


def test_sky503_flags_blocking_calls_in_async_def():
    findings = _run(
        SKY503_BAD_BLOCKING, AsyncioDisciplineRule(), "repro/serve/fake.py"
    )
    assert [f.rule for f in findings] == ["SKY503", "SKY503"]
    assert "time.sleep" in findings[0].message
    assert "socket.create_connection" in findings[1].message


def test_sky503_accepts_the_asyncio_equivalents():
    assert (
        _run(SKY503_GOOD_ASYNC, AsyncioDisciplineRule(), "repro/serve/fake.py")
        == []
    )


def test_sky503_allows_blocking_calls_in_sync_functions():
    source = """\
import time


class Service:
    def warmup(self):
        time.sleep(0.1)
"""
    assert _run(source, AsyncioDisciplineRule(), "repro/serve/fake.py") == []


def test_sky503_flags_fire_and_forget_create_task():
    findings = _run(
        SKY503_BAD_FORGOTTEN_TASK, AsyncioDisciplineRule(), "repro/serve/fake.py"
    )
    assert [f.rule for f in findings] == ["SKY503"]
    assert "fire-and-forget" in findings[0].message


def test_sky503_accepts_stored_and_gathered_tasks():
    assert (
        _run(SKY503_GOOD_KEPT_TASK, AsyncioDisciplineRule(), "repro/serve/fake.py")
        == []
    )


def test_sky503_scoped_to_the_async_modules():
    assert (
        _run(SKY503_BAD_BLOCKING, AsyncioDisciplineRule(), "repro/net/sockets.py")
        == []
    )
    findings = _run(
        SKY503_BAD_BLOCKING, AsyncioDisciplineRule(), "repro/net/aio.py"
    )
    assert [f.rule for f in findings] == ["SKY503", "SKY503"]


SKY503_BAD_POOL_JOIN = """\
class TablePool:
    async def aclose(self):
        self._executor.shutdown(wait=True)

    async def drain(self):
        self._pool.join()
"""

SKY503_GOOD_SYNC_CLOSE = """\
import asyncio


class TablePool:
    def close(self):
        self._executor.shutdown(wait=True)

    async def build_async(self, store):
        future = self._executor.submit(build_payload, store.values)
        return await asyncio.wrap_future(future)
"""


def test_sky503_flags_blocking_pool_joins_in_async_def():
    findings = _run(
        SKY503_BAD_POOL_JOIN, AsyncioDisciplineRule(), "repro/distributed/workers.py"
    )
    assert [f.rule for f in findings] == ["SKY503", "SKY503"]
    assert "shutdown" in findings[0].message
    assert "join" in findings[1].message


def test_sky503_accepts_sync_teardown_and_wrapped_futures():
    assert (
        _run(
            SKY503_GOOD_SYNC_CLOSE,
            AsyncioDisciplineRule(),
            "repro/distributed/workers.py",
        )
        == []
    )


def test_sky503_ignores_joins_on_non_executor_receivers():
    source = """\
class Service:
    async def render(self, parts):
        return ", ".join(parts)
"""
    assert (
        _run(source, AsyncioDisciplineRule(), "repro/distributed/workers.py") == []
    )


def test_sky503_worker_module_in_scope_for_blocking_calls():
    findings = _run(
        SKY503_BAD_BLOCKING, AsyncioDisciplineRule(), "repro/distributed/workers.py"
    )
    assert [f.rule for f in findings] == ["SKY503", "SKY503"]

"""Self-check: skylint over the real src/ tree matches the committed baseline.

This is the same gate CI runs (``python -m repro.analysis``), expressed
as a tier-1 test so a finding introduced by a patch fails locally before
it ever reaches the workflow.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, compare, load_baseline
from repro.analysis.engine import analyze_project
from repro.analysis.framework import ModuleContext, run_rules
from repro.analysis.rules import ALL_RULES, PROGRAM_RULES


def _repo_root() -> Path:
    root = Path(__file__).resolve()
    for candidate in root.parents:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    raise AssertionError("pyproject.toml not found above tests/")


@pytest.fixture(scope="module")
def modules():
    src = _repo_root() / "src"
    paths = sorted(src.rglob("*.py"))
    assert paths, "no sources found under src/"
    return [ModuleContext.from_file(path, src) for path in paths]


def test_src_matches_the_committed_baseline(modules):
    findings = run_rules(modules, ALL_RULES)
    baseline = load_baseline(_repo_root() / DEFAULT_BASELINE_NAME)
    comparison = compare(findings, baseline)
    new = [f"{f.rule} {f.path}:{f.line} {f.message}" for f in comparison.new]
    stale = [f"{e.rule} {e.path} ({e.context})" for e in comparison.stale]
    assert comparison.clean, (
        "skylint drifted from the committed baseline.\n"
        "New findings (fix them, or baseline with --write-baseline and a "
        "justification):\n  " + "\n  ".join(new or ["<none>"]) + "\n"
        "Stale baseline entries (delete them):\n  " + "\n  ".join(stale or ["<none>"])
    )


def test_whole_program_pass_is_clean_over_the_default_scope():
    """The CI gate proper: both phases over src/ + benchmarks/ + examples/.

    Runs without a cache so the result is a pure function of the
    sources; the superseding machinery means SKY101/SKY503's blocking
    checks step back and SKY601/SKY602 take over here.
    """
    root = _repo_root()
    paths = [
        root / d for d in ("src", "benchmarks", "examples") if (root / d).is_dir()
    ]
    assert paths, "no default scan directories found"
    findings, stats = analyze_project(
        paths, ALL_RULES, PROGRAM_RULES, root=root, cache_path=None
    )
    assert stats.files > 0 and not stats.notes, stats.notes
    baseline = load_baseline(root / DEFAULT_BASELINE_NAME)
    comparison = compare(findings, baseline)
    new = [f"{f.rule} {f.path}:{f.line} {f.message}" for f in comparison.new]
    assert comparison.clean, (
        "whole-program skylint drifted from the committed baseline:\n  "
        + "\n  ".join(new or ["<none>"])
    )


def test_every_suppression_in_src_carries_a_reason(modules):
    reasonless = [
        f"{module.relpath}:{line}"
        for module in modules
        for line, (_ids, reason) in sorted(module.suppressions.items())
        if not reason.strip()
    ]
    assert reasonless == [], f"reasonless `skylint: ignore` comments: {reasonless}"


def test_the_committed_baseline_is_currently_empty():
    # Not a framework invariant -- a statement of repo policy: every
    # finding to date was fixed, none waived.  If a future PR must
    # baseline a finding, update this test alongside the justification.
    baseline = load_baseline(_repo_root() / DEFAULT_BASELINE_NAME)
    assert baseline == []

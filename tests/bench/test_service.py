"""The serving-layer load-test harness (``python -m repro.bench.service``)."""

import json

from repro.bench.service import _percentile, main, run_service_bench


class TestPercentile:
    def test_empty_series(self):
        assert _percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 4.0
        assert _percentile(values, 0.5) == 3.0  # round(0.5 * 3) = 2 -> 3.0


class TestQuickRun:
    def test_quick_bench_writes_the_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        assert main(["--quick", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["artifact"] == "BENCH_service"
        assert doc["quick"] is True
        # Two open-loop rate points + two closed-loop client points +
        # the remote pair (sync-stepped baseline vs overlapped steps).
        assert len(doc["results"]) == 6
        modes = [row["mode"] for row in doc["results"]]
        assert modes.count("open-loop") == 2
        assert modes.count("closed-loop") == 2
        assert modes.count("remote-closed-loop") == 2
        remote = [r for r in doc["results"] if r["mode"] == "remote-closed-loop"]
        assert sorted(r["overlap_steps"] for r in remote) == [False, True]
        assert all(r["clients"] == 8 for r in remote)
        assert all(r["rpc_delay_s"] > 0 for r in remote)
        for row in doc["results"]:
            assert row["finished"] == row["queries"]
            assert row["failed"] == 0
            assert row["latency_p50_ms"] <= row["latency_p95_ms"]
            assert row["latency_p95_ms"] <= row["latency_p99_ms"]
            assert row["throughput_qps"] > 0
            assert row["tuples_transmitted"] > 0
        printed = capsys.readouterr().out
        assert "open-loop" in printed and "closed-loop" in printed
        assert "remote makespan" in printed

    def test_document_carries_the_reproducibility_keys(self, tmp_path):
        out = tmp_path / "doc.json"
        main(["--quick", "--out", str(out)])
        doc = json.loads(out.read_text())
        for key in ("generated_by", "python", "platform", "seed", "scale"):
            assert key in doc


class TestDeterministicMix:
    def test_bandwidth_is_seed_deterministic_across_runs(self):
        # Latency is wall-clock, but the query mix and every session's
        # bandwidth bill are seeded: two runs move identical tuples.
        first = run_service_bench(quick=True)
        second = run_service_bench(quick=True)
        a = [row["tuples_transmitted"] for row in first["results"]]
        b = [row["tuples_transmitted"] for row in second["results"]]
        assert a == b

"""The figure-regeneration CLI (``python -m repro.bench``)."""

import pytest

from repro.bench.__main__ import main


class TestList:
    def test_list_shows_every_figure(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                     "fig14", "cost-model", "ablation-edsud", "ablation-site"):
            assert name in out


class TestRun:
    def test_cost_model_runs_instantly(self, capsys):
        assert main(["cost-model", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "N_back" in out and "N_local" in out
        assert "scale=ci" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        assert main(["cost-model", "--scale", "ci", "--out", str(target)]) == 0
        text = target.read_text()
        assert "N_back" in text

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["cost-model", "--scale", "galactic"])

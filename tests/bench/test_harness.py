"""Harness plumbing: scales, measurement, averaging."""

import pytest

from repro.bench.harness import SCALES, FigureResult, Series, average_runs, measure
from repro.data.workload import make_synthetic_workload


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"ci", "default", "paper"}

    def test_paper_scale_matches_table3(self):
        paper = SCALES["paper"]
        assert paper.cardinality == 2_000_000
        assert tuple(paper.site_values) == (40, 60, 80, 100)
        assert paper.default_sites == 60
        assert tuple(paper.dim_values) == (2, 3, 4, 5)
        assert tuple(paper.threshold_values) == (0.3, 0.5, 0.7, 0.9)
        assert paper.default_threshold == 0.3
        assert paper.repeats == 10

    def test_describe(self):
        assert "N=3000" in SCALES["ci"].describe()


class TestSeriesAndFigure:
    def test_series_append(self):
        s = Series("x", [], [])
        s.append(1, 2.0)
        s.append(2, 3.0)
        assert s.x == [1, 2] and s.y == [2.0, 3.0]

    def test_figure_panel_accumulates(self):
        fig = FigureResult("f", "t", "x", "y")
        fig.panel("a").append(Series("s", [1], [1.0]))
        assert len(fig.panels["a"]) == 1


class TestMeasure:
    def test_measure_runs_algorithm(self):
        wl = make_synthetic_workload(n=300, d=2, sites=3, seed=1)
        result = measure(wl, 0.3, "edsud")
        assert result.algorithm == "e-DSUD"
        assert result.bandwidth > 0

    def test_average_runs_aggregates(self):
        def factory(seed):
            return make_synthetic_workload(n=200, d=2, sites=3, seed=seed)

        totals = average_runs(factory, 0.3, ("dsud", "edsud"), repeats=2)
        assert set(totals) == {"dsud", "edsud"}
        for metrics in totals.values():
            assert metrics["bandwidth"] > 0
            assert metrics["results"] > 0
            assert metrics["ceiling"] == metrics["results"] * 3

    def test_average_runs_same_workload_for_all_algorithms(self):
        """Both algorithms must find the same result count per seed."""
        def factory(seed):
            return make_synthetic_workload(n=200, d=2, sites=3, seed=seed)

        totals = average_runs(factory, 0.3, ("dsud", "edsud"), repeats=3)
        assert totals["dsud"]["results"] == pytest.approx(totals["edsud"]["results"])

"""Experiment drivers: every figure runs at a smoke scale and carries
the paper's qualitative shape."""


from repro.bench.experiments import (
    ALL_FIGURES,
    run_ablation_edsud,
    run_ablation_site,
    run_cost_model,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig12,
    run_fig14,
)
from repro.bench.harness import Scale

SMOKE = Scale(
    name="smoke",
    cardinality=600,
    site_values=(3, 5),
    default_sites=4,
    dim_values=(2, 3),
    threshold_values=(0.3, 0.7),
    gaussian_means=(0.4, 0.7),
    repeats=1,
    update_counts=(3, 6),
)


def series_by_label(fig, panel):
    return {s.label: s for s in fig.panels[panel]}


class TestRegistry:
    def test_all_figures_present(self):
        assert set(ALL_FIGURES) == {
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "cost-model", "ablation-edsud", "ablation-site",
            "ablation-partition", "ablation-synopsis", "topk",
        }

    def test_every_driver_has_a_docstring(self):
        for fn in ALL_FIGURES.values():
            assert fn.__doc__ and len(fn.__doc__.strip()) > 40


class TestFig8:
    def test_shape(self):
        fig = run_fig8(SMOKE)
        for panel in fig.panels:
            series = series_by_label(fig, panel)
            assert set(series) == {"DSUD", "e-DSUD", "Ceiling"}
            for d in range(len(SMOKE.dim_values)):
                assert series["e-DSUD"].y[d] <= series["DSUD"].y[d]
                assert series["Ceiling"].y[d] <= series["e-DSUD"].y[d]
            # bandwidth grows with dimensionality
            assert series["DSUD"].y[-1] > series["DSUD"].y[0]


class TestFig9:
    def test_shape(self):
        fig = run_fig9(SMOKE)
        for panel in fig.panels:
            series = series_by_label(fig, panel)
            # more sites -> more bandwidth
            assert series["DSUD"].y[-1] > series["DSUD"].y[0]
            for i in range(len(SMOKE.site_values)):
                assert series["e-DSUD"].y[i] <= series["DSUD"].y[i]


class TestFig10:
    def test_shape(self):
        fig = run_fig10(SMOKE)
        for panel in fig.panels:
            series = series_by_label(fig, panel)
            # higher threshold -> less bandwidth
            assert series["DSUD"].y[-1] < series["DSUD"].y[0]
            assert series["e-DSUD"].y[-1] < series["e-DSUD"].y[0]


class TestFig12:
    def test_progress_series_monotone(self):
        fig = run_fig12(SMOKE)
        for panel, series_list in fig.panels.items():
            for s in series_list:
                assert s.y == sorted(s.y), f"non-monotone series in {panel}"
                assert s.x == sorted(s.x)


class TestFig14:
    def test_incremental_beats_naive_in_total(self):
        fig = run_fig14(SMOKE)
        for panel, series_list in fig.panels.items():
            by_label = {s.label: s for s in series_list}
            assert sum(by_label["Incremental"].y) < sum(by_label["Naive"].y)


class TestCostModel:
    def test_nback_above_nlocal(self):
        fig = run_cost_model(SMOKE)
        (panel,) = fig.panels
        by_label = {s.label: s for s in fig.panels[panel]}
        for back, local in zip(by_label["N_back"].y, by_label["N_local"].y):
            assert back > local


class TestTopKCurve:
    def test_monotone_and_meets_full_bill(self):
        from repro.bench.experiments import run_topk_curve

        fig = run_topk_curve(SMOKE)
        for panel, series_list in fig.panels.items():
            (series,) = series_list
            numeric = [y for x, y in zip(series.x, series.y) if x != "full"]
            assert numeric == sorted(numeric)
            full = series.y[series.x.index("full")]
            assert numeric[-1] <= full


class TestAblations:
    def test_partition_ablation_covers_all_schemes(self):
        from repro.bench.experiments import run_ablation_partition

        fig = run_ablation_partition(SMOKE)
        for panel, series_list in fig.panels.items():
            (series,) = series_list
            assert set(series.x) == {"uniform", "round-robin", "range", "angle"}
            assert all(y > 0 for y in series.y)

    def test_edsud_ablation_variants_complete(self):
        fig = run_ablation_edsud(SMOKE)
        for panel, series_list in fig.panels.items():
            (series,) = series_list
            assert "DSUD" in series.x
            assert "e-DSUD (paper)" in series.x
            assert len(series.x) == 5

    def test_site_ablation_runs(self):
        fig = run_ablation_site(SMOKE)
        (panel,) = fig.panels
        bandwidth = fig.panels[panel][0]
        by_variant = dict(zip(bandwidth.x, bandwidth.y))
        # disabling feedback pruning can only cost bandwidth
        assert by_variant["no-feedback-pruning"] >= by_variant["full"]
        # index and product-aggregate switches never change bandwidth
        assert by_variant["no-index"] == by_variant["full"]
        assert by_variant["no-product-aggregate"] == by_variant["full"]

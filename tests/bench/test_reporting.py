"""Text rendering of figure results."""

from repro.bench.harness import FigureResult, Series
from repro.bench.reporting import downsample, render_figure


def sample_figure():
    fig = FigureResult("figX", "A test figure", "d", "tuples")
    fig.panels["a"] = [
        Series("DSUD", [2, 3, 4], [100.0, 200.0, 400.0]),
        Series("e-DSUD", [2, 3, 4], [80.0, 150.0, 300.0]),
    ]
    return fig


class TestDownsample:
    def test_short_series_untouched(self):
        s = Series("s", [1, 2, 3], [1.0, 2.0, 3.0])
        assert downsample(s, max_points=5) is s

    def test_long_series_keeps_endpoints(self):
        s = Series("s", list(range(100)), [float(i) for i in range(100)])
        thin = downsample(s, max_points=10)
        assert len(thin.x) <= 10
        assert thin.x[0] == 0 and thin.x[-1] == 99

    def test_downsample_preserves_alignment(self):
        s = Series("s", list(range(50)), [float(i * 2) for i in range(50)])
        thin = downsample(s, max_points=7)
        for x, y in zip(thin.x, thin.y):
            assert y == float(x * 2)


class TestRenderFigure:
    def test_contains_title_labels_and_values(self):
        text = render_figure(sample_figure())
        assert "figX" in text
        assert "A test figure" in text
        assert "panel a" in text
        assert "DSUD" in text and "e-DSUD" in text
        assert "400" in text

    def test_misaligned_series_get_placeholders(self):
        fig = FigureResult("f", "t", "x", "y")
        fig.panels["p"] = [
            Series("a", [1, 2], [1.0, 2.0]),
            Series("b", [2, 3], [5.0, 6.0]),
        ]
        text = render_figure(fig)
        assert "-" in text  # missing cells rendered as dashes

    def test_notes_rendered(self):
        fig = sample_figure()
        fig.notes.append("scaled down 100x")
        assert "scaled down 100x" in render_figure(fig)

    def test_float_formatting(self):
        fig = FigureResult("f", "t", "x", "y")
        fig.panels["p"] = [Series("a", [1], [1234567.0]), Series("b", [1], [0.00042])]
        text = render_figure(fig)
        assert "1.23e+06" in text
        assert "0.00042" in text

"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.data.io import load_tuples


class TestGenerate:
    def test_synthetic_csv(self, tmp_path, capsys):
        out = tmp_path / "rel.csv"
        assert main(["generate", str(out), "-n", "200", "-d", "3", "--seed", "1"]) == 0
        tuples = load_tuples(out)
        assert len(tuples) == 200
        assert tuples[0].dimensionality == 3
        assert "wrote 200 tuples" in capsys.readouterr().out

    def test_nyse_jsonl(self, tmp_path):
        out = tmp_path / "trades.jsonl"
        assert main(
            ["generate", str(out), "--distribution", "nyse", "-n", "150",
             "--probabilities", "gaussian", "--mean", "0.7", "--seed", "2"]
        ) == 0
        tuples = load_tuples(out)
        assert len(tuples) == 150
        assert tuples[0].dimensionality == 2

    def test_constant_probabilities(self, tmp_path):
        out = tmp_path / "rel.csv"
        main(["generate", str(out), "-n", "50", "--probabilities", "constant",
              "--seed", "3"])
        assert all(t.probability == 1.0 for t in load_tuples(out))

    def test_seed_reproducibility(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", str(a), "-n", "60", "--seed", "9"])
        main(["generate", str(b), "-n", "60", "--seed", "9"])
        assert load_tuples(a) == load_tuples(b)


@pytest.fixture
def relation(tmp_path):
    out = tmp_path / "rel.csv"
    main(["generate", str(out), "-n", "400", "-d", "2", "--seed", "4"])
    return out


class TestQuery:
    def test_basic_query(self, relation, capsys):
        assert main(["query", str(relation), "-q", "0.3", "-m", "4"]) == 0
        out = capsys.readouterr().out
        assert "e-DSUD" in out
        assert "P_g-sky" in out

    @pytest.mark.parametrize("algorithm", ["ship-all", "naive", "dsud", "edsud"])
    def test_all_algorithms(self, relation, capsys, algorithm):
        assert main(["query", str(relation), "-a", algorithm, "-m", "3"]) == 0
        assert "|SKY(H)|" in capsys.readouterr().out

    def test_algorithms_agree_via_cli(self, relation, capsys):
        counts = set()
        for algorithm in ("ship-all", "edsud"):
            main(["query", str(relation), "-a", algorithm, "-m", "3"])
            out = capsys.readouterr().out
            counts.add(out.split("|SKY(H)|=")[1].split()[0])
        assert len(counts) == 1

    def test_topk(self, relation, capsys):
        assert main(["query", str(relation), "-k", "3", "-m", "4"]) == 0
        out = capsys.readouterr().out
        assert "|SKY(H)|=3" in out

    def test_preference_and_subspace(self, relation, capsys):
        assert main(
            ["query", str(relation), "--preference", "min,max", "--subspace", "0"]
        ) == 0
        assert "|SKY(H)|" in capsys.readouterr().out

    @pytest.mark.parametrize("scheme", ["uniform", "round-robin", "range"])
    def test_partitioners(self, relation, capsys, scheme):
        assert main(["query", str(relation), "--partition", scheme, "-m", "5"]) == 0

    def test_max_print_truncation(self, relation, capsys):
        main(["query", str(relation), "-q", "0.05", "--max-print", "1", "-m", "3"])
        assert "more (raise --max-print)" in capsys.readouterr().out

    def test_empty_relation(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("key,a,probability\n")
        assert main(["query", str(path)]) == 0
        assert "empty" in capsys.readouterr().out


class TestTraceOption:
    def test_trace_written_and_loadable(self, relation, tmp_path, capsys):
        from repro.net.trace import load_trace, summarize_trace

        trace_path = tmp_path / "run.trace.jsonl"
        assert main(
            ["query", str(relation), "-m", "3", "--trace", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        records = load_trace(trace_path)
        assert records
        assert summarize_trace(records)["calls"] == len(records)

    def test_trace_with_topk(self, relation, tmp_path):
        trace_path = tmp_path / "topk.trace.jsonl"
        assert main(
            ["query", str(relation), "-m", "3", "-k", "2",
             "--trace", str(trace_path)]
        ) == 0
        assert trace_path.exists()


class TestAdvise:
    def test_advise_typical(self, capsys):
        assert main(["advise", "-n", "40000", "-d", "3", "-m", "20"]) == 0
        out = capsys.readouterr().out
        assert "recommendation: edsud" in out
        assert "ceiling" in out

    def test_advise_skyline_heavy(self, capsys):
        assert main(
            ["advise", "-n", "2000", "-d", "5", "-m", "100", "-q", "0.1"]
        ) == 0
        assert "recommendation: ship-all" in capsys.readouterr().out


class TestInfo:
    def test_info_output(self, relation, capsys):
        assert main(["info", str(relation)]) == 0
        out = capsys.readouterr().out
        assert "N=400 d=2" in out
        assert "probabilities:" in out
        assert "conventional skyline:" in out
        assert "H(d, N)" in out


class TestServe:
    def test_closed_loop_workload(self, relation, capsys):
        assert main(
            ["serve", str(relation), "-m", "3", "--queries", "6", "--clients", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "served 6 queries over 3 sites" in out
        assert "finished=6 failed=0" in out
        assert "latency: p50=" in out
        assert "tuples transmitted" in out

    def test_tenant_budgets_reported_and_enforced(self, relation, capsys):
        assert main(
            ["serve", str(relation), "-m", "3", "--queries", "8",
             "--tenants", "alpha,beta", "--budget", "1"]
        ) == 0
        out = capsys.readouterr().out
        # A one-tuple budget cuts every metered session off mid-flight.
        assert "aborted=" in out and "aborted=0" not in out
        assert "/1 tuples" in out

    def test_empty_relation(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("key,p,v0\n")
        assert main(["serve", str(path)]) == 0
        assert "nothing to serve" in capsys.readouterr().out

"""End-to-end pipelines across package boundaries.

Each test walks a realistic multi-stage scenario through the public
API: generate → persist → load → query → compare transports/algorithms
→ maintain under updates → stream.  Where unit tests pin one module,
these pin the seams between them.
"""

import random

import pytest

from repro import EDSUD, IncrementalMaintainer, LatencyModel, Preference, UncertainTuple, build_sites, distributed_skyline, load_tuples, make_nyse_workload, make_synthetic_workload, prob_skyline_sfs, save_tuples, vertical_skyline
from repro.distributed.streaming import DistributedStreamSkyline
from repro.net.sockets import host_sites


class TestPersistenceToQueryPipeline:
    def test_generate_save_load_query(self, tmp_path):
        workload = make_synthetic_workload("anticorrelated", n=1200, d=3,
                                           sites=4, seed=1)
        path = tmp_path / "relation.csv"
        save_tuples(path, workload.global_database)
        reloaded = load_tuples(path)
        assert reloaded == workload.global_database

        partitions = [reloaded[i::4] for i in range(4)]
        result = distributed_skyline(partitions, 0.3, algorithm="edsud")
        central = prob_skyline_sfs(reloaded, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)


class TestTransportParity:
    def test_tcp_and_inprocess_runs_are_identical(self):
        """Same data, same algorithm: byte-identical answers and
        identical bandwidth books over both transports."""
        workload = make_nyse_workload(n=1500, sites=3, seed=2)
        local = distributed_skyline(
            workload.partitions, 0.3, algorithm="edsud",
            preference=workload.preference,
        )
        with host_sites(workload.partitions, preference=workload.preference) as c:
            remote = EDSUD(c.proxies, 0.3, workload.preference).run()
        assert remote.answer.agrees_with(local.answer, tol=1e-12)
        assert remote.bandwidth == local.bandwidth
        assert remote.iterations == local.iterations


class TestHorizontalVsVertical:
    def test_both_architectures_agree(self):
        workload = make_synthetic_workload(n=900, d=3, sites=3, seed=3)
        horizontal = distributed_skyline(workload.partitions, 0.3)
        vertical, _ = vertical_skyline(workload.global_database, 0.3)
        assert set(horizontal.answer.keys()) == set(vertical.keys())
        assert horizontal.answer.probabilities() == pytest.approx(
            vertical.probabilities()
        )


class TestQueryThenMaintainThenStream:
    def test_full_lifecycle(self):
        workload = make_synthetic_workload(n=500, d=2, sites=3, seed=4)

        # 1. One-shot query.
        snapshot = distributed_skyline(workload.partitions, 0.3)

        # 2. Standing maintenance starts from the same data and answer.
        maintainer = IncrementalMaintainer(
            build_sites(workload.partitions), 0.3
        )
        assert maintainer.skyline().agrees_with(snapshot.answer, tol=1e-9)

        # 3. A burst of updates, then equality with a fresh query.
        rng = random.Random(5)
        live = [list(p) for p in workload.partitions]
        for key in range(10_000, 10_030):
            site_id = rng.randrange(3)
            t = UncertainTuple(key, (rng.random(), rng.random()),
                               rng.random() * 0.99 + 0.01)
            live[site_id].append(t)
            maintainer.insert(site_id, t)
        fresh = distributed_skyline(live, 0.3)
        assert maintainer.skyline().agrees_with(fresh.answer, tol=1e-6)

        # 4. The streaming layer reproduces the same semantics from zero.
        stream = DistributedStreamSkyline(sites=3, window=1_000, threshold=0.3)
        for site_id, part in enumerate(live):
            stream.drain(site_id, part)
        assert stream.skyline().agrees_with(fresh.answer, tol=1e-6)


class TestPreferenceEverywhere:
    def test_mixed_preference_through_every_layer(self, tmp_path):
        pref = Preference.of("min,max")
        workload = make_nyse_workload(n=800, sites=3, seed=6)
        central = prob_skyline_sfs(workload.global_database, 0.3, pref)

        # distributed horizontal
        horizontal = distributed_skyline(
            workload.partitions, 0.3, preference=pref
        )
        assert horizontal.answer.agrees_with(central, tol=1e-9)
        # distributed vertical (keys/probabilities; values are projected)
        vertical, _ = vertical_skyline(workload.global_database, 0.3, pref)
        assert set(vertical.keys()) == set(central.keys())
        # persisted round trip keeps the same answer
        path = tmp_path / "trades.jsonl"
        save_tuples(path, workload.global_database)
        again = prob_skyline_sfs(load_tuples(path), 0.3, pref)
        assert again.agrees_with(central, tol=1e-12)


class TestLatencyModelConsistency:
    def test_simulated_time_scales_with_latency_not_answer(self):
        workload = make_synthetic_workload(n=600, d=2, sites=4, seed=7)
        slow = distributed_skyline(
            workload.partitions, 0.3,
            latency_model=LatencyModel(round_latency=0.5),
        )
        fast = distributed_skyline(
            workload.partitions, 0.3,
            latency_model=LatencyModel(round_latency=0.001),
        )
        assert slow.answer.agrees_with(fast.answer, tol=1e-12)
        assert slow.stats.rounds == fast.stats.rounds
        assert slow.stats.simulated_time > 100 * fast.stats.simulated_time


class TestAlgorithmFamilyOnOneInstance:
    def test_five_ways_to_the_same_answer(self):
        """All four horizontal algorithms plus the vertical coordinator
        agree on a single nontrivial instance with ties and P=1 tuples."""
        rng = random.Random(8)
        db = [
            UncertainTuple(
                i,
                (float(rng.randrange(12)), float(rng.randrange(12))),
                1.0 if i % 7 == 0 else rng.random() * 0.99 + 0.01,
            )
            for i in range(400)
        ]
        central = prob_skyline_sfs(db, 0.3)
        partitions = [db[i::5] for i in range(5)]
        for algorithm in ("ship-all", "naive", "dsud", "edsud"):
            result = distributed_skyline(partitions, 0.3, algorithm=algorithm)
            assert result.answer.agrees_with(central, tol=1e-9), algorithm
        vertical, _ = vertical_skyline(db, 0.3)
        assert vertical.agrees_with(central, tol=1e-9)

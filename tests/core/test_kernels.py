"""Property tests: the columnar kernels agree with the scalar reference.

The vectorized paths (ColumnStore + the columnar SFS) must reproduce
the scalar arithmetic within 1e-9 on *any* input — random preferences
(directions and subspaces), duplicate coordinates (the grid strategy
forces ties), and boundary probabilities (exactly 1.0 and near-zero).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dominance import Direction, Preference, dominates
from repro.core.kernels import ColumnStore, prob_skyline_sfs
from repro.core.prob_skyline import all_skyline_probabilities
from repro.core.prob_skyline import prob_skyline_sfs as scalar_sfs
from repro.core.probability import non_occurrence_product
from repro.core.tuples import UncertainTuple
from repro.distributed.site import LocalSite, SiteConfig

from ..conftest import make_random_database

TOL = 1e-9


def preferences(d: int) -> st.SearchStrategy:
    """None, pure directions, pure subspace, or both — for dimensionality d."""
    directions = st.one_of(
        st.none(),
        st.lists(
            st.sampled_from([Direction.MIN, Direction.MAX]), min_size=d, max_size=d
        ).map(tuple),
    )
    subspace = st.one_of(
        st.none(),
        st.lists(
            st.integers(min_value=0, max_value=d - 1),
            min_size=1,
            max_size=d,
            unique=True,
        ).map(tuple),
    )
    return st.builds(Preference, directions=directions, subspace=subspace)


@st.composite
def database_and_preference(draw):
    """Small databases on an integer grid (ties guaranteed) + preference.

    Probabilities mix the generic (0, 1] range with the boundary values
    the masked products must survive: exactly 1.0 (a dominating certain
    tuple zeroes every product below it) and near-zero.
    """
    d = draw(st.integers(min_value=1, max_value=4))
    boundary = st.sampled_from([1.0, 1e-12, 0.5])
    generic = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
    rows = draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=6).map(float),
                    min_size=d,
                    max_size=d,
                ),
                st.one_of(generic, boundary),
            ),
            min_size=0,
            max_size=24,
        )
    )
    db = [UncertainTuple(i, tuple(v), p) for i, (v, p) in enumerate(rows)]
    pref = draw(preferences(d))
    return d, db, pref


class TestDominatorKernels:
    @given(database_and_preference())
    def test_dominators_mask_matches_scalar_dominates(self, case):
        _d, db, pref = case
        store = ColumnStore.from_tuples(db, pref)
        for t in db:
            mask = store.dominators_mask(store.project_point(t, pref), exclude_key=t.key)
            expected = [
                other.key != t.key and dominates(other, t, pref) for other in db
            ]
            assert mask.tolist() == expected

    @given(database_and_preference())
    def test_dominator_product_matches_non_occurrence_product(self, case):
        _d, db, pref = case
        store = ColumnStore.from_tuples(db, pref)
        for t in db:
            got = store.dominator_product(
                store.project_point(t, pref), exclude_key=t.key
            )
            want = non_occurrence_product(t, db, pref)
            assert got == pytest.approx(want, abs=TOL)

    @given(database_and_preference())
    def test_batched_products_match_single_probes(self, case):
        _d, db, pref = case
        if not db:
            return
        store = ColumnStore.from_tuples(db, pref)
        points = np.stack([store.project_point(t, pref) for t in db])
        batched = store.dominator_products(
            points, exclude_keys=[t.key for t in db], block=3
        )
        for t, got in zip(db, batched):
            want = store.dominator_product(
                store.project_point(t, pref), exclude_key=t.key
            )
            assert got == pytest.approx(want, abs=TOL)

    def test_exclude_key_none_keeps_every_dominator(self):
        db = make_random_database(40, 2, seed=3, grid=5)
        store = ColumnStore.from_tuples(db)
        foreign = UncertainTuple(10_000, (3.0, 3.0), 0.5)
        point = store.project_point(foreign)
        with_none = store.dominator_product(point)
        batched = store.dominator_products(point.reshape(1, -1))[0]
        want = non_occurrence_product(foreign, db)
        assert with_none == pytest.approx(want, abs=TOL)
        assert batched == pytest.approx(want, abs=TOL)

    def test_empty_store_is_neutral(self):
        store = ColumnStore.from_tuples([])
        assert len(store) == 0
        point = np.zeros(0)
        assert store.dominators_mask(point).size == 0
        assert store.dominator_product(point) == 1.0
        assert store.dominator_products(np.zeros((3, 0))).tolist() == [1.0] * 3


class TestColumnarSFS:
    @given(
        database_and_preference(),
        st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
    )
    def test_matches_quadratic_reference(self, case, threshold):
        _d, db, pref = case
        answer = prob_skyline_sfs(db, threshold, pref)
        exact = all_skyline_probabilities(db, pref)
        expected_keys = {k for k, p in exact.items() if p >= threshold}
        got = answer.probabilities()
        assert set(got) == expected_keys
        for key, p in got.items():
            assert p == pytest.approx(exact[key], abs=TOL)

    @given(
        database_and_preference(),
        st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
    )
    def test_matches_scalar_sfs(self, case, threshold):
        _d, db, pref = case
        vec = prob_skyline_sfs(db, threshold, pref)
        ref = scalar_sfs(db, threshold, pref)
        assert vec.agrees_with(ref, tol=TOL)

    def test_tiny_block_size_preserves_early_exit_answer(self):
        db = make_random_database(200, 3, seed=5, grid=6)
        a = prob_skyline_sfs(db, 0.3, block=1)
        b = prob_skyline_sfs(db, 0.3, block=10_000)
        assert a.agrees_with(b, tol=TOL)
        assert a.agrees_with(scalar_sfs(db, 0.3), tol=TOL)


class TestSitePathsAgree:
    """The vectorized and scalar LocalSite paths are interchangeable."""

    @given(
        database_and_preference(),
        st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
    )
    def test_probe_agrees_across_paths(self, case, threshold):
        d, db, pref = case
        vec = LocalSite(0, db, pref, SiteConfig(use_index=False, vectorized=True))
        ref = LocalSite(0, db, pref, SiteConfig(use_index=False, vectorized=False))
        foreign = UncertainTuple(99_999, tuple(3.0 for _ in range(d)), 0.7)
        fv = vec.probe(foreign)
        fr = ref.probe(foreign)
        assert fv == pytest.approx(fr, abs=TOL)
        batched = vec.probe_batch([foreign, foreign])
        assert batched == pytest.approx([fr, fr], abs=TOL)

    @given(
        database_and_preference(),
        st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
    )
    def test_full_site_protocol_agrees_across_paths(self, case, threshold):
        """prepare → feedback → pops match between the two paths."""
        d, db, pref = case
        vec = LocalSite(0, db, pref, SiteConfig(use_index=False, vectorized=True))
        ref = LocalSite(0, db, pref, SiteConfig(use_index=False, vectorized=False))
        assert vec.prepare(threshold) == ref.prepare(threshold)
        feedback = UncertainTuple(88_888, tuple(2.0 for _ in range(d)), 0.9)
        rv = vec.probe_and_prune(feedback)
        rr = ref.probe_and_prune(feedback)
        assert rv.factor == pytest.approx(rr.factor, abs=TOL)
        assert rv.pruned == rr.pruned
        assert rv.queue_remaining == rr.queue_remaining
        while True:
            qv = vec.pop_representative()
            qr = ref.pop_representative()
            assert (qv is None) == (qr is None)
            if qv is None:
                break
            assert qv.tuple.key == qr.tuple.key
            assert qv.local_probability == pytest.approx(
                qr.local_probability, abs=TOL
            )
        assert vec.pruned_total == ref.pruned_total

"""The probabilistic skycube."""

import pytest

from repro.core.dominance import Preference
from repro.core.prob_skyline import prob_skyline_brute_force
from repro.core.skycube import compute_skycube, enumerate_subspaces
from repro.core.tuples import UncertainTuple

from ..conftest import make_random_database


class TestEnumeration:
    def test_counts(self):
        assert len(list(enumerate_subspaces(3))) == 7
        assert len(list(enumerate_subspaces(4))) == 15

    def test_size_cap(self):
        subs = list(enumerate_subspaces(4, max_size=2))
        assert all(len(s) <= 2 for s in subs)
        assert len(subs) == 4 + 6

    def test_ordering_smallest_first(self):
        subs = list(enumerate_subspaces(3))
        sizes = [len(s) for s in subs]
        assert sizes == sorted(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(enumerate_subspaces(0))


class TestCubeConstruction:
    def test_every_subspace_matches_direct_query(self):
        db = make_random_database(120, 3, seed=1, grid=8)
        cube = compute_skycube(db, 0.3)
        assert len(cube) == 7
        for dims in cube.subspaces():
            direct = prob_skyline_brute_force(db, 0.3, Preference(subspace=dims))
            assert cube.answer(dims).agrees_with(direct, tol=1e-9)

    def test_answer_accepts_any_index_order(self):
        db = make_random_database(50, 3, seed=2, grid=8)
        cube = compute_skycube(db, 0.3)
        assert cube.answer((2, 0)) is cube.answer((0, 2))

    def test_missing_subspace_raises(self):
        db = make_random_database(30, 3, seed=3)
        cube = compute_skycube(db, 0.3, max_subspace_size=1)
        with pytest.raises(KeyError):
            cube.answer((0, 1))

    def test_empty_database(self):
        cube = compute_skycube([], 0.3)
        assert len(cube) == 0

    def test_dimensionality_guard(self):
        db = [UncertainTuple(0, tuple(0.5 for _ in range(13)), 0.5)]
        with pytest.raises(ValueError, match="subspaces"):
            compute_skycube(db, 0.3)
        cube = compute_skycube(db, 0.3, max_subspace_size=1)
        assert len(cube) == 13

    def test_base_preference_directions(self):
        db = make_random_database(60, 2, seed=4, grid=8)
        pref = Preference.of("min,max")
        cube = compute_skycube(db, 0.3, base_preference=pref)
        direct = prob_skyline_brute_force(
            db, 0.3, Preference(directions=pref.directions, subspace=(1,))
        )
        assert cube.answer((1,)).agrees_with(direct, tol=1e-9)

    def test_base_preference_with_subspace_rejected(self):
        with pytest.raises(ValueError, match="must not fix"):
            compute_skycube(
                make_random_database(10, 2, seed=5), 0.3,
                base_preference=Preference(subspace=(0,)),
            )


class TestCubeSemantics:
    def test_no_containment_between_parent_and_child(self):
        """Probabilistic subspace answers nest in NEITHER direction —
        the structural difference from certain-data skycubes."""
        db = [
            # a: qualifies everywhere (ties x on dim 0, beats it on dim 1)
            UncertainTuple(0, (0.5, 5.0), 0.9),
            # x: dominated by a in full space (0.09 < q) but TIES a on
            # dim 0, where nothing dominates it -> qualifies there (0.9)
            UncertainTuple(1, (0.5, 6.0), 0.9),
            # y: undominated in full space (qualifies with 0.4) but on
            # dim 0 both a and x dominate it: 0.4 * 0.1 * 0.1 fails
            UncertainTuple(2, (0.6, 1.0), 0.4),
        ]
        cube = compute_skycube(db, 0.3)
        full = set(cube.answer((0, 1)).keys())
        sub0 = set(cube.answer((0,)).keys())
        assert full == {0, 2}
        assert sub0 == {0, 1}
        # Neither answer contains the other.
        assert not full <= sub0 and not sub0 <= full

    def test_membership_counts(self):
        db = make_random_database(80, 3, seed=6, grid=8)
        cube = compute_skycube(db, 0.3)
        counts = cube.membership_counts()
        assert counts
        assert max(counts.values()) <= 7
        total = sum(len(cube.answer(s)) for s in cube.subspaces())
        assert sum(counts.values()) == total

    def test_full_space_layer_matches_plain_query(self):
        db = make_random_database(100, 2, seed=7, grid=8)
        cube = compute_skycube(db, 0.3)
        direct = prob_skyline_brute_force(db, 0.3)
        assert cube.answer((0, 1)).agrees_with(direct, tol=1e-9)

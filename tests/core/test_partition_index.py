"""Property tests: the partitioned P_sky table agrees with both kernels.

:class:`~repro.core.partition_index.PartitionIndex` computes the same
Eq. 9 products as the flat vectorized kernel and the same Eq. 3 P_sky
values as the scalar reference — on *any* input, including duplicate
points (every row in one cell), degenerate grids (``cells_per_dim=1``
puts the whole relation in a single boundary cell, disabling every
whole-cell shortcut), boundary probabilities (exactly 1.0 and
near-zero), and after §5.4 updates that dirty and recompute cells.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import ColumnStore
from repro.core.partition_index import PartitionIndex
from repro.core.prob_skyline import all_skyline_probabilities
from repro.core.tuples import UncertainTuple

from ..conftest import make_random_database

TOL = 1e-9


@st.composite
def databases(draw):
    """Integer-grid databases (ties guaranteed) with boundary probabilities."""
    d = draw(st.integers(min_value=1, max_value=4))
    boundary = st.sampled_from([1.0, 1e-12, 0.5])
    generic = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
    rows = draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=6).map(float),
                    min_size=d,
                    max_size=d,
                ),
                st.one_of(generic, boundary),
            ),
            min_size=1,
            max_size=24,
        )
    )
    return [UncertainTuple(i, tuple(v), p) for i, (v, p) in enumerate(rows)]


def _index_for(db, cells_per_dim=None):
    store = ColumnStore.from_tuples(db)
    return store, PartitionIndex.build(store, cells_per_dim=cells_per_dim)


def _assert_agrees(db, index, store):
    """index == vectorized == scalar, row by row."""
    table = index.all_probabilities()
    psky = index.p_sky()
    points = np.asarray(store.values, dtype=np.float64)
    vectorized = store.dominator_products(
        points, exclude_keys=[t.key for t in db]
    )
    scalar = all_skyline_probabilities(db)
    for r, t in enumerate(db):
        assert table[r] == pytest.approx(vectorized[r], abs=TOL), t
        assert psky[r] == pytest.approx(scalar[t.key], abs=TOL), t


class TestAgreement:
    @given(databases())
    def test_matches_vectorized_and_scalar(self, db):
        store, index = _index_for(db)
        _assert_agrees(db, index, store)
        index.check_invariants()

    @given(databases())
    def test_single_cell_grid_matches(self, db):
        """cells_per_dim=1: one boundary cell, no whole-cell shortcuts."""
        store, index = _index_for(db, cells_per_dim=1)
        assert index.cell_count == 1
        _assert_agrees(db, index, store)

    @given(databases(), st.integers(min_value=2, max_value=5))
    def test_grid_resolution_is_invisible(self, db, cells):
        """Any grid resolution computes the identical table."""
        _, coarse = _index_for(db, cells_per_dim=1)
        _, fine = _index_for(db, cells_per_dim=cells)
        np.testing.assert_allclose(
            coarse.p_sky(), fine.p_sky(), atol=TOL, rtol=0.0
        )

    def test_duplicate_points_share_nothing_but_coordinates(self):
        """Equal tuples never dominate each other (need < somewhere)."""
        db = [UncertainTuple(i, (2.0, 3.0), 0.5) for i in range(6)]
        store, index = _index_for(db)
        _assert_agrees(db, index, store)
        np.testing.assert_allclose(index.all_probabilities(), np.ones(6))

    def test_certain_dominator_zeroes_the_table_below_it(self):
        db = [
            UncertainTuple(0, (0.0, 0.0), 1.0),
            UncertainTuple(1, (1.0, 1.0), 0.7),
            UncertainTuple(2, (0.0, 2.0), 0.4),
        ]
        store, index = _index_for(db)
        _assert_agrees(db, index, store)
        table = index.all_probabilities()
        assert table[0] == 1.0
        assert table[1] == 0.0
        assert table[2] == 0.0

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_threshold_edges_in_p_sky_filter(self, threshold):
        """Filtering p_sky at any threshold matches the scalar filter."""
        db = make_random_database(60, 3, seed=8, grid=5)
        _, index = _index_for(db)
        psky = index.p_sky()
        got = {int(index.keys[r]) for r in np.nonzero(psky >= threshold)[0]}
        exact = all_skyline_probabilities(db)
        want = {k for k, p in exact.items() if p >= threshold - TOL}
        tight = {k for k, p in exact.items() if p >= threshold + TOL}
        assert tight <= got <= want


class TestProbes:
    @given(databases())
    def test_dominator_product_matches_flat_kernel(self, db):
        store, index = _index_for(db)
        rng = np.random.default_rng(3)
        d = len(db[0].values)
        for point in rng.uniform(-1.0, 8.0, size=(8, d)):
            got = index.dominator_product(point)
            want = store.dominator_product(np.asarray(point))
            assert got == pytest.approx(want, abs=TOL)

    @given(databases())
    def test_exclude_key_matches_flat_kernel(self, db):
        store, index = _index_for(db)
        for t in db:
            point = np.asarray(t.values, dtype=np.float64)
            got = index.dominator_product(point, exclude_key=t.key)
            want = store.dominator_product(point, exclude_key=t.key)
            assert got == pytest.approx(want, abs=TOL)


class TestUpdates:
    """§5.4 maintenance invalidates exactly the touched cells."""

    @settings(deadline=None)
    @given(databases(), st.randoms(use_true_random=False))
    def test_insert_delete_sequence_matches_fresh_rebuild(self, db, rnd):
        _, index = _index_for(db)
        index.refresh()
        live = {t.key: t for t in db}
        next_key = len(db)
        for _ in range(6):
            if live and rnd.random() < 0.4:
                victim = rnd.choice(sorted(live))
                del live[victim]
                assert index.apply_delete(victim)
            else:
                d = index.dimensionality
                t = UncertainTuple(
                    next_key,
                    tuple(float(rnd.randint(-2, 8)) for _ in range(d)),
                    rnd.random() * 0.99 + 0.01,
                )
                live[t.key] = t
                index.apply_insert(
                    np.asarray(t.values, dtype=np.float64), t.probability, t.key
                )
                next_key += 1
        index.check_invariants()
        survivors = [live[k] for k in sorted(live)]
        exact = all_skyline_probabilities(survivors)
        psky = index.p_sky()
        alive_rows = np.nonzero(index.alive)[0]
        assert {int(index.keys[r]) for r in alive_rows} == set(live)
        for r in alive_rows:
            key = int(index.keys[r])
            assert psky[r] == pytest.approx(exact[key], abs=TOL), key

    def test_updates_only_dirty_affected_cells(self):
        db = make_random_database(200, 2, seed=11, grid=10)
        _, index = _index_for(db, cells_per_dim=8)
        index.refresh()
        assert index.stale_cells() == 0
        # A point at the grid's top corner dominates nothing below it in
        # only a few cells; the rest must stay clean.
        index.apply_insert(np.array([9.0, 9.0]), 0.5, 10_000)
        assert 0 < index.stale_cells() < index.cell_count
        index.refresh()
        assert index.stale_cells() == 0

    def test_insert_outside_grid_extends_via_clamping(self):
        db = make_random_database(50, 3, seed=12, grid=4)
        store, index = _index_for(db)
        out = UncertainTuple(999, (-5.0, 20.0, 1.0), 0.6)
        index.apply_insert(np.asarray(out.values, dtype=np.float64), 0.6, 999)
        exact = all_skyline_probabilities(db + [out])
        psky = index.p_sky()
        for r in np.nonzero(index.alive)[0]:
            assert psky[r] == pytest.approx(exact[int(index.keys[r])], abs=TOL)

    def test_delete_missing_key_is_a_noop(self):
        db = make_random_database(10, 2, seed=13)
        _, index = _index_for(db)
        before = index.p_sky().copy()
        assert not index.apply_delete(424242)
        np.testing.assert_array_equal(index.p_sky(), before)


class TestPayload:
    def test_payload_roundtrip_is_bit_identical(self):
        db = make_random_database(300, 3, seed=21, grid=6)
        store, index = _index_for(db)
        index.refresh()
        clone = PartitionIndex.from_payload(store, index.to_payload())
        np.testing.assert_array_equal(clone.products, index.products)
        assert clone.stale_cells() == 0
        clone.check_invariants()

    def test_payload_grid_mismatch_rejected(self):
        db = make_random_database(40, 2, seed=22)
        store, index = _index_for(db)
        index.refresh()
        payload = index.to_payload()
        payload["cells_per_dim"] = int(payload["cells_per_dim"]) + 1
        with pytest.raises(ValueError):
            PartitionIndex.from_payload(store, payload)

"""Closed-form probability arithmetic (Eqs. 3, 5, 9-12)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import dominates
from repro.core.probability import (
    combine_site_factors,
    corollary2_bound,
    feedback_pruning_bound,
    foreign_skyline_probability,
    global_skyline_probability,
    non_occurrence_product,
    observation2_bound,
    skyline_probability,
)
from repro.core.tuples import UncertainTuple, make_tuples

from ..conftest import make_random_database


class TestNonOccurrenceProduct:
    def test_no_dominators(self):
        db = make_tuples([(5, 5), (9, 1)], [0.5, 0.5])
        target = UncertainTuple(99, (1.0, 9.0), 0.5)
        assert non_occurrence_product(target, db) == 1.0

    def test_single_dominator(self):
        db = make_tuples([(1, 1)], [0.3])
        target = UncertainTuple(99, (2.0, 2.0), 0.5)
        assert non_occurrence_product(target, db) == pytest.approx(0.7)

    def test_target_excluded_by_key(self):
        target = UncertainTuple(0, (2.0, 2.0), 0.9)
        db = [UncertainTuple(0, (1.0, 1.0), 0.9)]  # same key, would dominate
        assert non_occurrence_product(target, db) == 1.0

    def test_floor_early_exit_returns_below_floor(self):
        db = make_tuples([(1, 1)] * 10, [0.5] * 10)
        # rebuild with unique keys
        db = [UncertainTuple(i, (1.0, 1.0), 0.5) for i in range(10)]
        target = UncertainTuple(99, (2.0, 2.0), 1.0)
        value = non_occurrence_product(target, db, floor=0.3)
        assert value < 0.3

    def test_exact_without_floor(self):
        db = [UncertainTuple(i, (1.0, 1.0), 0.5) for i in range(10)]
        target = UncertainTuple(99, (2.0, 2.0), 1.0)
        assert non_occurrence_product(target, db) == pytest.approx(0.5 ** 10)


class TestSkylineProbability:
    def test_paper_fig3_values(self):
        db = make_tuples([(80, 96), (85, 90), (75, 95)], [0.8, 0.6, 0.8])
        assert skyline_probability(db[0], db) == pytest.approx(0.16)
        assert skyline_probability(db[1], db) == pytest.approx(0.60)
        assert skyline_probability(db[2], db) == pytest.approx(0.80)

    def test_floor_preserves_exactness_above_threshold(self):
        db = make_random_database(60, 2, seed=5, grid=8)
        for t in db:
            exact = skyline_probability(t, db)
            floored = skyline_probability(t, db, floor=0.3)
            if exact >= 0.3:
                assert floored == pytest.approx(exact)
            else:
                assert floored < 0.3

    def test_foreign_probability_excludes_own_existential(self):
        db = make_tuples([(1, 1)], [0.25])
        target = UncertainTuple(99, (2.0, 2.0), 0.6)
        foreign = foreign_skyline_probability(target, db)
        own = skyline_probability(target, db)
        assert foreign == pytest.approx(0.75)
        assert own == pytest.approx(0.6 * 0.75)


class TestLemma1:
    """Global probability = product of per-site factors."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=400))
    def test_factorisation(self, m, seed):
        db = make_random_database(24, 2, seed=seed, grid=6)
        partitions = [db[i::m] for i in range(m)]
        for t in db:
            owner = next(i for i, part in enumerate(partitions) if t in part)
            own = skyline_probability(t, partitions[owner])
            foreign = [
                foreign_skyline_probability(t, part)
                for i, part in enumerate(partitions)
                if i != owner
            ]
            combined = combine_site_factors(own, foreign)
            direct = global_skyline_probability(t, partitions)
            unified = skyline_probability(t, db)
            assert math.isclose(combined, direct, rel_tol=1e-12, abs_tol=1e-15)
            assert math.isclose(combined, unified, rel_tol=1e-9, abs_tol=1e-12)


class TestFeedbackPruningBound:
    def test_bound_applies_dominating_feedback(self):
        feedback = [UncertainTuple(1, (0.0, 0.0), 0.5), UncertainTuple(2, (0.0, 0.0), 0.2)]
        assert feedback_pruning_bound(0.8, feedback) == pytest.approx(0.8 * 0.5 * 0.8)

    def test_bound_is_valid_upper_bound(self):
        """The bound never undercuts the true global probability."""
        db = make_random_database(30, 2, seed=9, grid=6)
        half_a, half_b = db[::2], db[1::2]
        for t in half_a:
            local = skyline_probability(t, half_a)
            dominating = [f for f in half_b if dominates(f, t)]
            bound = feedback_pruning_bound(local, dominating)
            truth = skyline_probability(t, db)
            assert bound >= truth - 1e-12


class TestObservation2:
    def test_formula(self):
        # P_sky(t, D) = 0.65, P(t) = 0.7 -> bound = 0.65/0.7 * 0.3
        assert observation2_bound(0.65, 0.7) == pytest.approx(0.65 / 0.7 * 0.3)

    def test_rejects_zero_existential(self):
        with pytest.raises(ValueError):
            observation2_bound(0.5, 0.0)

    def test_bound_dominates_true_foreign_factor(self):
        """Observation 2's inequality on random instances."""
        db = make_random_database(40, 2, seed=13, grid=6)
        for t in db:
            local_t = skyline_probability(t, db)
            for s in db:
                if s.key != t.key and dominates(t, s):
                    true_factor = foreign_skyline_probability(s, db)
                    est = observation2_bound(local_t, t.probability)
                    assert est >= true_factor - 1e-12


class TestCorollary2:
    def test_uses_best_dominator_per_site(self):
        candidate = UncertainTuple(0, (5.0, 5.0), 0.9)
        weak = UncertainTuple(1, (1.0, 1.0), 0.1)   # factor 0.9 * (x/0.1)...
        strong = UncertainTuple(2, (2.0, 2.0), 0.8)  # much smaller factor
        resident = [
            (weak, 1, 0.1),
            (strong, 1, 0.8),
        ]
        bound = corollary2_bound(candidate, 0, 0.9, resident)
        strong_factor = observation2_bound(0.8, 0.8)
        assert bound == pytest.approx(0.9 * strong_factor)

    def test_same_site_dominators_ignored(self):
        candidate = UncertainTuple(0, (5.0, 5.0), 0.9)
        dominator = UncertainTuple(1, (1.0, 1.0), 0.9)
        bound = corollary2_bound(candidate, 3, 0.42, [(dominator, 3, 0.9)])
        assert bound == pytest.approx(0.42)

    def test_non_dominators_ignored(self):
        candidate = UncertainTuple(0, (1.0, 5.0), 0.9)
        other = UncertainTuple(1, (5.0, 1.0), 0.9)
        bound = corollary2_bound(candidate, 0, 0.9, [(other, 1, 0.9)])
        assert bound == pytest.approx(0.9)

    def test_bound_is_valid_global_upper_bound(self):
        """P*_g-sky(s) >= P_g-sky(s) on random partitioned instances."""
        db = make_random_database(36, 2, seed=21, grid=6)
        m = 3
        partitions = [db[i::m] for i in range(m)]
        resident = []
        for i, part in enumerate(partitions):
            for t in part[:4]:
                resident.append((t, i, skyline_probability(t, partitions[i])))
        for t, site, local in resident:
            bound = corollary2_bound(t, site, local, resident)
            truth = global_skyline_probability(t, partitions)
            assert bound >= truth - 1e-12

"""Possible-world semantics: the oracle behind every probability claim."""

import math
import random

import pytest
from hypothesis import given, settings

from repro.core.possible_worlds import (
    MAX_EXHAUSTIVE,
    conventional_skyline,
    enumerate_worlds,
    skyline_probabilities_exhaustive,
    skyline_probabilities_monte_carlo,
    world_probability,
)
from repro.core.prob_skyline import all_skyline_probabilities
from repro.core.tuples import UncertainTuple, make_tuples

from ..conftest import make_random_database, uncertain_tuples


def fig3_database():
    """The paper's Fig. 2/3 example database."""
    return make_tuples([(80, 96), (85, 90), (75, 95)], [0.8, 0.6, 0.8], start_key=1)


class TestEnumeration:
    def test_world_count(self):
        db = fig3_database()
        assert sum(1 for _ in enumerate_worlds(db)) == 8

    def test_world_probabilities_sum_to_one(self):
        db = fig3_database()
        total = sum(p for _, p in enumerate_worlds(db))
        assert total == pytest.approx(1.0)

    def test_specific_world_probability_matches_fig3(self):
        db = fig3_database()
        # W6 = {t1, t3} with probability 0.8 x 0.4 x 0.8 = 0.256
        w6 = [db[0], db[2]]
        assert world_probability(w6, db) == pytest.approx(0.256)

    def test_empty_world_probability(self):
        db = fig3_database()
        assert world_probability([], db) == pytest.approx(0.2 * 0.4 * 0.2)

    def test_enumeration_guard(self):
        db = make_random_database(MAX_EXHAUSTIVE + 1, 2, seed=0)
        with pytest.raises(ValueError, match="refusing"):
            list(enumerate_worlds(db))


class TestPaperExampleProbabilities:
    """The worked numbers of §3 must come out exactly."""

    def test_fig3_skyline_probabilities(self):
        db = fig3_database()
        probs = skyline_probabilities_exhaustive(db)
        assert probs[1] == pytest.approx(0.16)   # t1
        assert probs[2] == pytest.approx(0.60)   # t2
        assert probs[3] == pytest.approx(0.80)   # t3


class TestClosedFormAgreement:
    """Eq. 3 must equal the Eq. 2 sum over worlds — the paper's core identity."""

    @given(uncertain_tuples(2))
    @settings(max_examples=30, deadline=None)
    def test_closed_form_matches_enumeration_2d(self, db):
        db = db[:8]
        exhaustive = skyline_probabilities_exhaustive(db)
        closed = all_skyline_probabilities(db)
        for key in exhaustive:
            assert math.isclose(exhaustive[key], closed[key], abs_tol=1e-9)

    @given(uncertain_tuples(3))
    @settings(max_examples=15, deadline=None)
    def test_closed_form_matches_enumeration_3d(self, db):
        db = db[:7]
        exhaustive = skyline_probabilities_exhaustive(db)
        closed = all_skyline_probabilities(db)
        for key in exhaustive:
            assert math.isclose(exhaustive[key], closed[key], abs_tol=1e-9)


class TestMonteCarlo:
    def test_monte_carlo_converges_to_closed_form(self):
        db = make_random_database(12, 2, seed=3, grid=6)
        closed = all_skyline_probabilities(db)
        estimate = skyline_probabilities_monte_carlo(
            db, samples=20_000, rng=random.Random(0)
        )
        for key, value in closed.items():
            assert abs(estimate[key] - value) < 0.02

    def test_monte_carlo_handles_certain_tuples(self):
        db = [UncertainTuple(0, (0.0, 0.0), 1.0), UncertainTuple(1, (1.0, 1.0), 1.0)]
        estimate = skyline_probabilities_monte_carlo(
            db, samples=500, rng=random.Random(0)
        )
        assert estimate[0] == 1.0
        assert estimate[1] == 0.0


class TestConventionalSkyline:
    def test_simple_case(self):
        db = make_tuples([(1, 1), (2, 2), (0, 3)], [1.0, 1.0, 1.0])
        sky = conventional_skyline(db)
        assert {t.key for t in sky} == {0, 2}

    def test_all_incomparable(self):
        db = make_tuples([(0, 2), (1, 1), (2, 0)], [1.0, 1.0, 1.0])
        assert len(conventional_skyline(db)) == 3

    def test_empty(self):
        assert conventional_skyline([]) == []

"""Cardinality estimation and the Eqs. 6-8 cost model."""

import math

import pytest

from repro.core.cardinality import (
    expected_feedback_tuples,
    expected_local_skyline_tuples,
    expected_skyline_cardinality,
    feedback_overhead_ratio,
    uniform_presence_pmf_window,
)


class TestPresencePmf:
    def test_window_mass_is_one(self):
        _, probs = uniform_presence_pmf_window(1000)
        assert sum(probs) == pytest.approx(1.0, abs=1e-10)

    def test_large_cardinality_window_mass(self):
        _, probs = uniform_presence_pmf_window(2_000_000)
        assert sum(probs) == pytest.approx(1.0, abs=1e-8)

    def test_window_centered_on_mean(self):
        start, probs = uniform_presence_pmf_window(10_000, mean_presence=0.5)
        peak = start + max(range(len(probs)), key=probs.__getitem__)
        assert abs(peak - 5_000) <= 2

    def test_zero_cardinality(self):
        start, probs = uniform_presence_pmf_window(0)
        assert (start, probs) == (0, [1.0])


class TestExpectedSkylineCardinality:
    def test_one_dimension_is_one(self):
        # ln^0(n) = 1: exactly one expected minimum.
        assert expected_skyline_cardinality(1, 10_000) == pytest.approx(1.0, abs=1e-6)

    def test_grows_with_dimensionality(self):
        values = [expected_skyline_cardinality(d, 50_000) for d in (2, 3, 4, 5)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_grows_with_cardinality(self):
        values = [expected_skyline_cardinality(3, n) for n in (100, 10_000, 1_000_000)]
        assert values == sorted(values)

    def test_matches_closed_form_at_mean(self):
        # For large N the expectation concentrates: H ~ ln^{d-1}(N/2)/(d-1)!
        n, d = 1_000_000, 4
        approx = math.log(n / 2) ** (d - 1) / math.factorial(d - 1)
        assert expected_skyline_cardinality(d, n) == pytest.approx(approx, rel=0.02)

    def test_paper_factorial_convention(self):
        d, n = 4, 10_000
        ours = expected_skyline_cardinality(d, n)
        paper = expected_skyline_cardinality(d, n, factorial_of=d)
        assert paper == pytest.approx(ours * math.factorial(d - 1) / math.factorial(d))

    def test_zero_cardinality(self):
        assert expected_skyline_cardinality(3, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_skyline_cardinality(0, 100)
        with pytest.raises(ValueError):
            expected_skyline_cardinality(2, -1)


class TestCostModel:
    def test_nback_exceeds_nlocal_for_multiple_sites(self):
        """The §4 conclusion motivating selective feedback."""
        for m in (2, 10, 60, 100):
            back = expected_feedback_tuples(3, 100_000, m)
            local = expected_local_skyline_tuples(3, 100_000, m)
            assert back > local

    def test_single_site_costs_nothing(self):
        assert expected_feedback_tuples(3, 10_000, 1) == 0.0
        assert expected_local_skyline_tuples(3, 10_000, 1) == 0.0

    def test_ratio_exceeds_one(self):
        assert feedback_overhead_ratio(3, 100_000, 20) > 1.0

    def test_ratio_grows_with_sites(self):
        # More sites -> smaller local partitions -> bigger gap.
        r1 = feedback_overhead_ratio(3, 100_000, 5)
        r2 = feedback_overhead_ratio(3, 100_000, 50)
        assert r2 > r1

    def test_site_validation(self):
        with pytest.raises(ValueError):
            expected_feedback_tuples(3, 1000, 0)

"""Centralized probabilistic skyline: brute force vs SFS, answer semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.prob_skyline import (
    ProbabilisticSkyline,
    SkylineMember,
    all_skyline_probabilities,
    prob_skyline_brute_force,
    prob_skyline_sfs,
)
from repro.core.tuples import UncertainTuple, make_tuples

from ..conftest import make_random_database, uncertain_tuples


class TestBruteForce:
    def test_paper_fig3(self):
        db = make_tuples([(80, 96), (85, 90), (75, 95)], [0.8, 0.6, 0.8])
        answer = prob_skyline_brute_force(db, 0.5)
        assert answer.keys() == [2, 1]  # t3 (0.8) then t2 (0.6)
        assert answer.probabilities()[2] == pytest.approx(0.8)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            prob_skyline_brute_force([], 0.0)
        with pytest.raises(ValueError):
            prob_skyline_brute_force([], 1.5)

    def test_threshold_one_keeps_only_certain_undominated(self):
        db = make_tuples([(1, 1), (2, 2)], [1.0, 1.0])
        answer = prob_skyline_brute_force(db, 1.0)
        assert answer.keys() == [0]

    def test_certain_data_reduces_to_conventional_skyline(self):
        from repro.core.skyline import skyline

        db = make_random_database(100, 2, seed=41, grid=8)
        certain = [UncertainTuple(t.key, t.values, 1.0) for t in db]
        answer = prob_skyline_brute_force(certain, 1.0)
        assert set(answer.keys()) == {t.key for t in skyline(certain)}


class TestSFSEquivalence:
    @pytest.mark.parametrize("q", [0.1, 0.3, 0.7, 1.0])
    def test_matches_brute_force_fixed(self, q):
        db = make_random_database(150, 3, seed=43, grid=8)
        bf = prob_skyline_brute_force(db, q)
        sfs = prob_skyline_sfs(db, q)
        assert bf.agrees_with(sfs)

    @given(uncertain_tuples(2), st.sampled_from([0.2, 0.5, 0.9]))
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force_property(self, db, q):
        assert prob_skyline_brute_force(db, q).agrees_with(prob_skyline_sfs(db, q))

    def test_with_preference(self):
        db = make_random_database(80, 2, seed=47, grid=8)
        pref = Preference.of("max,min")
        bf = prob_skyline_brute_force(db, 0.3, pref)
        sfs = prob_skyline_sfs(db, 0.3, pref)
        assert bf.agrees_with(sfs)
        assert len(bf) > 0

    def test_empty_database(self):
        assert len(prob_skyline_sfs([], 0.5)) == 0


class TestAnswerSemantics:
    def test_members_sorted_by_descending_probability(self):
        members = [
            SkylineMember(UncertainTuple(1, (0.0,), 0.5), 0.4),
            SkylineMember(UncertainTuple(2, (0.0,), 0.9), 0.9),
        ]
        answer = ProbabilisticSkyline(0.3, members)
        assert answer.keys() == [2, 1]

    def test_ties_broken_by_key(self):
        members = [
            SkylineMember(UncertainTuple(5, (0.0,), 0.5), 0.5),
            SkylineMember(UncertainTuple(2, (0.0,), 0.5), 0.5),
        ]
        assert ProbabilisticSkyline(0.3, members).keys() == [2, 5]

    def test_contains(self):
        answer = ProbabilisticSkyline(
            0.3, [SkylineMember(UncertainTuple(7, (0.0,), 0.5), 0.5)]
        )
        assert 7 in answer
        assert 8 not in answer

    def test_agreement_tolerance(self):
        t = UncertainTuple(1, (0.0,), 0.5)
        a = ProbabilisticSkyline(0.3, [SkylineMember(t, 0.5)])
        b = ProbabilisticSkyline(0.3, [SkylineMember(t, 0.5 + 1e-12)])
        c = ProbabilisticSkyline(0.3, [SkylineMember(t, 0.6)])
        assert a.agrees_with(b)
        assert not a.agrees_with(c)

    def test_agreement_requires_same_keys(self):
        t1 = UncertainTuple(1, (0.0,), 0.5)
        t2 = UncertainTuple(2, (0.0,), 0.5)
        a = ProbabilisticSkyline(0.3, [SkylineMember(t1, 0.5)])
        b = ProbabilisticSkyline(0.3, [SkylineMember(t2, 0.5)])
        assert not a.agrees_with(b)


class TestThresholdMonotonicity:
    """p-skyline ⊆ p'-skyline whenever p' <= p (§7.3's argument)."""

    @given(uncertain_tuples(3))
    @settings(max_examples=30, deadline=None)
    def test_answers_nest_with_threshold(self, db):
        low = set(prob_skyline_sfs(db, 0.2).keys())
        mid = set(prob_skyline_sfs(db, 0.5).keys())
        high = set(prob_skyline_sfs(db, 0.8).keys())
        assert high <= mid <= low


class TestAllSkylineProbabilities:
    def test_every_tuple_gets_a_probability(self):
        db = make_random_database(50, 2, seed=53)
        probs = all_skyline_probabilities(db)
        assert set(probs) == {t.key for t in db}
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_undominated_tuple_keeps_existential(self):
        db = make_tuples([(0, 0), (5, 5)], [0.7, 0.9])
        probs = all_skyline_probabilities(db)
        assert probs[0] == pytest.approx(0.7)
        assert probs[1] == pytest.approx(0.9 * 0.3)

"""Relation profiling."""

import random

import pytest

from repro.core.statistics import (
    dimension_correlations,
    dominance_profile,
    layer_of_qualified,
    probability_profile,
    skyline_layers,
)
from repro.core.tuples import UncertainTuple

from ..conftest import make_random_database


class TestProbabilityProfile:
    def test_histogram_sums_to_count(self):
        db = make_random_database(500, 2, seed=1)
        profile = probability_profile(db, bins=8)
        assert sum(profile.histogram) == profile.count == 500
        assert profile.bins == 8

    def test_moments(self):
        db = [UncertainTuple(0, (0.0,), 0.2), UncertainTuple(1, (0.0,), 0.8)]
        profile = probability_profile(db)
        assert profile.minimum == 0.2
        assert profile.maximum == 0.8
        assert profile.mean == pytest.approx(0.5)

    def test_boundary_probability_one_lands_in_last_bin(self):
        db = [UncertainTuple(0, (0.0,), 1.0)]
        profile = probability_profile(db, bins=4)
        assert profile.histogram == (0, 0, 0, 1)

    def test_empty_and_validation(self):
        assert probability_profile([]).count == 0
        with pytest.raises(ValueError):
            probability_profile([], bins=0)


class TestCorrelations:
    def test_matrix_shape_and_diagonal(self):
        db = make_random_database(300, 3, seed=2)
        corr = dimension_correlations(db)
        assert len(corr) == 3 and all(len(row) == 3 for row in corr)
        assert all(corr[i][i] == pytest.approx(1.0) for i in range(3))

    def test_symmetry(self):
        db = make_random_database(300, 3, seed=3)
        corr = dimension_correlations(db)
        for i in range(3):
            for j in range(3):
                assert corr[i][j] == pytest.approx(corr[j][i])

    def test_perfectly_correlated_dims(self):
        db = [UncertainTuple(i, (float(i), float(i)), 0.5) for i in range(20)]
        corr = dimension_correlations(db)
        assert corr[0][1] == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert dimension_correlations([]) == []
        single = dimension_correlations([UncertainTuple(0, (1.0, 2.0), 0.5)])
        assert single[0][0] == 1.0


class TestSkylineLayers:
    def test_layers_partition_the_relation(self):
        db = make_random_database(200, 2, seed=4, grid=10)
        layers = skyline_layers(db)
        keys = [t.key for layer in layers for t in layer]
        assert sorted(keys) == sorted(t.key for t in db)
        assert len(set(keys)) == len(keys)

    def test_first_layer_is_the_skyline(self):
        from repro.core.skyline import skyline

        db = make_random_database(150, 2, seed=5, grid=10)
        layers = skyline_layers(db)
        assert {t.key for t in layers[0]} == {t.key for t in skyline(db)}

    def test_layer_members_dominated_by_previous_layer(self):
        from repro.core.dominance import dominates

        db = make_random_database(120, 2, seed=6, grid=8)
        layers = skyline_layers(db)
        for earlier, later in zip(layers, layers[1:]):
            for t in later:
                assert any(dominates(w, t) for w in earlier)

    def test_max_layers_truncation(self):
        db = make_random_database(200, 2, seed=7, grid=10)
        layers = skyline_layers(db, max_layers=2)
        assert len(layers) == 2

    def test_dominance_chain_gives_singleton_layers(self):
        db = [UncertainTuple(i, (float(i), float(i)), 0.5) for i in range(6)]
        layers = skyline_layers(db)
        assert [len(layer) for layer in layers] == [1] * 6


class TestLayerOfQualified:
    def test_qualified_tuples_sit_in_shallow_layers(self):
        db = make_random_database(400, 2, seed=8)
        spread = layer_of_qualified(db, 0.3)
        from repro.core.prob_skyline import prob_skyline_sfs

        assert sum(spread.values()) == len(prob_skyline_sfs(db, 0.3))
        # With q = 0.3 a tuple needs its dominator product above ~0.3:
        # a handful of layers at most.
        assert max(spread) <= 8

    def test_certain_data_collapses_to_layer_one(self):
        db = [
            UncertainTuple(i, (float(i % 5), float((i * 3) % 5)), 1.0)
            for i in range(40)
        ]
        spread = layer_of_qualified(db, 1.0)
        assert set(spread) == {1}


class TestDominanceProfile:
    def test_profile_fields(self):
        db = make_random_database(300, 2, seed=9)
        profile = dominance_profile(db, sample=50, rng=random.Random(1))
        assert profile["sampled"] == 50
        assert 0.0 <= profile["undominated_fraction"] <= 1.0
        assert profile["max_dominators"] >= profile["mean_dominators"]

    def test_mean_matches_theory_on_uniform_data(self):
        """Independent uniform: mean dominators ≈ N / 2^d."""
        db = make_random_database(2000, 2, seed=10)
        profile = dominance_profile(db, sample=200, rng=random.Random(2))
        assert profile["mean_dominators"] == pytest.approx(2000 / 4, rel=0.25)

    def test_empty(self):
        assert dominance_profile([])["sampled"] == 0

"""Centralized conventional skyline algorithms: BNL, SFS, D&C."""

import pytest
from hypothesis import given, settings

from repro.core.dominance import Preference, dominates
from repro.core.possible_worlds import conventional_skyline
from repro.core.skyline import (
    block_nested_loop,
    divide_and_conquer,
    skyline,
    sort_filter_skyline,
)
from repro.core.tuples import make_tuples

from ..conftest import make_random_database, uncertain_tuples

ALGORITHMS = [block_nested_loop, sort_filter_skyline, divide_and_conquer]


def hotel_example():
    """The paper's Fig. 1 hotel scenario: P1, P3, P5 are the skyline."""
    return make_tuples(
        [(2, 8), (4, 6), (3, 4), (7, 5), (6, 2), (8, 7)],
        [1.0] * 6,
    )


class TestAgainstDefinition:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_hotel_example(self, algorithm):
        db = hotel_example()
        result = algorithm(db)
        assert {t.key for t in result} == {0, 2, 4}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty_input(self, algorithm):
        assert algorithm([]) == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_tuple(self, algorithm):
        db = make_tuples([(1, 2)], [1.0])
        assert algorithm(db) == db

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_duplicate_points_all_survive(self, algorithm):
        db = make_tuples([(1, 1), (1, 1), (2, 2)], [1.0] * 3)
        assert {t.key for t in algorithm(db)} == {0, 1}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_quadratic_definition(self, algorithm):
        db = make_random_database(200, 3, seed=17, grid=10)
        expected = {t.key for t in conventional_skyline(db)}
        assert {t.key for t in algorithm(db)} == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_with_preference(self, algorithm):
        db = make_random_database(100, 2, seed=23, grid=8)
        pref = Preference.of("min,max")
        expected = {t.key for t in conventional_skyline(db, pref)}
        assert {t.key for t in algorithm(db, pref)} == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_with_subspace(self, algorithm):
        db = make_random_database(100, 3, seed=29, grid=8)
        pref = Preference(subspace=(0, 2))
        expected = {t.key for t in conventional_skyline(db, pref)}
        assert {t.key for t in algorithm(db, pref)} == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_preserves_input_order(self, algorithm):
        db = make_random_database(80, 2, seed=31, grid=8)
        result = algorithm(db)
        order = {t.key: i for i, t in enumerate(db)}
        assert [order[t.key] for t in result] == sorted(order[t.key] for t in result)


class TestCrossAlgorithmAgreement:
    @given(uncertain_tuples(2))
    @settings(max_examples=60, deadline=None)
    def test_all_algorithms_agree_2d(self, db):
        results = [{t.key for t in alg(db)} for alg in ALGORITHMS]
        assert results[0] == results[1] == results[2]

    @given(uncertain_tuples(4))
    @settings(max_examples=40, deadline=None)
    def test_all_algorithms_agree_4d(self, db):
        results = [{t.key for t in alg(db)} for alg in ALGORITHMS]
        assert results[0] == results[1] == results[2]


class TestSkylineProperties:
    @given(uncertain_tuples(3))
    @settings(max_examples=40, deadline=None)
    def test_no_member_dominated_and_every_nonmember_dominated(self, db):
        members = skyline(db)
        member_keys = {t.key for t in members}
        for t in members:
            assert not any(
                dominates(other, t) for other in db if other.key != t.key
            )
        for t in db:
            if t.key not in member_keys:
                assert any(dominates(m, t) for m in members)

    def test_dnc_small_base_size(self):
        """Exercise the recursive path with a tiny base case."""
        db = make_random_database(150, 2, seed=37, grid=10)
        expected = {t.key for t in sort_filter_skyline(db)}
        assert {t.key for t in divide_and_conquer(db, base_size=4)} == expected

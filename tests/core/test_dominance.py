"""Unit and property tests for dominance, preferences, and subspaces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dominance import (
    Direction,
    Preference,
    dominates,
    dominates_values,
    strictly_dominates_region,
)
from repro.core.tuples import UncertainTuple

vectors = st.lists(
    st.integers(min_value=0, max_value=5).map(float), min_size=2, max_size=2
)
vectors3 = st.lists(
    st.integers(min_value=0, max_value=5).map(float), min_size=3, max_size=3
)


class TestBasicDominance:
    def test_strict_dominance(self):
        assert dominates_values((1, 1), (2, 2))

    def test_partial_dominance(self):
        assert dominates_values((1, 2), (1, 3))

    def test_equal_values_do_not_dominate(self):
        assert not dominates_values((1, 2), (1, 2))

    def test_incomparable(self):
        assert not dominates_values((1, 3), (3, 1))
        assert not dominates_values((3, 1), (1, 3))

    def test_dimensionality_mismatch(self):
        with pytest.raises(ValueError):
            dominates_values((1,), (1, 2))

    def test_tuple_level_dominance(self):
        a = UncertainTuple(0, (1.0, 1.0), 0.5)
        b = UncertainTuple(1, (2.0, 2.0), 0.5)
        assert dominates(a, b)
        assert not dominates(b, a)

    @given(vectors, vectors)
    def test_antisymmetry(self, a, b):
        assert not (dominates_values(a, b) and dominates_values(b, a))

    @given(vectors)
    def test_irreflexive(self, a):
        assert not dominates_values(a, a)

    @given(vectors, vectors, vectors)
    def test_transitivity(self, a, b, c):
        if dominates_values(a, b) and dominates_values(b, c):
            assert dominates_values(a, c)


class TestPreference:
    def test_max_direction_flips_comparison(self):
        pref = Preference.of("min,max")
        # cheaper AND higher volume wins
        assert dominates_values((1, 10), (2, 5), pref)
        assert not dominates_values((1, 5), (2, 10), pref)

    def test_of_parses_directions(self):
        pref = Preference.of("min, MAX")
        assert pref.directions == (Direction.MIN, Direction.MAX)

    def test_of_rejects_unknown(self):
        with pytest.raises(ValueError):
            Preference.of("min,sideways")

    def test_minimize_factory(self):
        pref = Preference.minimize(3)
        assert pref.signs(3) == (1.0, 1.0, 1.0)

    def test_direction_count_must_match_data(self):
        pref = Preference.of("min,max")
        with pytest.raises(ValueError):
            dominates_values((1, 2, 3), (2, 3, 4), pref)

    def test_subspace_ignores_other_dimensions(self):
        pref = Preference(subspace=(0,))
        assert dominates_values((1, 99), (2, 0), pref)

    def test_subspace_equality_is_non_dominance(self):
        pref = Preference(subspace=(1,))
        assert not dominates_values((0, 5), (9, 5), pref)

    def test_subspace_validation(self):
        with pytest.raises(ValueError):
            Preference(subspace=())
        with pytest.raises(ValueError):
            Preference(subspace=(0, 0))
        with pytest.raises(ValueError):
            Preference(subspace=(-1,))

    def test_subspace_out_of_range_detected_at_use(self):
        pref = Preference(subspace=(5,))
        with pytest.raises(ValueError):
            dominates_values((1, 2), (3, 4), pref)

    def test_project_maps_to_min_space(self):
        pref = Preference(
            directions=(Direction.MIN, Direction.MAX), subspace=(1, 0)
        )
        assert pref.project((3.0, 7.0)) == (-7.0, 3.0)

    def test_projection_equivalence(self):
        """Dominance under a preference == plain dominance after projection."""
        pref = Preference(directions=(Direction.MAX, Direction.MIN, Direction.MAX),
                          subspace=(0, 2))
        pairs = [((1, 2, 3), (3, 2, 1)), ((5, 0, 5), (4, 9, 4)), ((2, 2, 2), (2, 2, 2))]
        for a, b in pairs:
            assert dominates_values(a, b, pref) == dominates_values(
                pref.project(a), pref.project(b)
            )

    @given(vectors3, vectors3)
    def test_projection_equivalence_property(self, a, b):
        pref = Preference(directions=(Direction.MIN, Direction.MAX, Direction.MIN),
                          subspace=(2, 1))
        assert dominates_values(a, b, pref) == dominates_values(
            pref.project(a), pref.project(b)
        )


class TestPreferenceSerialization:
    @pytest.mark.parametrize(
        "pref",
        [
            Preference(),
            Preference.of("min,max"),
            Preference(subspace=(2, 0)),
            Preference(directions=(Direction.MAX, Direction.MIN), subspace=(1,)),
        ],
    )
    def test_dict_roundtrip(self, pref):
        restored = Preference.from_dict(pref.to_dict())
        assert restored == pref

    def test_dict_is_json_compatible(self):
        import json

        pref = Preference.of("min,max")
        json.dumps(pref.to_dict())  # must not raise


class TestRegionDominance:
    def test_point_dominating_whole_box(self):
        assert strictly_dominates_region((0, 0), (1, 1), (2, 2))

    def test_point_equal_to_lower_corner_does_not(self):
        assert not strictly_dominates_region((1, 1), (1, 1), (2, 2))

    def test_point_below_on_one_dim_suffices(self):
        assert strictly_dominates_region((0, 1), (1, 1), (2, 2))

    def test_point_above_lower_fails(self):
        assert not strictly_dominates_region((2, 0), (1, 1), (3, 3))

    @given(vectors, vectors, vectors)
    def test_region_dominance_implies_point_dominance(self, p, lo, hi):
        lower = tuple(min(a, b) for a, b in zip(lo, hi))
        upper = tuple(max(a, b) for a, b in zip(lo, hi))
        if strictly_dominates_region(p, lower, upper):
            # every corner of the box must be dominated; check extremes
            assert dominates_values(p, lower)
            assert dominates_values(p, upper)

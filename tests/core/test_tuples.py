"""Unit tests for the uncertain tuple model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tuples import (
    UncertainTuple,
    make_tuples,
    tuples_from_arrays,
    validate_database,
)


class TestUncertainTuple:
    def test_basic_construction(self):
        t = UncertainTuple(1, (3.0, 4.0), 0.5)
        assert t.key == 1
        assert t.values == (3.0, 4.0)
        assert t.probability == 0.5
        assert t.dimensionality == 2

    def test_values_normalised_to_float_tuple(self):
        t = UncertainTuple(1, [1, 2, 3], 1.0)
        assert t.values == (1.0, 2.0, 3.0)
        assert isinstance(t.values, tuple)

    def test_non_occurrence(self):
        assert UncertainTuple(1, (0.0,), 0.3).non_occurrence == pytest.approx(0.7)

    def test_probability_one_allowed(self):
        assert UncertainTuple(1, (0.0,), 1.0).probability == 1.0

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5, 2.0])
    def test_invalid_probability_rejected(self, p):
        with pytest.raises(ValueError):
            UncertainTuple(1, (0.0,), p)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            UncertainTuple(1, (), 0.5)

    def test_nan_values_rejected(self):
        with pytest.raises(ValueError):
            UncertainTuple(1, (float("nan"), 1.0), 0.5)

    def test_hashable_and_frozen(self):
        t = UncertainTuple(1, (1.0,), 0.5)
        assert hash(t) == hash(UncertainTuple(1, (1.0,), 0.5))
        with pytest.raises(Exception):
            t.probability = 0.9  # type: ignore[misc]

    def test_value_accessor_and_iteration(self):
        t = UncertainTuple(1, (5.0, 7.0), 0.5)
        assert t.value(0) == 5.0
        assert t.value(1) == 7.0
        assert list(t) == [5.0, 7.0]

    def test_coordinate_sum(self):
        assert UncertainTuple(1, (1.5, 2.5), 0.5).coordinate_sum() == pytest.approx(4.0)

    def test_repr_is_compact(self):
        assert repr(UncertainTuple(3, (1.0, 2.0), 0.8) ) == "UncertainTuple(3: (1, 2), p=0.8)"

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=5),
           st.floats(min_value=0.01, max_value=1.0))
    def test_construction_roundtrip_property(self, values, p):
        t = UncertainTuple(0, tuple(values), p)
        assert t.dimensionality == len(values)
        assert math.isclose(t.probability + t.non_occurrence, 1.0)


class TestFactories:
    def test_make_tuples_assigns_sequential_keys(self):
        ts = make_tuples([(1, 2), (3, 4)], [0.5, 0.6], start_key=10)
        assert [t.key for t in ts] == [10, 11]

    def test_make_tuples_length_mismatch(self):
        with pytest.raises(ValueError, match="must align"):
            make_tuples([(1, 2)], [0.5, 0.6])

    def test_tuples_from_numpy_arrays(self):
        import numpy as np

        values = np.array([[0.1, 0.2], [0.3, 0.4]])
        probs = np.array([0.5, 0.75])
        ts = tuples_from_arrays(values, probs)
        assert ts[1].values == (0.3, 0.4)
        assert ts[1].probability == 0.75

    def test_tuples_from_plain_lists(self):
        ts = tuples_from_arrays([[1, 2]], [0.5])
        assert ts[0].values == (1.0, 2.0)


class TestValidateDatabase:
    def test_empty_database(self):
        assert validate_database([]) == 0

    def test_consistent_database(self):
        ts = make_tuples([(1, 2), (3, 4)], [0.5, 0.6])
        assert validate_database(ts) == 2

    def test_dimensionality_mismatch(self):
        ts = [UncertainTuple(0, (1.0,), 0.5), UncertainTuple(1, (1.0, 2.0), 0.5)]
        with pytest.raises(ValueError, match="dimensionality"):
            validate_database(ts)

    def test_duplicate_keys(self):
        ts = [UncertainTuple(0, (1.0,), 0.5), UncertainTuple(0, (2.0,), 0.5)]
        with pytest.raises(ValueError, match="duplicate"):
            validate_database(ts)

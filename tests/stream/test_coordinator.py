"""Contracts for :class:`ContinuousCoordinator`: registration, delta
ordering, billing, and delta-stream replay."""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.dominance import Preference
from repro.core.tuples import UncertainTuple
from repro.data.workload import make_synthetic_stream
from repro.stream import (
    ContinuousCoordinator,
    CountWindow,
    DeltaKind,
    StandingQuery,
    StreamSite,
)


def _coordinator(sites: int = 3, capacity: int = 16) -> ContinuousCoordinator:
    return ContinuousCoordinator(
        [StreamSite(i, CountWindow(capacity)) for i in range(sites)]
    )


def _t(key: int, values, p: float) -> UncertainTuple:
    return UncertainTuple(key, tuple(float(v) for v in values), p)


class TestConstruction:
    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError, match="at least one"):
            ContinuousCoordinator([])

    def test_site_ids_must_be_unique_and_ascending(self):
        dup = [StreamSite(0, CountWindow(4)), StreamSite(0, CountWindow(4))]
        with pytest.raises(ValueError, match="unique and ascending"):
            ContinuousCoordinator(dup)
        unordered = [StreamSite(1, CountWindow(4)), StreamSite(0, CountWindow(4))]
        with pytest.raises(ValueError, match="unique and ascending"):
            ContinuousCoordinator(unordered)


class TestRegistration:
    def test_register_returns_distinct_ids_and_records_the_query(self):
        hub = _coordinator()
        a = hub.register(StandingQuery(threshold=0.4))
        b = hub.register(StandingQuery(threshold=0.3))
        assert a != b
        assert set(hub.queries()) == {a, b}

    def test_only_a_lowered_q_min_travels_to_the_sites(self):
        hub = _coordinator(sites=3)
        hub.register(StandingQuery(threshold=0.4))
        baseline = hub.stats.by_kind.get("subscribe", 0)
        # A *tighter* query rides the existing group bound: control
        # traffic is one client->server message, no site fan-out.
        hub.register(StandingQuery(threshold=0.6))
        assert hub.stats.by_kind["subscribe"] == baseline + 1
        # A *looser* query lowers q_min, which must reach every edge.
        hub.register(StandingQuery(threshold=0.2))
        assert hub.stats.by_kind["subscribe"] == baseline + 2 + 3

    def test_preferences_get_their_own_groups(self):
        hub = _coordinator(sites=2)
        hub.register(StandingQuery(threshold=0.4))
        before = hub.stats.by_kind.get("subscribe", 0)
        # Same threshold, different preference: a brand-new group, so
        # the bound fans out to both sites regardless.
        hub.register(
            StandingQuery(threshold=0.4, preference=Preference(subspace=(0,)))
        )
        assert hub.stats.by_kind["subscribe"] == before + 1 + 2

    def test_unregister_unknown_query_raises(self):
        hub = _coordinator()
        with pytest.raises(KeyError, match="no standing query"):
            hub.unregister(99)

    def test_unregister_last_query_tears_the_group_down(self):
        hub = _coordinator(sites=2, capacity=4)
        qid = hub.register(StandingQuery(threshold=0.4))
        hub.ingest(0, _t(0, (0, 0), 0.9))
        hub.close_epoch()
        hub.unregister(qid)
        # The group is gone end-to-end: a fresh epoch has nothing to
        # reconcile and nothing to notify.
        assert hub.close_epoch() == []
        with pytest.raises(KeyError):
            hub.result(qid)

    def test_mid_stream_registration_sees_the_live_window(self):
        hub = _coordinator(sites=2, capacity=8)
        hub.ingest(0, _t(0, (0, 0), 0.9))
        hub.ingest(1, _t(1, (1, 1), 0.8))
        qid = hub.register(StandingQuery(threshold=0.3))
        deltas = hub.close_epoch()
        assert {d.key for d in deltas if d.kind is DeltaKind.ENTER} >= {0}
        assert all(d.query_id == qid for d in deltas)


class TestIngest:
    def test_unknown_site_raises_index_error(self):
        hub = _coordinator(sites=2)
        with pytest.raises(IndexError, match="no site"):
            hub.ingest(2, _t(0, (0, 0), 0.5))

    def test_duplicate_stream_keys_are_rejected(self):
        hub = _coordinator()
        hub.ingest(0, _t(7, (0, 0), 0.5))
        with pytest.raises(ValueError, match="already live or previously seen"):
            hub.ingest(1, _t(7, (1, 1), 0.5))


class TestDeltas:
    def test_first_epoch_enters_in_canonical_order(self):
        hub = _coordinator(sites=2, capacity=8)
        hub.register(StandingQuery(threshold=0.3))
        hub.ingest(0, _t(0, (0.0, 5.0), 0.7))
        hub.ingest(1, _t(1, (5.0, 0.0), 0.9))
        deltas = hub.close_epoch()
        assert all(d.kind is DeltaKind.ENTER for d in deltas)
        ranked = [(-d.probability, d.key) for d in deltas]
        assert ranked == sorted(ranked)
        for d in deltas:
            assert d.tuple is not None and d.probability is not None

    def test_exits_come_first_sorted_by_key(self):
        hub = _coordinator(sites=1, capacity=2)
        hub.register(StandingQuery(threshold=0.3))
        hub.ingest(0, _t(0, (0.0, 9.0), 0.9))
        hub.ingest(0, _t(1, (9.0, 0.0), 0.9))
        hub.close_epoch()
        # Both incomparable seeds get evicted by the next two arrivals.
        hub.ingest(0, _t(2, (1.0, 8.0), 0.9))
        hub.ingest(0, _t(3, (8.0, 1.0), 0.9))
        deltas = hub.close_epoch()
        kinds = [d.kind for d in deltas]
        exits = [d.key for d in deltas if d.kind is DeltaKind.EXIT]
        assert exits == sorted(exits) == [0, 1]
        assert kinds[: len(exits)] == [DeltaKind.EXIT] * len(exits)

    def test_rescore_fires_when_probability_moves(self):
        hub = _coordinator(sites=2, capacity=8)
        hub.register(StandingQuery(threshold=0.3))
        hub.ingest(0, _t(0, (5.0, 5.0), 0.9))
        hub.close_epoch()
        # A dominating arrival at the *other* site drags key 0's global
        # probability down (but not below threshold).
        hub.ingest(1, _t(1, (1.0, 1.0), 0.4))
        deltas = hub.close_epoch()
        rescored = [d for d in deltas if d.kind is DeltaKind.RESCORE]
        assert [d.key for d in rescored] == [0]
        assert rescored[0].probability == pytest.approx(0.9 * 0.6)

    def test_quiet_epoch_costs_no_messages_and_emits_nothing(self):
        hub = _coordinator(sites=2, capacity=8)
        hub.register(StandingQuery(threshold=0.3))
        hub.ingest(0, _t(0, (0, 0), 0.9))
        hub.close_epoch()
        before = hub.stats.messages
        assert hub.close_epoch() == []
        assert hub.stats.messages == before

    def test_suppressed_arrival_ships_zero_tuples(self):
        hub = _coordinator(sites=2, capacity=8)
        hub.register(StandingQuery(threshold=0.3))
        hub.ingest(0, _t(0, (0.0, 0.0), 0.9))
        hub.close_epoch()
        shipped = hub.stats.tuples_transmitted
        # Dominated and near-impossible: the edge pre-filter provably
        # keeps it off the wire.
        hub.ingest(0, _t(1, (9.0, 9.0), 0.01))
        hub.close_epoch()
        assert hub.stats.tuples_transmitted == shipped
        assert hub.candidates_shipped == 1


class TestViews:
    def test_limit_takes_the_top_k_of_the_full_view(self):
        hub = _coordinator(sites=2, capacity=32)
        full_id = hub.register(StandingQuery(threshold=0.3))
        top_id = hub.register(StandingQuery(threshold=0.3, limit=2))
        rng = random.Random(13)
        for key in range(10):
            values = (float(rng.randrange(8)), float(rng.randrange(8)))
            hub.ingest(key % 2, _t(key, values, 0.3 + 0.7 * rng.random()))
        hub.close_epoch()
        full = hub.result(full_id).members
        top = hub.result(top_id).members
        assert len(top) == min(2, len(full))
        assert [(m.key, m.probability) for m in top] == [
            (m.key, m.probability) for m in full[: len(top)]
        ]

    def test_replaying_the_delta_stream_reconstructs_every_view(self):
        arrivals = make_synthetic_stream(n=120, d=2, sites=3, seed=5)
        hub = ContinuousCoordinator(
            [StreamSite(i, CountWindow(20)) for i in range(3)]
        )
        plain = hub.register(StandingQuery(threshold=0.35))
        sub = hub.register(
            StandingQuery(threshold=0.3, preference=Preference(subspace=(0,)))
        )
        topk = hub.register(StandingQuery(threshold=0.25, limit=4))
        replayed: Dict[int, Dict[int, float]] = {plain: {}, sub: {}, topk: {}}
        epochs_checked = 0
        for i, arrival in enumerate(arrivals):
            hub.ingest(arrival.site_id, arrival.tuple, arrival.stamp)
            if (i + 1) % 15 != 0:
                continue
            for delta in hub.close_epoch():
                view = replayed[delta.query_id]
                if delta.kind is DeltaKind.EXIT:
                    del view[delta.key]
                else:
                    view[delta.key] = delta.probability
            for query_id, view in replayed.items():
                want = {
                    m.key: m.probability for m in hub.result(query_id).members
                }
                assert view == want  # bitwise: same keys, same floats
            epochs_checked += 1
        assert epochs_checked == 8
        assert any(replayed[qid] for qid in replayed)
        # Ledger identity: the only tuple-bearing traffic is entered
        # candidates up (DELTA) and replicas down (REPLICA_SYNC).
        assert (
            hub.stats.tuples_transmitted
            == hub.candidates_shipped + hub.replicas_shipped
        )

"""Contracts for :class:`StandingQuery` and :class:`ResultDelta`."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.dominance import Preference
from repro.core.tuples import UncertainTuple
from repro.stream import DeltaKind, ResultDelta, StandingQuery


class TestStandingQuery:
    def test_threshold_must_be_in_unit_interval(self):
        for bad in (0.0, -0.2, 1.0001):
            with pytest.raises(ValueError, match="threshold"):
                StandingQuery(threshold=bad)
        assert StandingQuery(threshold=1.0).threshold == 1.0

    def test_limit_must_be_positive_when_given(self):
        with pytest.raises(ValueError, match="limit"):
            StandingQuery(threshold=0.5, limit=0)
        assert StandingQuery(threshold=0.5, limit=1).limit == 1

    def test_defaults_and_immutability(self):
        q = StandingQuery(threshold=0.3)
        assert q.preference is None and q.limit is None and q.tenant == "default"
        with pytest.raises(dataclasses.FrozenInstanceError):
            q.threshold = 0.9  # type: ignore[misc]

    def test_carries_a_preference(self):
        q = StandingQuery(threshold=0.3, preference=Preference(subspace=(0, 1)))
        assert q.preference.subspace == (0, 1)


class TestResultDelta:
    def test_describe_names_kind_key_and_probability(self):
        t = UncertainTuple(7, (1.0, 2.0), 0.5)
        enter = ResultDelta(3, 2, DeltaKind.ENTER, 7, probability=0.625, tuple=t)
        assert "ENTER" in enter.describe()
        assert "key=7" in enter.describe()
        assert "0.625000" in enter.describe()

    def test_exit_describes_without_probability(self):
        exit_ = ResultDelta(1, 4, DeltaKind.EXIT, 9)
        assert exit_.probability is None and exit_.tuple is None
        assert "EXIT key=9" in exit_.describe()
        assert "P=" not in exit_.describe()

    def test_kinds_cover_the_protocol(self):
        assert {k.value for k in DeltaKind} == {"enter", "exit", "rescore"}

"""Unit contracts for the sliding-window policies.

The one property every kind must uphold — live tuples in arrival
order — is what the epoch-equivalence suite builds on: a standing
engine over ``window.live()`` must equal a fresh site built over the
same list.
"""

from __future__ import annotations

import pytest

from repro.core.tuples import UncertainTuple
from repro.stream import (
    WINDOW_KINDS,
    CountWindow,
    SlidingTimeWindow,
    TumblingTimeWindow,
    make_window,
)


def _t(key: int) -> UncertainTuple:
    return UncertainTuple(key, (float(key), float(key)), 0.5)


class TestCountWindow:
    def test_rejects_nonpositive_capacity(self):
        for capacity in (0, -3):
            with pytest.raises(ValueError, match="capacity"):
                CountWindow(capacity)

    def test_fifo_eviction_keeps_the_last_capacity_arrivals(self):
        w = CountWindow(3)
        evicted = []
        for i in range(5):
            evicted.extend(w.push(_t(i), float(i)))
        assert [t.key for t in evicted] == [0, 1]
        assert [t.key for t in w.live()] == [2, 3, 4]
        assert len(w) == 3

    def test_advance_never_expires_a_count_window(self):
        w = CountWindow(2)
        w.push(_t(0), 0.0)
        w.push(_t(1), 1.0)
        assert w.advance(1_000.0) == []
        assert len(w) == 2


class TestSlidingTimeWindow:
    def test_rejects_nonpositive_span(self):
        for span in (0.0, -1.0):
            with pytest.raises(ValueError, match="span"):
                SlidingTimeWindow(span)

    def test_tuples_live_while_now_minus_stamp_below_span(self):
        w = SlidingTimeWindow(10.0)
        w.push(_t(0), 0.0)
        w.push(_t(1), 5.0)
        assert w.push(_t(2), 9.0) == []
        assert [t.key for t in w.live()] == [0, 1, 2]
        # At now=10 the stamp-0 tuple has aged exactly `span`: out.
        evicted = w.push(_t(3), 10.0)
        assert [t.key for t in evicted] == [0]
        assert [t.key for t in w.live()] == [1, 2, 3]

    def test_advance_expires_without_an_arrival(self):
        w = SlidingTimeWindow(10.0)
        w.push(_t(0), 0.0)
        w.push(_t(1), 5.0)
        expired = w.advance(14.0)
        assert [t.key for t in expired] == [0]
        assert [t.key for t in w.live()] == [1]
        # At now=15 the stamp-5 tuple has aged exactly `span`: out too.
        assert [t.key for t in w.advance(15.0)] == [1]


class TestTumblingTimeWindow:
    def test_rejects_nonpositive_span(self):
        with pytest.raises(ValueError, match="span"):
            TumblingTimeWindow(0.0)

    def test_flushes_everything_on_a_bucket_boundary(self):
        w = TumblingTimeWindow(10.0)
        for i, stamp in enumerate((1.0, 4.0, 9.0)):
            assert w.push(_t(i), stamp) == []
        evicted = w.push(_t(3), 12.0)  # crosses into bucket 1
        assert [t.key for t in evicted] == [0, 1, 2]
        assert [t.key for t in w.live()] == [3]

    def test_advance_across_the_boundary_flushes_too(self):
        w = TumblingTimeWindow(10.0)
        w.push(_t(0), 2.0)
        assert w.advance(9.0) == []
        assert [t.key for t in w.advance(10.0)] == [0]
        assert len(w) == 0


class TestStampDiscipline:
    def test_regressing_stamp_raises_instead_of_reordering(self):
        for w in (CountWindow(4), SlidingTimeWindow(5.0), TumblingTimeWindow(5.0)):
            w.push(_t(0), 3.0)
            with pytest.raises(ValueError, match="regresses"):
                w.push(_t(1), 2.0)
            with pytest.raises(ValueError, match="regresses"):
                w.advance(1.0)

    def test_equal_stamps_are_fine(self):
        w = SlidingTimeWindow(5.0)
        w.push(_t(0), 3.0)
        w.push(_t(1), 3.0)
        assert len(w) == 2


class TestMakeWindow:
    def test_builds_every_registered_kind(self):
        assert set(WINDOW_KINDS) == {"count", "sliding-time", "tumbling-time"}
        assert isinstance(make_window("count", 8.0), CountWindow)
        assert isinstance(make_window("sliding-time", 8.0), SlidingTimeWindow)
        assert isinstance(make_window("tumbling-time", 8.0), TumblingTimeWindow)

    def test_count_takes_a_cardinality(self):
        w = make_window("count", 3.9)
        assert isinstance(w, CountWindow)
        assert w.capacity == 3

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown window kind"):
            make_window("hopping", 4)

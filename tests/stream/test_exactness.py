"""The epoch-equivalence acceptance suite.

The subsystem's contract: after **every** closed epoch, each standing
query's pushed result is bit-identical — keys, probabilities, and
canonical order — to a fresh
:func:`~repro.distributed.query.distributed_skyline` run over the
current live window contents of all sites.  Checked here for the three
window kinds crossed with {plain, subspace, top-k} standing queries
under a seeded chaos schedule (irregular epoch boundaries, explicit
clock advances, mid-stream registration and unregistration).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.dominance import Preference
from repro.distributed.query import distributed_skyline
from repro.distributed.site import SiteConfig
from repro.data.workload import make_synthetic_stream
from repro.stream import ContinuousCoordinator, StandingQuery, StreamSite, make_window
from repro.stream.site import streaming_site_config

SITES = 3
ARRIVALS = make_synthetic_stream(n=150, d=3, sites=SITES, seed=421)
#: Window size knob per kind, tuned so windows actually churn: the
#: stream's mean inter-arrival is ~1, so a ~25-wide time span holds
#: roughly as many live tuples as the 25-deep count window.
WINDOW_SIZE = {"count": 25.0, "sliding-time": 25.0, "tumbling-time": 30.0}


def _fresh_view(
    hub: ContinuousCoordinator, query: StandingQuery
) -> List[Tuple[int, float]]:
    """What a from-scratch run says the query's view must be."""
    answer = distributed_skyline(
        hub.live_partitions(),
        query.threshold,
        algorithm="edsud",
        preference=query.preference,
        site_config=streaming_site_config(),
    ).answer
    members = list(answer.members)  # already in canonical (-P, key) order
    if query.limit is not None:
        members = members[: query.limit]
    return [(m.key, m.probability) for m in members]


def _standing_view(
    hub: ContinuousCoordinator, query_id: int
) -> List[Tuple[int, float]]:
    return [(m.key, m.probability) for m in hub.result(query_id).members]


@pytest.mark.parametrize("kind", sorted(WINDOW_SIZE))
def test_every_epoch_matches_a_fresh_run_bitwise(kind: str):
    hub = ContinuousCoordinator(
        [StreamSite(i, make_window(kind, WINDOW_SIZE[kind])) for i in range(SITES)]
    )
    queries: Dict[int, StandingQuery] = {}

    def admit(query: StandingQuery) -> int:
        query_id = hub.register(query)
        queries[query_id] = query
        return query_id

    admit(StandingQuery(threshold=0.35))
    subspace_id = admit(
        StandingQuery(threshold=0.3, preference=Preference(subspace=(0, 1)))
    )
    chaos = random.Random(97)
    epochs = 0
    nonempty = 0
    for i, arrival in enumerate(ARRIVALS):
        hub.ingest(arrival.site_id, arrival.tuple, arrival.stamp)
        if chaos.random() < 0.25 and i + 1 < len(ARRIVALS):
            # Let time pass partway to the next arrival: time windows
            # expire between pushes, count windows must not care.
            halfway = (arrival.stamp + ARRIVALS[i + 1].stamp) / 2.0
            hub.advance(halfway)
        if (i + 1) % 15 == 0 or chaos.random() < 0.08:
            hub.close_epoch()
            epochs += 1
            for query_id, query in queries.items():
                got = _standing_view(hub, query_id)
                assert got == _fresh_view(hub, query), (
                    f"epoch {hub.epoch} ({kind}): standing view for query "
                    f"{query_id} drifted from the fresh run"
                )
                nonempty += bool(got)
            if epochs == 2:
                # Chaos: the top-k query arrives mid-stream...
                admit(StandingQuery(threshold=0.25, limit=5))
            if epochs == 7:
                # ...and the subspace query leaves again.
                hub.unregister(subspace_id)
                del queries[subspace_id]
    assert epochs >= 10
    assert nonempty > epochs  # the checks were not vacuous


def test_table_engine_matches_to_tolerance():
    """The §5.4 ``all_probs_table`` engine is exact to ~1e-12, not
    bitwise; the standing result must still track a fresh run on the
    *same* engine within tolerance."""
    config = SiteConfig(use_index=False, vectorized=True, all_probs_table=True)
    hub = ContinuousCoordinator(
        [
            StreamSite(i, make_window("count", 20), site_config=config)
            for i in range(SITES)
        ]
    )
    query = StandingQuery(threshold=0.3)
    query_id = hub.register(query)
    for i, arrival in enumerate(ARRIVALS[:90]):
        hub.ingest(arrival.site_id, arrival.tuple, arrival.stamp)
        if (i + 1) % 15 == 0:
            hub.close_epoch()
            got = _standing_view(hub, query_id)
            want = distributed_skyline(
                hub.live_partitions(),
                query.threshold,
                algorithm="edsud",
                site_config=config,
            ).answer
            assert [k for k, _p in got] == [m.key for m in want.members]
            for (_k, p_got), m in zip(got, want.members):
                assert p_got == pytest.approx(m.probability, abs=1e-9)

"""Protocol messages: bandwidth semantics and wire serialization."""

import pytest

from repro.core.tuples import UncertainTuple
from repro.net.message import (
    Message,
    MessageKind,
    Quaternion,
    decode_tuple,
    encode_tuple,
)


class TestTupleCodec:
    def test_roundtrip(self):
        t = UncertainTuple(42, (1.5, -2.0, 3.25), 0.625)
        assert decode_tuple(encode_tuple(t)) == t

    def test_encoding_is_json_compatible(self):
        import json

        t = UncertainTuple(1, (0.1, 0.2), 0.3)
        json.dumps(encode_tuple(t))  # must not raise


class TestQuaternion:
    def test_fields(self):
        t = UncertainTuple(7, (1.0, 2.0), 0.8)
        q = Quaternion(site=3, tuple=t, local_probability=0.65)
        assert q.key == 7
        assert q.existential == 0.8
        assert q.site == 3

    def test_roundtrip(self):
        t = UncertainTuple(7, (1.0, 2.0), 0.8)
        q = Quaternion(site=3, tuple=t, local_probability=0.65)
        assert Quaternion.from_dict(q.to_dict()) == q


class TestBandwidthSemantics:
    """Only tuple-bearing kinds may cost bandwidth (§3.2's metric)."""

    @pytest.mark.parametrize(
        "kind", [MessageKind.REPRESENTATIVE, MessageKind.FEEDBACK,
                 MessageKind.UPDATE, MessageKind.DATA]
    )
    def test_tuple_bearing_kinds(self, kind):
        assert Message.bearing(kind, "a", "b", None).tuple_count == 1

    @pytest.mark.parametrize(
        "kind", [MessageKind.PREPARE, MessageKind.PREPARE_REPLY,
                 MessageKind.NEXT_REQUEST, MessageKind.EXHAUSTED,
                 MessageKind.PROBE_REPLY, MessageKind.RESULT,
                 MessageKind.CONTROL]
    )
    def test_control_kinds_are_free(self, kind):
        assert Message.bearing(kind, "a", "b", None).tuple_count == 0


class TestSizeEstimate:
    def test_control_message_is_envelope_only(self):
        m = Message.bearing(MessageKind.NEXT_REQUEST, "a", "b", None)
        assert m.size_bytes() == 16

    def test_tuple_bearing_scales_with_dimensionality(self):
        m = Message.bearing(MessageKind.FEEDBACK, "a", "b", None)
        assert m.size_bytes(dimensionality=2) == 16 + 8 * 4
        assert m.size_bytes(dimensionality=5) == 16 + 8 * 7
        assert m.size_bytes(5) > m.size_bytes(2)


class TestMessageSerialization:
    def test_json_roundtrip_plain(self):
        m = Message.bearing(MessageKind.NEXT_REQUEST, "server", "site-1", None)
        assert Message.from_json(m.to_json()) == m

    def test_json_roundtrip_with_tuple_payload(self):
        t = UncertainTuple(1, (1.0, 2.0), 0.5)
        m = Message.bearing(MessageKind.FEEDBACK, "server", "site-2", t)
        restored = Message.from_json(m.to_json())
        assert restored.payload == t
        assert restored.tuple_count == 1

    def test_json_roundtrip_with_quaternion_payload(self):
        t = UncertainTuple(1, (1.0, 2.0), 0.5)
        q = Quaternion(site=0, tuple=t, local_probability=0.4)
        m = Message.bearing(MessageKind.REPRESENTATIVE, "site-0", "server", q)
        assert Message.from_json(m.to_json()).payload == q

    def test_json_roundtrip_nested_payload(self):
        t = UncertainTuple(1, (1.0,), 0.5)
        m = Message.bearing(
            MessageKind.CONTROL, "a", "b", {"items": [t, t], "count": 2}
        )
        restored = Message.from_json(m.to_json())
        assert restored.payload["count"] == 2
        assert restored.payload["items"] == [t, t]

    def test_unknown_payload_tag_rejected(self):
        from repro.net.message import _decode_payload

        with pytest.raises(ValueError):
            _decode_payload({"__type__": "alien"})

"""Protocol tracing."""


from repro.distributed.edsud import EDSUD
from repro.distributed.site import LocalSite
from repro.net.trace import ProtocolTracer, load_trace, summarize_trace

from ..conftest import make_random_database


def traced_run(m=3, n=180, q=0.3, seed=1):
    db = make_random_database(n, 2, seed=seed, grid=10)
    tracer = ProtocolTracer()
    sites = tracer.wrap([LocalSite(i, db[i::m]) for i in range(m)])
    result = EDSUD(sites, q).run()
    return tracer, result


class TestTracer:
    def test_records_every_protocol_phase(self):
        tracer, _ = traced_run()
        methods = {r.method for r in tracer.records}
        assert {"prepare", "pop_representative", "probe_and_prune"} <= methods

    def test_sequence_and_timestamps_monotone(self):
        tracer, _ = traced_run()
        seqs = [r.sequence for r in tracer.records]
        times = [r.timestamp for r in tracer.records]
        assert seqs == list(range(len(seqs)))
        assert times == sorted(times)

    def test_wrapping_preserves_the_answer(self):
        from repro.core.prob_skyline import prob_skyline_sfs

        db = make_random_database(180, 2, seed=2, grid=10)
        tracer = ProtocolTracer()
        sites = tracer.wrap([LocalSite(i, db[i::3]) for i in range(3)])
        result = EDSUD(sites, 0.3).run()
        assert result.answer.agrees_with(prob_skyline_sfs(db, 0.3), tol=1e-9)
        assert len(tracer) > 0

    def test_save_load_roundtrip(self, tmp_path):
        tracer, _ = traced_run(seed=3)
        path = tmp_path / "run.trace.jsonl"
        tracer.save(path)
        loaded = load_trace(path)
        assert len(loaded) == len(tracer.records)
        assert loaded[0] == tracer.records[0]
        assert loaded[-1] == tracer.records[-1]

    def test_passthrough_extra_methods(self):
        db = make_random_database(30, 2, seed=4)
        tracer = ProtocolTracer()
        (endpoint,) = tracer.wrap([LocalSite(0, db)])
        assert len(endpoint.ship_all()) == 30  # not traced, still works


class TestSummary:
    def test_summary_consistent_with_run_stats(self):
        tracer, result = traced_run(seed=5)
        summary = summarize_trace(tracer.records)
        assert summary["tuples_fetched"] == result.stats.tuples_to_server
        assert summary["broadcast_deliveries"] == result.stats.tuples_from_server
        assert summary["calls"] == len(tracer.records)
        assert set(summary["by_site"]) == {0, 1, 2}

    def test_empty_trace_summary(self):
        summary = summarize_trace([])
        assert summary["calls"] == 0
        assert summary["duration"] == 0.0

"""Bandwidth accounting and progressiveness logging."""

import pytest

from repro.net.message import Message, MessageKind
from repro.net.stats import LatencyModel, NetworkStats, ProgressLog


class TestLatencyModel:
    def test_round_cost(self):
        model = LatencyModel(round_latency=0.01, per_tuple=0.001)
        assert model.round_cost(0) == pytest.approx(0.01)
        assert model.round_cost(10) == pytest.approx(0.02)


class TestNetworkStats:
    def test_direction_split(self):
        stats = NetworkStats()
        stats.record(Message.bearing(MessageKind.REPRESENTATIVE, "site-1", "server", None))
        stats.record(Message.bearing(MessageKind.FEEDBACK, "server", "site-2", None))
        stats.record(Message.bearing(MessageKind.FEEDBACK, "server", "site-3", None))
        assert stats.tuples_to_server == 1
        assert stats.tuples_from_server == 2
        assert stats.tuples_transmitted == 3
        assert stats.messages == 3

    def test_control_messages_free(self):
        stats = NetworkStats()
        stats.record(Message.bearing(MessageKind.PROBE_REPLY, "site-1", "server", None))
        assert stats.tuples_transmitted == 0
        assert stats.messages == 1

    def test_by_kind_breakdown(self):
        stats = NetworkStats()
        for _ in range(3):
            stats.record(Message.bearing(MessageKind.FEEDBACK, "server", "site-1", None))
        assert stats.by_kind["feedback"] == 3

    def test_simulated_clock(self):
        stats = NetworkStats(latency_model=LatencyModel(0.1, 0.01))
        stats.record_round(tuples_in_round=5)
        stats.record_round(tuples_in_round=0)
        assert stats.rounds == 2
        assert stats.simulated_time == pytest.approx(0.1 + 0.05 + 0.1)

    def test_snapshot(self):
        stats = NetworkStats()
        stats.record(Message.bearing(MessageKind.DATA, "site-1", "server", None))
        snap = stats.snapshot()
        assert snap["tuples_transmitted"] == 1
        assert snap["messages"] == 1


class TestProgressLog:
    def test_events_accumulate_with_indices(self):
        stats = NetworkStats()
        log = ProgressLog()
        stats.record(Message.bearing(MessageKind.FEEDBACK, "server", "site-1", None))
        log.report(key=5, probability=0.8, stats=stats)
        stats.record(Message.bearing(MessageKind.FEEDBACK, "server", "site-1", None))
        log.report(key=9, probability=0.6, stats=stats)
        assert len(log) == 2
        assert [e.result_index for e in log.events] == [1, 2]
        assert log.bandwidth_series() == [1, 2]

    def test_cpu_series_monotone(self):
        stats = NetworkStats()
        log = ProgressLog()
        for key in range(5):
            sum(range(10_000))  # burn a little CPU
            log.report(key=key, probability=0.5, stats=stats)
        series = log.cpu_series()
        assert series == sorted(series)
        assert all(s >= 0.0 for s in series)

    def test_restart_clock(self):
        log = ProgressLog()
        log.restart_clock()
        assert log.cpu_elapsed() < 1.0

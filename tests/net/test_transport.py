"""The endpoint contract and the recording decorator."""

import pytest

from repro.distributed.site import LocalSite
from repro.net.transport import RecordingEndpoint, SiteEndpoint

from ..conftest import make_random_database


def make_endpoint(seed=1):
    db = make_random_database(60, 2, seed=seed, grid=8)
    return RecordingEndpoint(LocalSite(0, db)), db


class TestProtocolConformance:
    def test_local_site_satisfies_endpoint_protocol(self):
        site = LocalSite(0, make_random_database(10, 2, seed=1))
        assert isinstance(site, SiteEndpoint)

    def test_recording_endpoint_satisfies_protocol(self):
        endpoint, _ = make_endpoint()
        assert isinstance(endpoint, SiteEndpoint)


class TestRecordingEndpoint:
    def test_calls_forwarded_and_logged(self):
        endpoint, _ = make_endpoint()
        size = endpoint.prepare(0.3)
        q = endpoint.pop_representative()
        assert size >= 1 and q is not None
        methods = [c.method for c in endpoint.log]
        assert methods == ["prepare", "pop_representative"]
        assert endpoint.log[0].result == size
        assert endpoint.log[1].result == q

    def test_probe_and_prune_logged_with_args(self):
        endpoint, db = make_endpoint()
        endpoint.prepare(0.3)
        foreign = db[0]
        reply = endpoint.probe_and_prune(foreign)
        record = endpoint.log[-1]
        assert record.method == "probe_and_prune"
        assert record.args == (foreign,)
        assert record.result is reply

    def test_shared_log_across_endpoints(self):
        log = []
        db = make_random_database(40, 2, seed=2)
        a = RecordingEndpoint(LocalSite(0, db[:20]), log=log)
        b = RecordingEndpoint(LocalSite(1, db[20:]), log=log)
        a.prepare(0.5)
        b.prepare(0.5)
        assert [c.site_id for c in log] == [0, 1]

    def test_passthrough_of_extra_methods(self):
        endpoint, db = make_endpoint()
        # ship_all is not part of the recorded surface but must still work
        assert len(endpoint.ship_all()) == len(db)

    def test_passthrough_of_plain_attributes(self):
        endpoint, _ = make_endpoint()
        endpoint.prepare(0.3)
        # __getattr__ must expose inner state, not just methods
        assert endpoint.pruned_total == endpoint.inner.pruned_total
        assert endpoint.config is endpoint.inner.config

    def test_passthrough_calls_are_not_logged(self):
        endpoint, _ = make_endpoint()
        endpoint.prepare(0.3)
        before = len(endpoint.log)
        endpoint.ship_all()
        _ = endpoint.pruned_total
        assert len(endpoint.log) == before

    def test_missing_attribute_still_raises(self):
        endpoint, _ = make_endpoint()
        with pytest.raises(AttributeError):
            endpoint.no_such_method()

    def test_queue_size_recorded(self):
        endpoint, _ = make_endpoint()
        endpoint.prepare(0.3)
        n = endpoint.queue_size()
        assert endpoint.log[-1].method == "queue_size"
        assert endpoint.log[-1].result == n

"""Asyncio transport: RPC semantics, overlap, and sync-adapter fidelity."""

import asyncio

import pytest

from repro.distributed.site import LocalSite
from repro.fault.errors import SiteTimeout
from repro.net.aio import (
    AsyncLocalEndpoint,
    AsyncRemoteSiteProxy,
    connect_async_sites,
)
from repro.net.sockets import host_sites

from ..conftest import make_random_database


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def cluster():
    db = make_random_database(240, 2, seed=1, grid=10)
    partitions = [db[i::3] for i in range(3)]
    with host_sites(partitions) as c:
        yield c, db


def _addresses(c):
    return [(i, s.address) for i, s in enumerate(c.servers)]


class TestAsyncRemoteProxy:
    def test_rpc_surface_matches_local(self, cluster):
        c, db = cluster

        async def scenario():
            proxies = await connect_async_sites(_addresses(c))
            try:
                local = LocalSite(0, db[0::3])
                assert await proxies[0].ping()
                assert await proxies[0].prepare(0.3) == local.prepare(0.3)
                q = await proxies[0].pop_representative()
                local_q = local.pop_representative()
                assert q is not None and q.tuple.key == local_q.tuple.key
                assert q.local_probability == pytest.approx(
                    local_q.local_probability
                )
                foreign = db[1]
                remote_reply = await proxies[0].probe_and_prune(foreign)
                local_reply = local.probe_and_prune(foreign)
                assert remote_reply.factor == pytest.approx(local_reply.factor)
                assert remote_reply.pruned == local_reply.pruned
                assert await proxies[0].queue_size() == local.queue_size()
            finally:
                for p in proxies:
                    await p.close()

        run(scenario())

    def test_batch_probe_matches_sequential(self, cluster):
        c, db = cluster

        async def scenario():
            proxies = await connect_async_sites(_addresses(c))
            try:
                await proxies[1].prepare(0.3)
                probes = db[0:6:2]
                reply = await proxies[1].probe_and_prune_batch(probes)
                assert len(reply.factors) == len(probes)
                local = LocalSite(1, db[1::3])
                local.prepare(0.3)
                expected = [local.probe_and_prune(t).factor for t in probes]
                assert reply.factors == pytest.approx(expected)
            finally:
                for p in proxies:
                    await p.close()

        run(scenario())

    def test_exhaustion_returns_none(self, cluster):
        c, _ = cluster

        async def scenario():
            proxy = await AsyncRemoteSiteProxy.connect(2, c.servers[2].address)
            try:
                await proxy.prepare(0.99)
                while await proxy.pop_representative() is not None:
                    pass
                assert await proxy.pop_representative() is None
            finally:
                await proxy.close()

        run(scenario())

    def test_application_error_is_authoritative(self, cluster):
        c, _ = cluster

        async def scenario():
            proxy = await AsyncRemoteSiteProxy.connect(0, c.servers[0].address)
            try:
                with pytest.raises(RuntimeError, match="RPC failed"):
                    await proxy._call("frobnicate")
                # The connection survives an application error.
                assert await proxy.ping()
            finally:
                await proxy.close()

        run(scenario())

    def test_timeout_escalates_to_site_timeout(self):
        """A listener that accepts but never answers raises SiteTimeout."""

        async def scenario():
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            proxy = await AsyncRemoteSiteProxy.connect(
                0, (host, port), timeout=0.2
            )
            try:
                with pytest.raises(SiteTimeout):
                    await proxy.queue_size()
                assert proxy.timeouts == 1
                assert proxy._needs_redial
            finally:
                await proxy.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_retry_reconnects_after_connection_drop(self, cluster):
        c, _ = cluster

        async def scenario():
            proxy = await AsyncRemoteSiteProxy.connect(
                0, c.servers[0].address, retries=2
            )
            try:
                assert await proxy.ping()
                proxy._writer.close()  # transient fault
                assert await proxy.prepare(0.3) >= 1  # idempotent -> retried
                assert proxy.reconnects >= 1
            finally:
                await proxy.close()

        run(scenario())

    def test_pop_is_never_retried(self, cluster):
        c, _ = cluster

        async def scenario():
            proxy = await AsyncRemoteSiteProxy.connect(
                0, c.servers[0].address, retries=5
            )
            try:
                await proxy.prepare(0.3)
                proxy._writer.close()
                with pytest.raises((ConnectionError, OSError)):
                    await proxy.pop_representative()
            finally:
                await proxy.close()

        run(scenario())

    def test_connect_failure_closes_partial_fanout(self, cluster):
        c, _ = cluster
        dead = ("127.0.0.1", 1)  # nothing listens on port 1

        async def scenario():
            with pytest.raises((ConnectionError, OSError, SiteTimeout)):
                await connect_async_sites(
                    _addresses(c) + [(99, dead)], timeout=2.0
                )

        run(scenario())

    def test_close_waits_for_the_transport_and_is_idempotent(self, cluster):
        c, _ = cluster

        async def scenario():
            proxy = await AsyncRemoteSiteProxy.connect(0, c.servers[0].address)
            assert await proxy.ping()
            writer = proxy._writer
            await proxy.close()
            # wait_closed ran: the transport is really gone, not merely
            # scheduled to go — rapid churn cannot pile up half-open
            # sockets behind the loop.
            assert writer.is_closing()
            assert proxy._writer is None and proxy._reader is None
            await proxy.close()  # idempotent

        run(scenario())

    def test_closed_proxy_never_silently_redials(self, cluster):
        c, _ = cluster

        async def scenario():
            proxy = await AsyncRemoteSiteProxy.connect(0, c.servers[0].address)
            await proxy.close()
            # A straggling RPC after teardown must fail loudly, not dial
            # a fresh connection past the owner that released it.
            with pytest.raises(ConnectionError, match="closed"):
                await proxy.ping()
            with pytest.raises(ConnectionError, match="closed"):
                await proxy._dial()
            assert proxy._writer is None

        run(scenario())

    def test_rapid_session_churn_leaks_no_connections(self, cluster):
        """Session churn: dial the fan-out, use it, drop it — 15 times.
        Every writer ever created must be closing by the end."""
        c, _ = cluster

        async def scenario():
            writers = []
            for _ in range(15):
                proxies = await connect_async_sites(_addresses(c))
                for p in proxies:
                    assert await p.ping()
                    writers.append(p._writer)
                for p in proxies:
                    await p.close()
            return writers

        writers = run(scenario())
        assert len(writers) == 15 * 3
        assert all(w.is_closing() for w in writers)

    def test_partial_fanout_cleanup_survives_a_failing_close(self, cluster):
        """One endpoint refusing to close must not leak the rest."""
        c, _ = cluster
        dead = ("127.0.0.1", 1)
        closed = []
        original_close = AsyncRemoteSiteProxy.close

        async def chaotic_close(self):
            if self.site_id == 0:
                raise ConnectionError("stuck in teardown")
            closed.append(self.site_id)
            await original_close(self)

        async def scenario():
            with pytest.raises((ConnectionError, OSError, SiteTimeout)):
                await connect_async_sites(
                    _addresses(c) + [(99, dead)], timeout=2.0
                )

        AsyncRemoteSiteProxy.close = chaotic_close
        try:
            run(scenario())
        finally:
            AsyncRemoteSiteProxy.close = original_close
        # Site 0's close raised, yet 1 and 2 were still released.
        assert sorted(closed) == [1, 2]

    def test_rpcs_to_distinct_sites_overlap(self, cluster):
        """The whole point of the async transport: concurrent in-flight
        RPCs to different sites overlap on one thread.  Server-side
        call windows must intersect — a wall-clock-free assertion."""
        c, _ = cluster
        import time

        windows = {}
        originals = {}
        for i, server in enumerate(c.servers):
            site = server.site
            originals[i] = site.prepare

            def slow_prepare(q, _site_index=i, _inner=site.prepare):
                start = time.perf_counter()
                time.sleep(0.15)
                out = _inner(q)
                windows[_site_index] = (start, time.perf_counter())
                return out

            site.prepare = slow_prepare
        try:

            async def scenario():
                proxies = await connect_async_sites(_addresses(c))
                try:
                    await asyncio.gather(*(p.prepare(0.3) for p in proxies))
                finally:
                    for p in proxies:
                        await p.close()

            run(scenario())
        finally:
            for i, server in enumerate(c.servers):
                server.site.prepare = originals[i]
        assert len(windows) == 3
        starts = [w[0] for w in windows.values()]
        ends = [w[1] for w in windows.values()]
        # Every call began before the earliest call finished.
        assert max(starts) < min(ends)


class TestAsyncLocalEndpoint:
    def test_adapter_is_transparent(self):
        db = make_random_database(120, 2, seed=4, grid=10)
        sync_site = LocalSite(0, db)
        adapted = AsyncLocalEndpoint(LocalSite(0, db))

        async def drive():
            out = []
            assert await adapted.prepare(0.3) == sync_site.prepare(0.3)
            while True:
                q = await adapted.pop_representative()
                if q is None:
                    break
                out.append(q.tuple.key)
            return out

        async_keys = run(drive())
        sync_keys = []
        while True:
            q = sync_site.pop_representative()
            if q is None:
                break
            sync_keys.append(q.tuple.key)
        assert async_keys == sync_keys

    def test_adapter_yields_to_event_loop(self):
        db = make_random_database(40, 2, seed=5)
        adapted = AsyncLocalEndpoint(LocalSite(0, db))
        ticks = []

        async def ticker():
            for i in range(3):
                ticks.append(i)
                await asyncio.sleep(0)

        async def scenario():
            task = asyncio.ensure_future(ticker())
            await adapted.prepare(0.3)
            await adapted.queue_size()
            await adapted.queue_size()
            await task

        run(scenario())
        assert ticks == [0, 1, 2]

    def test_getattr_passthrough(self):
        db = make_random_database(30, 2, seed=6)
        inner = LocalSite(7, db)
        adapted = AsyncLocalEndpoint(inner)
        assert adapted.site_id == 7
        assert adapted.ship_all() == inner.ship_all()

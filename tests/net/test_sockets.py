"""TCP transport: RPC semantics and full-protocol integration."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.distributed.dsud import DSUD
from repro.distributed.edsud import EDSUD
from repro.distributed.site import LocalSite
from repro.net.sockets import host_sites

from ..conftest import make_random_database


@pytest.fixture
def cluster():
    db = make_random_database(240, 2, seed=1, grid=10)
    partitions = [db[i::3] for i in range(3)]
    with host_sites(partitions) as c:
        yield c, db


class TestRpcSurface:
    def test_ping(self, cluster):
        c, _ = cluster
        assert all(p.ping() for p in c.proxies)

    def test_prepare_matches_local(self, cluster):
        c, db = cluster
        local = LocalSite(0, db[0::3])
        assert c.proxies[0].prepare(0.3) == local.prepare(0.3)

    def test_pop_representative_roundtrip(self, cluster):
        c, db = cluster
        proxy = c.proxies[0]
        proxy.prepare(0.3)
        q = proxy.pop_representative()
        assert q is not None
        assert q.site == 0
        assert q.tuple.key in {t.key for t in db[0::3]}

    def test_exhaustion_returns_none(self, cluster):
        c, _ = cluster
        proxy = c.proxies[1]
        proxy.prepare(0.99)
        while proxy.pop_representative() is not None:
            pass
        assert proxy.pop_representative() is None

    def test_probe_and_prune_matches_local(self, cluster):
        c, db = cluster
        proxy = c.proxies[2]
        proxy.prepare(0.3)
        local = LocalSite(2, db[2::3])
        local.prepare(0.3)
        foreign = db[0]
        remote_reply = proxy.probe_and_prune(foreign)
        local_reply = local.probe_and_prune(foreign)
        assert remote_reply.factor == pytest.approx(local_reply.factor)
        assert remote_reply.pruned == local_reply.pruned

    def test_ship_all(self, cluster):
        c, db = cluster
        shipped = c.proxies[0].ship_all()
        assert {t.key for t in shipped} == {t.key for t in db[0::3]}

    def test_ship_local_skyline_sorted(self, cluster):
        c, _ = cluster
        burst = c.proxies[0].ship_local_skyline(0.3)
        probs = [q.local_probability for q in burst]
        assert probs == sorted(probs, reverse=True)

    def test_unknown_method_raises(self, cluster):
        c, _ = cluster
        with pytest.raises(RuntimeError, match="RPC failed"):
            c.proxies[0]._call("frobnicate")


class TestFramingRobustness:
    """A hostile or buggy peer must never take the site server down."""

    @pytest.fixture
    def server(self):
        db = make_random_database(50, 2, seed=20)
        with host_sites([db]) as cluster:
            yield cluster

    def _raw_connection(self, server):
        import socket

        return socket.create_connection(server.servers[0].address, timeout=5)

    def test_garbage_bytes_then_clean_client_still_served(self, server):
        import struct

        sock = self._raw_connection(server)
        # A frame whose body is not JSON: handler answers an error or
        # drops the connection — either way it must not crash the server.
        body = b"\xff\xfenot json at all"
        sock.sendall(struct.pack(">I", len(body)) + body)
        try:
            sock.recv(4096)
        except OSError:
            pass
        sock.close()
        assert server.proxies[0].ping()

    def test_truncated_frame_then_disconnect(self, server):
        import struct

        sock = self._raw_connection(server)
        sock.sendall(struct.pack(">I", 1_000)[:2])  # half a length prefix
        sock.close()
        assert server.proxies[0].ping()

    def test_valid_json_wrong_schema_gets_error_reply(self, server):
        import json
        import struct

        sock = self._raw_connection(server)
        body = json.dumps({"not_method": True}).encode()
        sock.sendall(struct.pack(">I", len(body)) + body)
        header = sock.recv(4)
        (length,) = struct.unpack(">I", header)
        reply = json.loads(sock.recv(length))
        assert reply["ok"] is False
        sock.close()
        assert server.proxies[0].ping()

    def test_many_hostile_connections(self, server):
        import struct

        for payload in (b"", b"\x00" * 7, b"{", b"[1,2,3]"):
            sock = self._raw_connection(server)
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            try:
                sock.recv(1024)
            except OSError:
                pass
            sock.close()
        assert server.proxies[0].ping()


class TestEndToEnd:
    @pytest.mark.parametrize("coordinator_cls", [DSUD, EDSUD])
    def test_full_query_over_tcp_matches_central(self, coordinator_cls):
        db = make_random_database(300, 2, seed=2, grid=10)
        partitions = [db[i::4] for i in range(4)]
        central = prob_skyline_sfs(db, 0.3)
        with host_sites(partitions) as c:
            result = coordinator_cls(c.proxies, 0.3).run()
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_parallel_broadcast_over_tcp(self):
        """Concurrent probes: same answer, same books, threads live."""
        db = make_random_database(300, 2, seed=5, grid=10)
        partitions = [db[i::5] for i in range(5)]
        with host_sites(partitions) as c:
            sequential = EDSUD(c.proxies, 0.3).run()
        with host_sites(partitions) as c:
            parallel = EDSUD(c.proxies, 0.3, parallel_broadcast=True)
            result = parallel.run()
        assert result.answer.agrees_with(sequential.answer, tol=1e-12)
        assert result.bandwidth == sequential.bandwidth

    def test_parallel_broadcast_in_process(self):
        db = make_random_database(200, 2, seed=6, grid=10)
        partitions = [db[i::3] for i in range(3)]
        central = prob_skyline_sfs(db, 0.3)
        sites = [LocalSite(i, partitions[i]) for i in range(3)]
        result = DSUD(sites, 0.3, parallel_broadcast=True).run()
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_site_crash_mid_query_degrades_and_discloses(self):
        """A dead site must never hang the query or silently corrupt the
        answer: the run completes degraded and the coverage report says
        exactly which site was lost (Corollary-1 upper-bound mode)."""
        db = make_random_database(200, 2, seed=7, grid=10)
        partitions = [db[i::3] for i in range(3)]
        cluster = host_sites(partitions)
        try:
            # A process crash kills the listener *and* its established
            # connections; shutdown() alone leaves handler threads
            # serving, so sever the proxy's socket as the crash would.
            victim = cluster.servers[1]
            victim.shutdown()
            victim.server_close()
            cluster.proxies[1]._sock.close()
            result = EDSUD(cluster.proxies, 0.3).run()
            assert result.coverage is not None
            assert not result.coverage.complete
            assert 1 in result.coverage.down_sites
        finally:
            cluster.close()

    def test_retry_reconnects_after_connection_drop(self):
        """With retries enabled, a severed connection self-heals for
        idempotent RPCs (the server still listens)."""
        from repro.net.sockets import RemoteSiteProxy

        db = make_random_database(80, 2, seed=9, grid=10)
        cluster = host_sites([db])
        try:
            proxy = RemoteSiteProxy(
                site_id=0, address=cluster.servers[0].address, retries=2
            )
            assert proxy.ping()
            proxy._sock.close()  # transient fault
            assert proxy.prepare(0.3) >= 1  # idempotent -> retried
            assert proxy.reconnects == 1
            proxy.close()
        finally:
            cluster.close()

    def test_pop_is_never_retried(self):
        """An ambiguous drop during pop must surface, not silently re-pop."""
        from repro.net.sockets import RemoteSiteProxy

        db = make_random_database(80, 2, seed=10, grid=10)
        cluster = host_sites([db])
        try:
            proxy = RemoteSiteProxy(
                site_id=0, address=cluster.servers[0].address, retries=5
            )
            proxy.prepare(0.3)
            proxy._sock.close()
            with pytest.raises((ConnectionError, OSError)):
                proxy.pop_representative()
            proxy.close()
        finally:
            cluster.close()

    def test_connection_drop_during_rpc(self):
        """Closing the proxy's socket mid-conversation raises cleanly."""
        db = make_random_database(60, 2, seed=8)
        cluster = host_sites([db])
        try:
            proxy = cluster.proxies[0]
            assert proxy.ping()
            proxy._sock.close()
            with pytest.raises(OSError):
                proxy.prepare(0.3)
        finally:
            cluster.close()

    def test_teardown_releases_ports(self):
        db = make_random_database(30, 2, seed=3)
        with host_sites([db]) as c:
            port = c.servers[0].address[1]
        # After close the same port can be bound again (SO_REUSEADDR
        # mirrors what the server itself sets, so a lingering TIME_WAIT
        # from the test connection does not matter).
        import socket

        s = socket.socket()
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", port))
        s.close()


class TestProcessHosting:
    """Site servers in their own OS processes (the distributed deploy)."""

    def test_process_cluster_serves_full_queries(self):
        from repro.net.sockets import RemoteSiteProxy, host_sites_in_processes

        db = make_random_database(200, 2, seed=11, grid=10)
        partitions = [db[i::3] for i in range(3)]
        central = prob_skyline_sfs(db, 0.3)
        with host_sites_in_processes(partitions) as cluster:
            proxies = [
                RemoteSiteProxy(site_id=i, address=addr)
                for i, addr in cluster.addresses
            ]
            try:
                result = DSUD(proxies, 0.3).run()
            finally:
                for proxy in proxies:
                    proxy.close()
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_fork_per_connection_isolates_concurrent_queries(self):
        """Two connections to one server must not share queue state:
        each gets a private fork, so both pop the same representative
        first — exactly what per-session isolation requires."""
        from repro.net.sockets import RemoteSiteProxy, host_sites_in_processes

        db = make_random_database(120, 2, seed=12, grid=10)
        with host_sites_in_processes([db], fork_per_connection=True) as cluster:
            (site_id, address) = cluster.addresses[0]
            a = RemoteSiteProxy(site_id=site_id, address=address)
            b = RemoteSiteProxy(site_id=site_id, address=address)
            try:
                assert a.prepare(0.3) == b.prepare(0.3)
                first_a = a.pop_representative()
                first_b = b.pop_representative()
                assert first_a is not None and first_b is not None
                assert first_a.tuple.key == first_b.tuple.key
            finally:
                a.close()
                b.close()

    def test_rpc_delay_is_applied_per_request(self):
        """The deterministic WAN stand-in: every RPC takes at least the
        configured service delay."""
        import time

        from repro.net.sockets import RemoteSiteProxy, host_sites_in_processes

        db = make_random_database(40, 2, seed=13)
        with host_sites_in_processes([db], rpc_delay=0.05) as cluster:
            (site_id, address) = cluster.addresses[0]
            proxy = RemoteSiteProxy(site_id=site_id, address=address)
            try:
                start = time.perf_counter()
                assert proxy.ping()
                assert time.perf_counter() - start >= 0.05
            finally:
                proxy.close()

    def test_close_terminates_all_site_processes(self):
        from repro.net.sockets import host_sites_in_processes

        db = make_random_database(30, 2, seed=14)
        cluster = host_sites_in_processes([db[0::2], db[1::2]])
        assert all(p.is_alive() for p in cluster.processes)
        cluster.close()
        assert all(not p.is_alive() for p in cluster.processes)

"""ReplicaManager contracts: provisioning, forwarding, digests, repair."""

from repro.core.tuples import UncertainTuple
from repro.distributed.query import build_sites
from repro.net.stats import NetworkStats
from repro.replica.manager import ReplicaManager

from ..conftest import make_random_database


def make_cluster(m=4, n=80, factor=2, seed=5):
    db = make_random_database(n, 2, seed=seed, grid=10)
    sites = build_sites([db[i::m] for i in range(m)])
    return sites, ReplicaManager(sites, factor)


class TestProvisioning:
    def test_replicas_hold_byte_identical_partitions(self):
        sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        for site in sites:
            replica = mgr.replica_for(site.site_id)
            assert replica is not None
            assert replica.site_id == site.site_id
            assert replica.partition_digest() == site.partition_digest()

    def test_provisioning_is_idempotent(self):
        _sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        book = mgr.stats.snapshot()
        mgr.ensure_provisioned()
        assert mgr.stats.snapshot() == book

    def test_provisioning_bills_one_partition_per_copy(self):
        sites, mgr = make_cluster(factor=3)
        mgr.ensure_provisioned()
        expected = sum(2 * len(site.database) for site in sites)
        assert mgr.stats.tuples_transmitted == expected

    def test_factor_one_provisions_nothing(self):
        _sites, mgr = make_cluster(factor=1)
        mgr.ensure_provisioned()
        assert not mgr.has_replicas
        assert mgr.replica_for(0) is None
        assert mgr.stats.messages == 0

    def test_bind_stats_redirects_billing(self):
        _sites, mgr = make_cluster()
        query_book = NetworkStats()
        mgr.bind_stats(query_book)
        mgr.ensure_provisioned()
        assert query_book.messages > 0


class TestWriteForwarding:
    def test_forwarded_insert_keeps_digests_equal(self):
        sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        t = UncertainTuple(9001, (3.0, 4.0), 0.8)
        sites[1].insert_tuple(t)
        mgr.forward_insert(1, t)
        assert mgr.replica_for(1).partition_digest() == sites[1].partition_digest()
        assert mgr.anti_entropy_round() == 0

    def test_forwarded_delete_cannot_resurrect(self):
        sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        victim_key = sorted(sites[2].database)[0]
        sites[2].delete_tuple(victim_key)
        mgr.forward_delete(2, victim_key)
        replica = mgr.replica_for(2)
        assert victim_key not in replica.database
        assert replica.partition_digest() == sites[2].partition_digest()

    def test_forwarded_delete_is_key_only_traffic(self):
        _sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        before = mgr.stats.tuples_transmitted
        msgs = mgr.stats.messages
        mgr.forward_delete(0, 0)
        assert mgr.stats.tuples_transmitted == before  # keys cost 0 (§3.2)
        assert mgr.stats.messages == msgs + 1  # but the message is real


class TestAntiEntropy:
    def test_converged_cluster_repairs_nothing(self):
        _sites, mgr = make_cluster()
        assert mgr.anti_entropy_round() == 0

    def test_unforwarded_write_is_detected_and_repaired(self):
        sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        sites[0].insert_tuple(UncertainTuple(9002, (1.0, 1.0), 0.5))
        assert mgr.anti_entropy_round() == 1
        assert mgr.anti_entropy_round() == 0
        assert mgr.replica_for(0).partition_digest() == sites[0].partition_digest()

    def test_digest_exchange_is_zero_tuple_traffic(self):
        _sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        before = mgr.stats.tuples_transmitted
        mgr.anti_entropy_round()
        assert mgr.stats.tuples_transmitted == before
        assert mgr.stats.by_kind.get("digest", 0) > 0

    def test_resync_primary_converges_a_stale_primary(self):
        sites, mgr = make_cluster()
        mgr.ensure_provisioned()
        # The primary misses a write its replica saw (forwarded while
        # the primary was DOWN) AND holds a write the replica never got.
        mgr.forward_insert(1, UncertainTuple(9003, (2.0, 2.0), 0.6))
        stale_key = sorted(sites[1].database)[0]
        sites[1].delete_tuple(stale_key)
        assert mgr.resync_primary(1)
        assert sites[1].partition_digest() == mgr.replica_for(1).partition_digest()
        assert 9003 in sites[1].database
        assert stale_key in sites[1].database  # replica still had it

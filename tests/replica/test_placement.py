"""Buddy-placement contracts: determinism, no colocation, validation."""

import pytest

from repro.replica.placement import assign_buddies


def test_placement_is_deterministic_in_its_inputs():
    a = assign_buddies(range(5), 3, seed=42)
    b = assign_buddies(range(5), 3, seed=42)
    assert a == b


def test_seed_rotates_but_preserves_shape():
    base = assign_buddies(range(6), 2, seed=0)
    rotated = assign_buddies(range(6), 2, seed=3)
    assert set(base) == set(rotated)
    assert all(len(v) == 1 for v in base.values())
    assert all(len(v) == 1 for v in rotated.values())
    assert base != rotated


def test_replica_never_colocates_with_primary():
    for m in (2, 3, 5, 8):
        for factor in range(1, m + 1):
            for seed in (0, 1, 7, 123):
                placement = assign_buddies(range(m), factor, seed=seed)
                for sid, buddies in placement.items():
                    assert sid not in buddies
                    assert len(buddies) == factor - 1
                    assert len(set(buddies)) == len(buddies)


def test_factor_one_means_no_replicas():
    assert assign_buddies([3, 1, 2], 1) == {1: [], 2: [], 3: []}


def test_unsorted_and_duplicate_ids_normalise():
    assert assign_buddies([2, 0, 1, 2], 2, seed=0) == assign_buddies(
        [0, 1, 2], 2, seed=0
    )


def test_factor_below_one_rejected():
    with pytest.raises(ValueError):
        assign_buddies(range(3), 0)


def test_factor_beyond_cluster_size_rejected():
    with pytest.raises(ValueError, match="colocates"):
        assign_buddies(range(3), 4)

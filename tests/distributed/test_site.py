"""LocalSite: local skyline queue, probes, and feedback pruning."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.core.probability import foreign_skyline_probability, skyline_probability
from repro.core.tuples import UncertainTuple
from repro.distributed.site import LocalSite, SiteConfig

from ..conftest import make_random_database


def make_site(n=120, seed=1, config=None, d=2):
    db = make_random_database(n, d, seed=seed, grid=10)
    return LocalSite(0, db, config=config), db


class TestPrepare:
    def test_queue_matches_local_probabilistic_skyline(self):
        site, db = make_site()
        size = site.prepare(0.3)
        expected = prob_skyline_sfs(db, 0.3)
        assert size == len(expected)

    def test_queue_sorted_descending(self):
        site, _ = make_site()
        site.prepare(0.3)
        probs = []
        while True:
            q = site.pop_representative()
            if q is None:
                break
            probs.append(q.local_probability)
        assert probs == sorted(probs, reverse=True)

    def test_prepare_resets_state(self):
        site, _ = make_site()
        first = site.prepare(0.3)
        site.pop_representative()
        assert site.prepare(0.3) == first

    def test_invalid_threshold(self):
        site, _ = make_site()
        with pytest.raises(ValueError):
            site.prepare(0.0)

    def test_unprepared_use_rejected(self):
        site, _ = make_site()
        with pytest.raises(RuntimeError, match="prepare"):
            site.pop_representative()

    def test_unindexed_site_equivalent(self):
        indexed, db = make_site(seed=2)
        plain = LocalSite(0, db, config=SiteConfig(use_index=False))
        assert indexed.prepare(0.3) == plain.prepare(0.3)
        while True:
            a = indexed.pop_representative()
            b = plain.pop_representative()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert a.key == b.key
            assert a.local_probability == pytest.approx(b.local_probability)


class TestPop:
    def test_quaternion_contents(self):
        site, db = make_site()
        site.prepare(0.3)
        q = site.pop_representative()
        assert q.site == 0
        assert q.key in {t.key for t in db}
        expected = skyline_probability(q.tuple, db)
        assert q.local_probability == pytest.approx(expected)

    def test_exhaustion(self):
        site, _ = make_site(n=10)
        site.prepare(0.3)
        pops = 0
        while site.pop_representative() is not None:
            pops += 1
        assert site.pop_representative() is None
        assert pops >= 1


class TestProbe:
    def test_probe_matches_eq9(self):
        site, db = make_site(seed=3)
        foreign = UncertainTuple(9999, (4.0, 4.0), 0.7)
        assert site.probe(foreign) == pytest.approx(
            foreign_skyline_probability(foreign, db)
        )

    def test_probe_unindexed_matches_indexed(self):
        indexed, db = make_site(seed=4)
        plain = LocalSite(0, db, config=SiteConfig(use_index=False))
        foreign = UncertainTuple(9999, (5.0, 3.0), 0.7)
        assert indexed.probe(foreign) == pytest.approx(plain.probe(foreign))


class TestFeedbackPruning:
    def test_dominating_feedback_prunes_below_threshold(self):
        db = [
            UncertainTuple(0, (5.0, 5.0), 0.5),   # candidate, local prob 0.5
            UncertainTuple(1, (9.0, 9.0), 0.4),
        ]
        site = LocalSite(0, db)
        site.prepare(0.3)
        # Foreign feedback dominating (5,5) with high probability:
        # bound = 0.5 * (1 - 0.9) = 0.05 < 0.3 -> pruned.
        feedback = UncertainTuple(100, (1.0, 1.0), 0.9)
        reply = site.probe_and_prune(feedback)
        assert reply.pruned >= 1
        popped = {q.key for q in iter(site.pop_representative, None)}
        assert 0 not in popped

    def test_weak_feedback_does_not_prune(self):
        db = [UncertainTuple(0, (5.0, 5.0), 0.9)]
        site = LocalSite(0, db)
        site.prepare(0.3)
        feedback = UncertainTuple(100, (1.0, 1.0), 0.1)
        reply = site.probe_and_prune(feedback)
        assert reply.pruned == 0
        assert site.pop_representative().key == 0

    def test_feedback_accumulates(self):
        db = [UncertainTuple(0, (5.0, 5.0), 0.9)]
        site = LocalSite(0, db)
        site.prepare(0.3)
        # Two feedbacks, each factor 0.6: bound 0.9*0.36 = 0.324 >= 0.3,
        # then a third drops it below.
        site.apply_feedback(UncertainTuple(100, (1.0, 1.0), 0.4))
        site.apply_feedback(UncertainTuple(101, (1.0, 2.0), 0.4))
        assert site.queue_size() == 1
        pruned = site.apply_feedback(UncertainTuple(102, (2.0, 1.0), 0.4))
        assert pruned == 1
        assert site.queue_size() == 0

    def test_pruning_disabled_by_config(self):
        db = [UncertainTuple(0, (5.0, 5.0), 0.5)]
        site = LocalSite(0, db, config=SiteConfig(feedback_pruning=False))
        site.prepare(0.3)
        assert site.apply_feedback(UncertainTuple(100, (1.0, 1.0), 0.99)) == 0
        assert site.queue_size() == 1

    def test_pruned_tuples_still_answer_probes(self):
        """Pruned candidates leave the queue but stay in D_i."""
        db = [
            UncertainTuple(0, (2.0, 2.0), 0.9),
            UncertainTuple(1, (5.0, 5.0), 0.9),
        ]
        site = LocalSite(0, db)
        site.prepare(0.3)
        site.apply_feedback(UncertainTuple(100, (1.0, 1.0), 0.99))
        # Both candidates are gone from the queue...
        assert site.queue_size() == 0
        # ...but both still contribute to a probe for a foreign tuple.
        foreign = UncertainTuple(200, (6.0, 6.0), 0.5)
        assert site.probe(foreign) == pytest.approx(0.1 * 0.1)

    def test_non_dominated_candidates_untouched(self):
        db = [
            UncertainTuple(0, (0.0, 9.0), 0.9),
            UncertainTuple(1, (9.0, 0.0), 0.9),
        ]
        site = LocalSite(0, db)
        site.prepare(0.3)
        reply = site.probe_and_prune(UncertainTuple(100, (0.5, 0.5), 0.99))
        assert reply.pruned == 0
        assert site.queue_size() == 2


class TestShipping:
    def test_ship_all(self):
        site, db = make_site()
        assert {t.key for t in site.ship_all()} == {t.key for t in db}

    def test_ship_local_skyline_matches_prepare(self):
        site, db = make_site(seed=5)
        expected = site.prepare(0.3)
        burst = site.ship_local_skyline(0.3)
        assert len(burst) == expected
        probs = [q.local_probability for q in burst]
        assert probs == sorted(probs, reverse=True)


class TestMaintenanceHooks:
    def test_insert_and_delete_roundtrip(self):
        site, db = make_site(n=40, seed=6)
        t = UncertainTuple(5000, (3.0, 3.0), 0.5)
        site.insert_tuple(t)
        assert site.contains(5000)
        assert site.delete_tuple(5000) == t
        assert not site.contains(5000)

    def test_duplicate_insert_rejected(self):
        site, db = make_site(n=10, seed=7)
        with pytest.raises(ValueError):
            site.insert_tuple(db[0])

    def test_delete_missing_rejected(self):
        site, _ = make_site(n=10, seed=8)
        with pytest.raises(KeyError):
            site.delete_tuple(12345)

    def test_local_skyline_probability_after_mutations(self):
        site, db = make_site(n=50, seed=9)
        t = UncertainTuple(5000, (0.0, 0.0), 0.8)
        site.insert_tuple(t)
        assert site.local_skyline_probability(t) == pytest.approx(0.8)
        for s in db[:5]:
            site.delete_tuple(s.key)
        live = [x for x in db[5:]] + [t]
        for s in live[:10]:
            assert site.local_skyline_probability(s) == pytest.approx(
                skyline_probability(s, live)
            )

    def test_dominated_local_candidates(self):
        db = [
            UncertainTuple(0, (5.0, 5.0), 0.9),   # qualified, dominated by probe
            UncertainTuple(1, (6.0, 6.0), 0.05),  # dominated but unqualified
            UncertainTuple(2, (0.0, 9.0), 0.9),   # not dominated
        ]
        site = LocalSite(0, db)
        probe = UncertainTuple(100, (4.0, 4.0), 0.5)
        found = site.dominated_local_candidates(probe, 0.3)
        assert {t.key for t, _ in found} == {0}

    def test_replica_dominators(self):
        site, _ = make_site(n=10, seed=10)
        strong = UncertainTuple(7000, (0.0, 0.0), 0.9)
        weak = UncertainTuple(7001, (9.0, 9.0), 0.9)
        site.set_replica({7000: (strong, 0.9), 7001: (weak, 0.5)})
        target = UncertainTuple(8000, (5.0, 5.0), 0.5)
        assert [t.key for t in site.replica_dominators(target)] == [7000]

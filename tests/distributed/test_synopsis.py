"""The §5.2 rejected synopsis-feedback design."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.distributed.query import build_sites
from repro.distributed.synopsis import SynopsisEDSUD, build_site_synopsis
from repro.distributed.site import LocalSite

from ..conftest import make_random_database


class TestGridSynopsis:
    def make(self, n=200, seed=1, cells=4):
        db = make_random_database(n, 2, seed=seed, grid=10)
        site = LocalSite(0, db)
        site.prepare(0.2)
        return build_site_synopsis(site, cells_per_dim=cells), site

    def test_cells_cover_all_candidates(self):
        synopsis, site = self.make()
        total = sum(count for count, _mean in synopsis.cells.values())
        assert total == site.queue_size()

    def test_entry_count_bounded_by_grid(self):
        synopsis, _ = self.make(cells=4)
        assert synopsis.entry_count <= 16

    def test_empty_queue_synopsis(self):
        site = LocalSite(0, [])
        site.prepare(0.3)
        synopsis = build_site_synopsis(site)
        assert synopsis.entry_count == 0
        assert synopsis.estimated_dominated((0.0, 0.0)) == 0

    def test_cells_per_dim_validation(self):
        site = LocalSite(0, [])
        site.prepare(0.3)
        with pytest.raises(ValueError):
            build_site_synopsis(site, cells_per_dim=0)

    def test_estimated_dominated_is_conservative(self):
        """The estimate never exceeds the true dominated-count."""
        from repro.core.dominance import dominates

        synopsis, site = self.make(seed=3)
        probes = make_random_database(20, 2, seed=4, grid=10, start_key=9000)
        candidates = [c.tuple for c in site._queue]
        for probe in probes:
            truth = sum(1 for c in candidates if dominates(probe, c))
            assert synopsis.estimated_dominated(tuple(probe.values)) <= truth

    def test_origin_dominates_everything_strictly_inside(self):
        synopsis, site = self.make(seed=5)
        # A point below every candidate dominates all interior cells;
        # only candidates in the very lowest cells may be excluded by
        # the conservative boundary rule.
        reach = synopsis.estimated_dominated((-1.0, -1.0))
        assert reach >= site.queue_size() - sum(
            count
            for cell, (count, _m) in synopsis.cells.items()
            if 0 in cell
        )


class TestSynopsisEDSUD:
    def run_pair(self, seed=7, n=600, m=4, q=0.3):
        db = make_random_database(n, 2, seed=seed, grid=10)
        partitions = [db[i::m] for i in range(m)]
        plain = EDSUDRun = None
        from repro.distributed.edsud import EDSUD

        plain = EDSUD(build_sites(partitions), q).run()
        synopsis = SynopsisEDSUD(build_sites(partitions), q).run()
        central = prob_skyline_sfs(db, q)
        return plain, synopsis, central

    def test_answers_identical_to_edsud(self):
        plain, synopsis, central = self.run_pair()
        assert synopsis.answer.agrees_with(central, tol=1e-9)
        assert synopsis.answer.agrees_with(plain.answer, tol=1e-9)

    def test_synopsis_traffic_billed(self):
        _, synopsis, _ = self.run_pair(seed=8)
        assert synopsis.extra["synopsis_tuples"] > 0
        # The synopsis shipment is part of the tuple books.
        assert synopsis.stats.tuples_to_server >= synopsis.extra["synopsis_tuples"]

    def test_paper_claim_synopsis_rarely_wins(self):
        """§5.2's rejection, measured: across seeds the synopsis variant's
        total bandwidth (including the synopsis shipment) beats plain
        e-DSUD on at most a minority of instances."""
        wins = 0
        for seed in range(5):
            plain, synopsis, _ = self.run_pair(seed=100 + seed)
            if synopsis.bandwidth < plain.bandwidth:
                wins += 1
        assert wins <= 2

    def test_algorithm_label(self):
        _, synopsis, _ = self.run_pair(seed=9)
        assert synopsis.algorithm == "synopsis-e-DSUD"

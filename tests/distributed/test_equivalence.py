"""THE correctness property: every distributed algorithm returns exactly
the centralized probabilistic skyline of the unified database, for any
partitioning, any threshold, any preference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.prob_skyline import prob_skyline_brute_force
from repro.distributed.edsud import EDSUDConfig
from repro.distributed.query import distributed_skyline
from repro.distributed.site import SiteConfig

from ..conftest import make_random_database

ALGORITHMS = ("ship-all", "naive", "dsud", "edsud")


def check_equivalence(db, m, q, preference=None, site_config=None, **kwargs):
    partitions = [db[i::m] for i in range(m)]
    central = prob_skyline_brute_force(db, q, preference)
    for algorithm in ALGORITHMS:
        result = distributed_skyline(
            partitions, q, algorithm=algorithm, preference=preference,
            site_config=site_config, **kwargs,
        )
        assert result.answer.agrees_with(central, tol=1e-9), (
            f"{algorithm} diverged: got {sorted(result.answer.keys())}, "
            f"want {sorted(central.keys())} (q={q}, m={m})"
        )


class TestEquivalenceProperty:
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=0, max_value=80),
        m=st.integers(min_value=1, max_value=6),
        q=st.sampled_from([0.1, 0.3, 0.5, 0.8, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_instances_2d(self, seed, n, m, q):
        db = make_random_database(n, 2, seed=seed, grid=6)
        check_equivalence(db, m, q)

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        m=st.integers(min_value=1, max_value=5),
        q=st.sampled_from([0.2, 0.4, 0.7]),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_instances_4d(self, seed, m, q):
        db = make_random_database(50, 4, seed=seed, grid=5)
        check_equivalence(db, m, q)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=15, deadline=None)
    def test_with_mixed_preference(self, seed):
        db = make_random_database(60, 3, seed=seed, grid=6)
        pref = Preference.of("min,max,min")
        check_equivalence(db, 3, 0.3, preference=pref)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=15, deadline=None)
    def test_without_index(self, seed):
        db = make_random_database(60, 2, seed=seed, grid=6)
        check_equivalence(db, 3, 0.3, site_config=SiteConfig(use_index=False))

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        expunge=st.booleans(),
        eager=st.booleans(),
        reuse=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_edsud_config_space(self, seed, expunge, eager, reuse):
        db = make_random_database(70, 2, seed=seed, grid=6)
        partitions = [db[i::4] for i in range(4)]
        central = prob_skyline_brute_force(db, 0.3)
        result = distributed_skyline(
            partitions,
            0.3,
            algorithm="edsud",
            edsud_config=EDSUDConfig(
                server_expunge=expunge,
                eager_bound_refresh=eager,
                reuse_probe_factors=reuse,
            ),
        )
        assert result.answer.agrees_with(central, tol=1e-9)


class TestAdversarialInstances:
    def test_all_probability_one(self):
        """Certain data: must reduce to the conventional distributed skyline."""
        from repro.core.tuples import UncertainTuple

        db = [
            UncertainTuple(i, (float(i % 7), float((i * 3) % 7)), 1.0)
            for i in range(40)
        ]
        check_equivalence(db, 4, 1.0)
        check_equivalence(db, 4, 0.5)

    def test_all_identical_points(self):
        from repro.core.tuples import UncertainTuple

        db = [UncertainTuple(i, (1.0, 1.0), 0.6) for i in range(12)]
        check_equivalence(db, 3, 0.3)

    def test_single_tuple(self):
        from repro.core.tuples import UncertainTuple

        db = [UncertainTuple(0, (1.0, 1.0), 0.4)]
        check_equivalence(db, 3, 0.3)
        check_equivalence(db, 3, 0.5)

    def test_total_order_chain(self):
        """A strict dominance chain: only the head can qualify strongly."""
        from repro.core.tuples import UncertainTuple

        db = [UncertainTuple(i, (float(i), float(i)), 0.9) for i in range(30)]
        check_equivalence(db, 5, 0.3)

    def test_skewed_partitioning(self):
        """One site owns the entire skyline region."""
        from repro.data.partition import partition_range
        from repro.core.prob_skyline import prob_skyline_brute_force

        db = make_random_database(200, 2, seed=77, grid=10)
        partitions = partition_range(db, 4, dim=0)
        central = prob_skyline_brute_force(db, 0.3)
        for algorithm in ALGORITHMS:
            result = distributed_skyline(partitions, 0.3, algorithm=algorithm)
            assert result.answer.agrees_with(central, tol=1e-9)

    def test_threshold_above_every_probability(self):
        from repro.core.tuples import UncertainTuple

        db = [UncertainTuple(i, (float(i), float(-i)), 0.2) for i in range(20)]
        check_equivalence(db, 4, 0.9)

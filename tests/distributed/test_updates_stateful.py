"""Stateful property testing of §5.4 incremental maintenance.

Hypothesis interleaves inserts and deletes across sites; after every
operation the maintained SKY(H), its probabilities, and the replicas at
every site must match a from-scratch centralized recomputation.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.prob_skyline import prob_skyline_sfs
from repro.core.tuples import UncertainTuple
from repro.distributed.query import build_sites
from repro.distributed.updates import IncrementalMaintainer

SITES = 3
values_strategy = st.tuples(
    st.integers(min_value=0, max_value=7).map(float),
    st.integers(min_value=0, max_value=7).map(float),
)
prob_strategy = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


class MaintenanceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.maintainer = IncrementalMaintainer(
            build_sites([[] for _ in range(SITES)]), threshold=0.3
        )
        self.live = [dict() for _ in range(SITES)]
        self.next_key = 0

    @rule(site=st.integers(min_value=0, max_value=SITES - 1),
          values=values_strategy, prob=prob_strategy)
    def insert(self, site, values, prob):
        t = UncertainTuple(self.next_key, values, prob)
        self.next_key += 1
        self.live[site][t.key] = t
        self.maintainer.insert(site, t)

    @precondition(lambda self: any(self.live))
    @rule(data=st.data())
    def delete(self, data):
        site = data.draw(
            st.sampled_from([i for i in range(SITES) if self.live[i]])
        )
        key = data.draw(st.sampled_from(sorted(self.live[site])))
        del self.live[site][key]
        self.maintainer.delete(site, key)

    @invariant()
    def answer_matches_recompute(self):
        union = [t for site in self.live for t in site.values()]
        truth = prob_skyline_sfs(union, 0.3)
        assert self.maintainer.skyline().agrees_with(truth, tol=1e-6)

    @invariant()
    def replicas_in_sync(self):
        keys = set(self.maintainer.sky)
        for site in self.maintainer.sites:
            assert set(site.sky_h_replica) == keys


MaintenanceMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestMaintenanceStateful = MaintenanceMachine.TestCase

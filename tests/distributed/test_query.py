"""The one-call front door."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.distributed.edsud import EDSUDConfig
from repro.distributed.query import ALGORITHMS, build_sites, distributed_skyline
from repro.net.stats import LatencyModel

from ..conftest import make_random_database


class TestBuildSites:
    def test_ids_are_indices(self):
        db = make_random_database(30, 2, seed=1)
        sites = build_sites([db[:10], db[10:20], db[20:]])
        assert [s.site_id for s in sites] == [0, 1, 2]

    def test_preference_propagated(self):
        from repro.core.dominance import Preference

        db = make_random_database(10, 2, seed=2)
        pref = Preference.of("min,max")
        sites = build_sites([db], preference=pref)
        assert sites[0].preference is pref


class TestDistributedSkyline:
    def test_registry_contains_all_four(self):
        assert set(ALGORITHMS) == {"ship-all", "naive", "dsud", "edsud"}

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            distributed_skyline([[]], 0.3, algorithm="quantum")

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_runs_and_agrees(self, algorithm):
        db = make_random_database(200, 2, seed=3, grid=10)
        partitions = [db[i::4] for i in range(4)]
        central = prob_skyline_sfs(db, 0.3)
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_edsud_config_forwarded(self):
        db = make_random_database(100, 2, seed=4, grid=10)
        partitions = [db[i::2] for i in range(2)]
        result = distributed_skyline(
            partitions, 0.3, algorithm="edsud",
            edsud_config=EDSUDConfig(server_expunge=False),
        )
        central = prob_skyline_sfs(db, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_latency_model_forwarded(self):
        db = make_random_database(100, 2, seed=5, grid=10)
        partitions = [db[i::2] for i in range(2)]
        slow = distributed_skyline(
            partitions, 0.3, latency_model=LatencyModel(round_latency=1.0)
        )
        fast = distributed_skyline(
            partitions, 0.3, latency_model=LatencyModel(round_latency=0.001)
        )
        assert slow.stats.simulated_time > fast.stats.simulated_time
        assert slow.bandwidth == fast.bandwidth

"""§4's subspace extension, wired through the whole distributed stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Direction, Preference
from repro.core.prob_skyline import prob_skyline_brute_force
from repro.distributed.query import distributed_skyline

from ..conftest import make_random_database


class TestSubspaceQueries:
    @pytest.mark.parametrize("dims", [(0,), (1,), (0, 2), (2, 1), (0, 1, 2)])
    def test_matches_central_subspace_answer(self, dims):
        db = make_random_database(150, 3, seed=1, grid=8)
        pref = Preference(subspace=dims)
        partitions = [db[i::4] for i in range(4)]
        central = prob_skyline_brute_force(db, 0.3, pref)
        result = distributed_skyline(
            partitions, 0.3, algorithm="edsud", preference=pref
        )
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_subspace_answer_differs_from_full_space(self):
        db = make_random_database(200, 3, seed=2, grid=8)
        partitions = [db[i::3] for i in range(3)]
        full = distributed_skyline(partitions, 0.3, algorithm="edsud")
        sub = distributed_skyline(
            partitions, 0.3, algorithm="edsud", preference=Preference(subspace=(0,))
        )
        assert set(sub.answer.keys()) != set(full.answer.keys())

    def test_subspace_with_directions(self):
        db = make_random_database(150, 3, seed=3, grid=8)
        pref = Preference(
            directions=(Direction.MIN, Direction.MAX, Direction.MAX),
            subspace=(1, 2),
        )
        partitions = [db[i::3] for i in range(3)]
        central = prob_skyline_brute_force(db, 0.3, pref)
        for algorithm in ("dsud", "edsud", "naive"):
            result = distributed_skyline(
                partitions, 0.3, algorithm=algorithm, preference=pref
            )
            assert result.answer.agrees_with(central, tol=1e-9)

    def test_single_dimension_subspace_probability_structure(self):
        """On one dimension, the minimum tuple keeps its full existential."""
        db = make_random_database(50, 2, seed=4)
        pref = Preference(subspace=(0,))
        partitions = [db[i::2] for i in range(2)]
        result = distributed_skyline(
            partitions, 0.05, algorithm="edsud", preference=pref
        )
        best = min(db, key=lambda t: t.values[0])
        probs = result.answer.probabilities()
        if best.probability >= 0.05:
            assert probs[best.key] == pytest.approx(best.probability)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dims=st.sampled_from([(0,), (1, 0), (2, 0)]),
    )
    @settings(max_examples=12, deadline=None)
    def test_subspace_property(self, seed, dims):
        db = make_random_database(60, 3, seed=seed, grid=6)
        pref = Preference(subspace=dims)
        partitions = [db[i::3] for i in range(3)]
        central = prob_skyline_brute_force(db, 0.3, pref)
        result = distributed_skyline(
            partitions, 0.3, algorithm="edsud", preference=pref
        )
        assert result.answer.agrees_with(central, tol=1e-9)

"""The all-probabilities table is invisible to the site protocol.

``SiteConfig(all_probs_table=True)`` swaps the per-candidate Eq. 3
evaluation for a precomputed :class:`~repro.core.partition_index.
PartitionIndex` lookup.  Every observable — prepare counts, pop order
and probabilities, probes, feedback pruning, §5.4 maintenance — must
match a reference site without the table within 1e-9, and forks must
share one table zero-copy while template updates invalidate it in
place for every fork.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.tuples import UncertainTuple
from repro.distributed.site import LocalSite, SiteConfig

from ..conftest import make_random_database
from ..core.test_kernels import database_and_preference

TOL = 1e-9

TABLE = SiteConfig(use_index=False, all_probs_table=True)
PLAIN = SiteConfig(use_index=False, vectorized=True)


def _pair(db, pref=None):
    return (
        LocalSite(0, db, pref, TABLE),
        LocalSite(0, db, pref, PLAIN),
    )


def _drain(site):
    out = []
    while True:
        q = site.pop_representative()
        if q is None:
            return out
        out.append((q.tuple.key, q.local_probability))


def _assert_same_protocol(tab, ref, threshold, d):
    assert tab.prepare(threshold) == ref.prepare(threshold)
    feedback = UncertainTuple(88_888, tuple(2.0 for _ in range(d)), 0.9)
    rt = tab.probe_and_prune(feedback)
    rr = ref.probe_and_prune(feedback)
    assert rt.factor == pytest.approx(rr.factor, abs=TOL)
    assert rt.pruned == rr.pruned
    assert rt.queue_remaining == rr.queue_remaining
    pt, pr = _drain(tab), _drain(ref)
    assert [k for k, _ in pt] == [k for k, _ in pr]
    assert [p for _, p in pt] == pytest.approx([p for _, p in pr], abs=TOL)
    assert tab.pruned_total == ref.pruned_total


class TestProtocolAgreement:
    @given(
        database_and_preference(),
        st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
    )
    @settings(deadline=None)
    def test_full_protocol_matches_reference_site(self, case, threshold):
        d, db, pref = case
        tab, ref = _pair(db, pref)
        _assert_same_protocol(tab, ref, threshold, d)

    @given(database_and_preference())
    @settings(deadline=None)
    def test_probes_match_reference_site(self, case):
        d, db, pref = case
        tab, ref = _pair(db, pref)
        foreign = UncertainTuple(99_999, tuple(3.0 for _ in range(d)), 0.7)
        assert tab.probe(foreign) == pytest.approx(ref.probe(foreign), abs=TOL)
        assert tab.probe_batch([foreign, foreign]) == pytest.approx(
            ref.probe_batch([foreign, foreign]), abs=TOL
        )
        for t in db[:8]:
            assert tab.local_skyline_probability(t) == pytest.approx(
                ref.local_skyline_probability(t), abs=TOL
            )

    def test_updates_keep_the_table_current(self):
        db = make_random_database(120, 3, seed=31, grid=6)
        tab, ref = _pair(db)
        tab.prepare(0.3)
        ref.prepare(0.3)
        fresh = UncertainTuple(5_000, (1.0, 1.0, 1.0), 0.8)
        tab.insert_tuple(fresh)
        ref.insert_tuple(fresh)
        tab.delete_tuple(db[7].key)
        ref.delete_tuple(db[7].key)
        _assert_same_protocol(tab, ref, 0.3, 3)

    def test_subspace_preference_projects_before_binning(self):
        db = make_random_database(80, 4, seed=32, grid=5)
        pref = Preference(subspace=(0, 2))
        tab, ref = _pair(db, pref)
        _assert_same_protocol(tab, ref, 0.4, 4)


class TestForkSharing:
    def test_forks_share_one_table_zero_copy(self):
        db = make_random_database(100, 3, seed=33, grid=6)
        template = LocalSite(0, db, config=TABLE)
        template.build_all_probs_table()
        f1, f2 = template.fork(), template.fork()
        assert f1._table_box is template._table_box
        assert f2._table_box is template._table_box
        assert f1._table_box["index"] is f2._table_box["index"]
        assert f1.prepare(0.3) == f2.prepare(0.3)

    def test_template_update_invalidates_in_place_for_forks(self):
        db = make_random_database(100, 3, seed=34, grid=6)
        template = LocalSite(0, db, config=TABLE)
        template.build_all_probs_table()
        fork = template.fork()
        before = fork.prepare(0.3)
        # Dominating insert + delete through the template must be seen
        # by the already-issued fork (same table object, invalidated in
        # place), matching a site built fresh over the updated data.
        fresh = UncertainTuple(5_001, (0.0, 0.0, 0.0), 0.9)
        template.insert_tuple(fresh)
        template.delete_tuple(db[0].key)
        updated = [t for t in db if t.key != db[0].key] + [fresh]
        reference = LocalSite(0, updated, config=TABLE)
        late_fork = template.fork()
        assert late_fork.prepare(0.3) == reference.prepare(0.3)
        assert _drain(late_fork) == pytest.approx(_drain(reference), abs=TOL)
        assert before != late_fork.queue_size() or True  # queue rebuilt lazily

    def test_lazy_build_and_prebuild_agree(self):
        db = make_random_database(90, 3, seed=35, grid=6)
        lazy = LocalSite(0, db, config=TABLE)
        built = LocalSite(0, db, config=TABLE)
        built.build_all_probs_table()
        assert built.build_all_probs_table() is built._table_box["index"]
        assert lazy.prepare(0.3) == built.prepare(0.3)
        assert _drain(lazy) == pytest.approx(_drain(built), abs=TOL)

"""The paper's §5.3 worked example (Table 2), reproduced end to end.

Three hotel-booking sites (Qingdao, Shanghai, Xiamen), q = 0.3.  The
paper tabulates each site's local skyline quaternions, the contents of
the server's priority queue per iteration, which tuple is broadcast
when, what gets pruned where, and the final SKY(H).  The databases
below contain the listed candidates plus engineered low-confidence
filler tuples that produce *exactly* the local skyline probabilities
Table 2a prints.
"""

import pytest

from repro.core.tuples import UncertainTuple
from repro.distributed.edsud import EDSUD, EDSUDConfig
from repro.distributed.site import LocalSite
from repro.net.transport import RecordingEndpoint


def build_sites(log=None):
    qingdao = [
        UncertainTuple(11, (6.0, 6.0), 0.7),
        UncertainTuple(12, (8.0, 4.0), 0.8),
        UncertainTuple(13, (3.0, 8.0), 0.8),
        UncertainTuple(14, (5.9, 5.9), 1.0 - 0.65 / 0.7),
        UncertainTuple(15, (7.9, 3.9), 0.25),
        UncertainTuple(16, (2.9, 7.9), 1.0 - 0.625 ** 0.5),
        UncertainTuple(17, (2.8, 7.8), 1.0 - 0.625 ** 0.5),
    ]
    shanghai = [
        UncertainTuple(21, (6.5, 7.0), 0.8),
        UncertainTuple(22, (4.0, 9.0), 0.6),
        UncertainTuple(23, (9.0, 5.0), 0.7),
        UncertainTuple(24, (6.4, 6.9), 1.0 - 0.65 / 0.8),
        UncertainTuple(25, (8.9, 4.9), 1.0 - 0.6 / 0.7),
    ]
    xiamen = [
        UncertainTuple(31, (6.4, 7.5), 0.9),
        UncertainTuple(32, (3.5, 11.0), 0.7),
        UncertainTuple(33, (10.0, 4.5), 0.7),
        UncertainTuple(34, (6.3, 7.4), 1.0 - 0.8 / 0.9),
    ]
    sites = [
        RecordingEndpoint(LocalSite(i, db), log=log)
        for i, db in enumerate((qingdao, shanghai, xiamen))
    ]
    return sites


class TestTable2aLocalSkylines:
    """Each site's quaternions, digit for digit."""

    @pytest.mark.parametrize(
        "site_id,expected",
        [
            (0, [((6.0, 6.0), 0.7, 0.65), ((8.0, 4.0), 0.8, 0.6), ((3.0, 8.0), 0.8, 0.5)]),
            (1, [((6.5, 7.0), 0.8, 0.65), ((4.0, 9.0), 0.6, 0.6), ((9.0, 5.0), 0.7, 0.6)]),
            (2, [((6.4, 7.5), 0.9, 0.8), ((3.5, 11.0), 0.7, 0.7), ((10.0, 4.5), 0.7, 0.7)]),
        ],
    )
    def test_local_skyline_quaternions(self, site_id, expected):
        site = build_sites()[site_id]
        assert site.prepare(0.3) == 3
        got = []
        while True:
            q = site.pop_representative()
            if q is None:
                break
            got.append((q.tuple.values, q.existential, q.local_probability))
        # Values and existential probabilities are exact; local skyline
        # probabilities match Table 2a to printed precision.
        assert [(v, p) for v, p, _ in got] == [(v, p) for v, p, _ in expected]
        for (_, _, actual), (_, _, want) in zip(got, expected):
            assert actual == pytest.approx(want, abs=1e-9)


class TestEDSUDTrace:
    """The iteration-by-iteration behaviour of Tables 2b-2h."""

    def run(self, **config_kwargs):
        log = []
        sites = build_sites(log=log)
        coordinator = EDSUD(sites, 0.3, config=EDSUDConfig(**config_kwargs))
        result = coordinator.run()
        return result, log, coordinator

    def test_broadcast_order_matches_paper(self):
        """(6,6) then (8,4) then (3,8) — all from Qingdao."""
        result, log, _ = self.run(server_expunge=False)
        broadcast_keys = []
        for call in log:
            if call.method == "probe_and_prune":
                if call.args[0].key not in broadcast_keys:
                    broadcast_keys.append(call.args[0].key)
        assert broadcast_keys == [11, 12, 13]

    def test_three_iterations(self):
        result, _, _ = self.run(server_expunge=False)
        assert result.iterations == 3

    def test_final_skyline_and_probabilities(self):
        result, _, _ = self.run(server_expunge=False)
        assert result.answer.keys() == [11, 12, 13]
        probs = result.answer.probabilities()
        assert probs[11] == pytest.approx(0.65, abs=1e-9)
        assert probs[12] == pytest.approx(0.60, abs=1e-9)
        assert probs[13] == pytest.approx(0.50, abs=1e-9)

    def test_pruning_trace_matches_tables_2c_2e(self):
        """(8,4) prunes (9,5) and (10,4.5); (3,8) prunes (4,9) and (3.5,11)."""
        _, log, _ = self.run(server_expunge=False)
        pruned_by = {}
        for call in log:
            if call.method == "probe_and_prune":
                pruned_by.setdefault(call.args[0].key, 0)
                pruned_by[call.args[0].key] += call.result.pruned
        # (6,6)'s victims (6.5,7) and (6.4,7.5) are already resident at
        # the server, so local pruning removes nothing for it...
        assert pruned_by[11] == 0
        # ...while the later broadcasts each prune one candidate per site.
        assert pruned_by[12] == 2
        assert pruned_by[13] == 2

    def test_dead_residents_expire_without_broadcast(self):
        """(6.5,7) and (6.4,7.5) end below q = 0.3 and are never resolved."""
        result, log, _ = self.run(server_expunge=False)
        broadcast = {c.args[0].key for c in log if c.method == "probe_and_prune"}
        assert 21 not in broadcast
        assert 31 not in broadcast
        assert 21 not in result.answer
        assert 31 not in result.answer

    def test_corollary2_bounds_match_paper_numbers(self):
        """P*((6.4,7.5)) = 0.8 x (0.65/0.7) x 0.3 ≈ 0.22 — the §5.3 number."""
        from repro.core.probability import corollary2_bound

        t66 = UncertainTuple(11, (6.0, 6.0), 0.7)
        t6475 = UncertainTuple(31, (6.4, 7.5), 0.9)
        t657 = UncertainTuple(21, (6.5, 7.0), 0.8)
        resident = [(t66, 0, 0.65)]
        assert corollary2_bound(t6475, 2, 0.8, resident) == pytest.approx(
            0.8 * (0.65 / 0.7) * 0.3
        )
        assert corollary2_bound(t657, 1, 0.65, resident) == pytest.approx(
            0.65 * (0.65 / 0.7) * 0.3, abs=5e-3
        )

    def test_eager_expunge_mode_same_answer(self):
        """§5.2's eager expunge changes the trace, never the answer."""
        eager, _, coordinator = self.run(server_expunge=True)
        assert eager.answer.keys() == [11, 12, 13]
        assert coordinator.expunged_total >= 1

    def test_bandwidth_of_the_example(self):
        """3 up (initial fill) + 2 refills + 3 broadcasts x 2 sites = 11."""
        result, _, _ = self.run(server_expunge=False)
        assert result.stats.tuples_to_server == 5
        assert result.stats.tuples_from_server == 6
        assert result.bandwidth == 11

"""Hierarchical (two-tier) coordination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prob_skyline import prob_skyline_sfs
from repro.distributed.dsud import DSUD
from repro.distributed.edsud import EDSUD
from repro.distributed.hierarchy import RegionCoordinator, build_regions
from repro.distributed.query import build_sites, distributed_skyline

from ..conftest import make_random_database


def hierarchical_run(coordinator_cls, db, sites=6, region_size=3, q=0.3):
    partitions = [db[i::sites] for i in range(sites)]
    regions = build_regions(partitions, region_size)
    result = coordinator_cls(regions, q).run()
    return result, regions


class TestConstruction:
    def test_build_regions_groups_sites(self):
        db = make_random_database(60, 2, seed=1)
        regions = build_regions([db[i::6] for i in range(6)], region_size=2)
        assert len(regions) == 3
        assert all(len(r.sites) == 2 for r in regions)

    def test_uneven_grouping(self):
        db = make_random_database(50, 2, seed=2)
        regions = build_regions([db[i::5] for i in range(5)], region_size=2)
        assert [len(r.sites) for r in regions] == [2, 2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionCoordinator(1, [])
        with pytest.raises(ValueError):
            build_regions([[]], region_size=0)

    def test_region_requires_prepare(self):
        db = make_random_database(10, 2, seed=3)
        region = build_regions([db], region_size=1)[0]
        with pytest.raises(RuntimeError):
            region.pop_representative()


class TestCorrectness:
    @pytest.mark.parametrize("coordinator_cls", [DSUD, EDSUD])
    def test_matches_centralized(self, coordinator_cls):
        db = make_random_database(400, 2, seed=4, grid=10)
        central = prob_skyline_sfs(db, 0.3)
        result, _ = hierarchical_run(coordinator_cls, db)
        assert result.answer.agrees_with(central, tol=1e-9)

    @pytest.mark.parametrize("region_size", [1, 2, 3, 6])
    def test_any_region_size(self, region_size):
        db = make_random_database(300, 2, seed=5, grid=10)
        central = prob_skyline_sfs(db, 0.3)
        result, _ = hierarchical_run(EDSUD, db, sites=6, region_size=region_size)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_matches_flat_topology(self):
        db = make_random_database(350, 2, seed=6, grid=10)
        partitions = [db[i::6] for i in range(6)]
        flat = distributed_skyline(partitions, 0.3, algorithm="edsud")
        hierarchical, _ = hierarchical_run(EDSUD, db)
        assert hierarchical.answer.agrees_with(flat.answer, tol=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        region_size=st.integers(min_value=1, max_value=4),
        q=st.sampled_from([0.2, 0.4, 0.7]),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, seed, region_size, q):
        db = make_random_database(80, 2, seed=seed, grid=6)
        central = prob_skyline_sfs(db, q)
        partitions = [db[i::4] for i in range(4)]
        regions = build_regions(partitions, region_size)
        result = EDSUD(regions, q).run()
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_probabilities_are_exact(self):
        db = make_random_database(250, 3, seed=7, grid=8)
        central = prob_skyline_sfs(db, 0.3)
        result, _ = hierarchical_run(EDSUD, db, sites=6, region_size=2)
        for key, prob in result.answer.probabilities().items():
            assert prob == pytest.approx(central.probabilities()[key])


class TestRegionalQueueMechanics:
    def test_root_feedback_prunes_regional_heap_and_refills(self):
        """A root broadcast must evict dominated regional-heap entries
        below q AND immediately pull replacements from their sites."""
        from repro.core.tuples import UncertainTuple
        from repro.distributed.query import build_sites

        # Site A holds a strong survivor; site B's head is dominated by
        # the incoming feedback and collapses below q; B's next tuple is
        # clean and must surface.
        site_a = [UncertainTuple(1, (0.0, 9.0), 0.9)]
        site_b = [
            UncertainTuple(2, (5.0, 5.0), 0.9),   # dominated by feedback
            UncertainTuple(3, (9.0, 0.0), 0.8),   # incomparable, must surface
        ]
        region = RegionCoordinator(1000, build_sites([site_a, site_b]))
        region.prepare(0.3)
        feedback = UncertainTuple(100, (1.0, 1.0), 0.9)
        reply = region.probe_and_prune(feedback)
        assert reply.pruned >= 1
        surfaced = []
        while True:
            quaternion = region.pop_representative()
            if quaternion is None:
                break
            surfaced.append(quaternion.tuple.key)
        assert 3 in surfaced          # the replacement arrived
        assert 2 not in surfaced      # the dead candidate never escapes

    def test_emitted_probabilities_are_regional(self):
        """A representative's probability covers the whole region, so a
        candidate dominated by a sibling site reports the product."""
        from repro.core.tuples import UncertainTuple
        from repro.distributed.query import build_sites

        site_a = [UncertainTuple(1, (2.0, 2.0), 0.8)]
        site_b = [UncertainTuple(2, (1.0, 1.0), 0.5)]  # dominates A's tuple
        region = RegionCoordinator(1000, build_sites([site_a, site_b]))
        region.prepare(0.1)
        got = {}
        while True:
            quaternion = region.pop_representative()
            if quaternion is None:
                break
            got[quaternion.tuple.key] = quaternion.local_probability
            assert quaternion.site == 1000  # region speaks for itself
        assert got[2] == pytest.approx(0.5)
        assert got[1] == pytest.approx(0.8 * 0.5)  # sibling factor folded in

    def test_emission_order_non_increasing(self):
        """Corollary 1 at the root requires each endpoint's stream to be
        sorted; the lazy max-heap must preserve that through resolution."""
        db = make_random_database(240, 2, seed=11, grid=10)
        from repro.distributed.query import build_sites

        region = RegionCoordinator(
            1000, build_sites([db[i::3] for i in range(3)])
        )
        region.prepare(0.2)
        probs = []
        while True:
            quaternion = region.pop_representative()
            if quaternion is None:
                break
            probs.append(quaternion.local_probability)
        assert probs == sorted(probs, reverse=True)
        assert len(probs) >= 3


class TestTrafficSplit:
    def test_wan_cheaper_than_flat(self):
        """The whole point: fewer WAN endpoints, fewer WAN tuples."""
        db = make_random_database(1500, 3, seed=8)
        sites = 12
        partitions = [db[i::sites] for i in range(sites)]
        flat = distributed_skyline(partitions, 0.3, algorithm="edsud")
        regions = build_regions(partitions, region_size=4)
        hierarchical = EDSUD(regions, 0.3).run()
        assert hierarchical.answer.agrees_with(flat.answer, tol=1e-9)
        assert hierarchical.bandwidth < flat.bandwidth

    def test_lan_traffic_tracked_separately(self):
        db = make_random_database(300, 2, seed=9)
        result, regions = hierarchical_run(EDSUD, db)
        total_lan = sum(r.local_stats.tuples_transmitted for r in regions)
        assert total_lan > 0
        # WAN books never include the LAN messages.
        assert result.stats.tuples_transmitted < total_lan + result.bandwidth + 1

    def test_single_site_regions_equal_flat_wan(self):
        """Degenerate regions (size 1) reproduce flat WAN accounting."""
        db = make_random_database(300, 2, seed=10, grid=10)
        partitions = [db[i::4] for i in range(4)]
        flat = distributed_skyline(partitions, 0.3, algorithm="dsud")
        regions = build_regions(partitions, region_size=1)
        hierarchical = DSUD(regions, 0.3).run()
        assert hierarchical.answer.agrees_with(flat.answer, tol=1e-9)
        assert hierarchical.bandwidth == flat.bandwidth

"""Distributed sliding-window skylines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prob_skyline import prob_skyline_sfs
from repro.core.tuples import UncertainTuple
from repro.distributed.streaming import DistributedStreamSkyline

from ..conftest import make_random_database


def stream_tuples(n, d=2, seed=0, start_key=0, grid=10):
    return make_random_database(n, d, seed=seed, grid=grid, start_key=start_key)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedStreamSkyline(sites=0, window=5, threshold=0.3)
        with pytest.raises(ValueError):
            DistributedStreamSkyline(sites=2, window=0, threshold=0.3)

    def test_starts_empty(self):
        stream = DistributedStreamSkyline(sites=3, window=5, threshold=0.3)
        assert len(stream.skyline()) == 0
        assert stream.live_tuples() == []


class TestWindowSemantics:
    def test_window_fills_then_slides(self):
        stream = DistributedStreamSkyline(sites=1, window=3, threshold=0.3)
        tuples = stream_tuples(5, seed=1)
        events = stream.drain(0, tuples)
        assert [e.expired for e in events] == [
            None, None, None, tuples[0].key, tuples[1].key,
        ]
        assert [t.key for t in stream.live_tuples(0)] == [t.key for t in tuples[2:]]

    def test_windows_are_per_site(self):
        stream = DistributedStreamSkyline(sites=2, window=2, threshold=0.3)
        a = stream_tuples(3, seed=2, start_key=0)
        b = stream_tuples(3, seed=3, start_key=100)
        stream.drain(0, a)
        stream.drain(1, b)
        assert len(stream.live_tuples(0)) == 2
        assert len(stream.live_tuples(1)) == 2

    def test_bad_site_rejected(self):
        stream = DistributedStreamSkyline(sites=2, window=2, threshold=0.3)
        with pytest.raises(IndexError):
            stream.arrive(5, UncertainTuple(1, (0.0, 0.0), 0.5))

    def test_duplicate_keys_rejected(self):
        stream = DistributedStreamSkyline(sites=1, window=5, threshold=0.3)
        t = UncertainTuple(1, (0.0, 0.0), 0.5)
        stream.arrive(0, t)
        with pytest.raises(ValueError, match="unique"):
            stream.arrive(0, UncertainTuple(1, (1.0, 1.0), 0.5))


class TestStandingAnswer:
    def _truth(self, stream):
        return prob_skyline_sfs(stream.live_tuples(), stream.threshold)

    def test_answer_tracks_live_tuples(self):
        stream = DistributedStreamSkyline(sites=2, window=10, threshold=0.3)
        rng = random.Random(4)
        tuples = stream_tuples(40, seed=5)
        for t in tuples:
            stream.arrive(rng.randrange(2), t)
            assert stream.skyline().agrees_with(self._truth(stream), tol=1e-6)

    def test_expiry_recovers_suppressed_tuples(self):
        """Once a dominator slides out, what it suppressed must surface."""
        stream = DistributedStreamSkyline(sites=1, window=2, threshold=0.3)
        dominator = UncertainTuple(1, (0.0, 0.0), 0.95)
        hidden = UncertainTuple(2, (1.0, 1.0), 0.9)
        filler = UncertainTuple(3, (5.0, 5.0), 0.5)
        stream.arrive(0, dominator)
        stream.arrive(0, hidden)
        assert 2 not in stream.skyline()
        event = stream.arrive(0, filler)  # expires the dominator
        assert event.expired == 1
        assert 2 in stream.skyline()
        assert 2 in event.added

    def test_events_report_net_changes(self):
        stream = DistributedStreamSkyline(sites=1, window=3, threshold=0.3)
        t1 = UncertainTuple(1, (5.0, 5.0), 0.9)
        event = stream.arrive(0, t1)
        assert event.changed_answer and event.added == [1]
        t2 = UncertainTuple(2, (0.0, 0.0), 0.99)
        event = stream.arrive(0, t2)
        assert 1 in event.removed and 2 in event.added

    def test_gaussian_probability_stream(self):
        stream = DistributedStreamSkyline(sites=3, window=8, threshold=0.4)
        rng = random.Random(6)
        for key in range(60):
            t = UncertainTuple(
                key,
                (rng.random(), rng.random()),
                min(1.0, max(0.01, rng.gauss(0.6, 0.2))),
            )
            stream.arrive(rng.randrange(3), t)
        assert stream.skyline().agrees_with(self._truth(stream), tol=1e-6)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        window=st.integers(min_value=1, max_value=6),
        sites=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_standing_answer_property(self, seed, window, sites):
        stream = DistributedStreamSkyline(sites=sites, window=window, threshold=0.3)
        rng = random.Random(seed)
        for t in stream_tuples(25, seed=seed, grid=6):
            stream.arrive(rng.randrange(sites), t)
        truth = prob_skyline_sfs(stream.live_tuples(), 0.3)
        assert stream.skyline().agrees_with(truth, tol=1e-6)


class TestAccounting:
    def test_quiet_arrivals_cost_nothing(self):
        """Tuples deep in dominated territory never touch the network."""
        stream = DistributedStreamSkyline(sites=2, window=50, threshold=0.3)
        stream.arrive(0, UncertainTuple(1, (0.0, 0.0), 0.99))
        baseline = stream.stats.tuples_transmitted
        for key in range(2, 30):
            event = stream.arrive(
                key % 2, UncertainTuple(key, (8.0 + key, 8.0 + key), 0.2)
            )
            assert event.tuples_transmitted == 0
        assert stream.stats.tuples_transmitted == baseline

    def test_event_log_grows(self):
        stream = DistributedStreamSkyline(sites=1, window=3, threshold=0.3)
        stream.drain(0, stream_tuples(5, seed=7))
        assert len(stream.events) == 5


class TestEngineWiring:
    """The adapter rides the repro.stream continuous-query engine; pin
    the wiring, not just the answers."""

    def test_standing_answer_is_bit_identical_to_a_fresh_run(self):
        from repro.distributed.query import distributed_skyline
        from repro.stream.site import streaming_site_config

        stream = DistributedStreamSkyline(sites=3, window=6, threshold=0.3)
        rng = random.Random(17)
        for t in stream_tuples(40, seed=17, grid=8):
            stream.arrive(rng.randrange(3), t)
            got = [(m.key, m.probability) for m in stream.skyline().members]
            want = distributed_skyline(
                [stream.live_tuples(i) for i in range(3)],
                stream.threshold,
                algorithm="edsud",
                site_config=streaming_site_config(),
            ).answer
            assert got == [(m.key, m.probability) for m in want.members]

    def test_preference_passes_through_to_the_engine(self):
        from repro.core.dominance import Preference
        from repro.distributed.query import distributed_skyline
        from repro.stream.site import streaming_site_config

        preference = Preference(subspace=(0,))
        stream = DistributedStreamSkyline(
            sites=2, window=5, threshold=0.3, preference=preference
        )
        rng = random.Random(23)
        for t in stream_tuples(20, seed=23, grid=6):
            stream.arrive(rng.randrange(2), t)
        want = distributed_skyline(
            [stream.live_tuples(i) for i in range(2)],
            stream.threshold,
            algorithm="edsud",
            preference=preference,
            site_config=streaming_site_config(),
        ).answer
        assert [(m.key, m.probability) for m in stream.skyline().members] == [
            (m.key, m.probability) for m in want.members
        ]

    def test_traffic_is_billed_under_the_stream_protocol_kinds(self):
        stream = DistributedStreamSkyline(sites=2, window=4, threshold=0.3)
        # Registration fans the suppression bound out as SUBSCRIBE.
        assert stream.stats.by_kind.get("subscribe", 0) >= 1
        rng = random.Random(29)
        for t in stream_tuples(16, seed=29, grid=8):
            stream.arrive(rng.randrange(2), t)
        assert stream.stats.by_kind.get("delta", 0) >= 1
        assert stream.stats.by_kind.get("notify", 0) >= 1
        # Ledger identity: only entered candidates (up) and replicas
        # (down) bear tuples.
        hub = stream._coordinator
        assert (
            stream.stats.tuples_transmitted
            == hub.candidates_shipped + hub.replicas_shipped
        )

    def test_changed_answer_flag_matches_the_deltas(self):
        stream = DistributedStreamSkyline(sites=1, window=4, threshold=0.3)
        first = stream.arrive(0, UncertainTuple(1, (0.0, 0.0), 0.9))
        assert first.changed_answer and first.added == [1]
        quiet = stream.arrive(0, UncertainTuple(2, (9.0, 9.0), 0.05))
        assert not quiet.changed_answer
        assert quiet.added == [] and quiet.removed == []

"""Per-algorithm behaviour: baseline, naive, DSUD, e-DSUD."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.data.workload import make_synthetic_workload
from repro.distributed.baseline import ShipAllBaseline
from repro.distributed.dsud import DSUD
from repro.distributed.edsud import EDSUD, EDSUDConfig
from repro.distributed.naive import NaiveLocalSkylines
from repro.distributed.query import build_sites
from repro.distributed.site import SiteConfig

from ..conftest import make_random_database


def run(coordinator_cls, partitions, q=0.3, **kwargs):
    sites = build_sites(partitions)
    return coordinator_cls(sites, q, **kwargs).run()


@pytest.fixture
def workload():
    return make_synthetic_workload("independent", n=1500, d=3, sites=5, seed=9)


class TestShipAll:
    def test_bandwidth_is_total_cardinality(self, workload):
        result = run(ShipAllBaseline, workload.partitions)
        assert result.bandwidth == workload.cardinality
        assert result.stats.tuples_to_server == workload.cardinality
        assert result.stats.tuples_from_server == 0

    def test_answer_correct(self, workload):
        result = run(ShipAllBaseline, workload.partitions)
        central = prob_skyline_sfs(workload.global_database, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_no_progressiveness(self, workload):
        """Every result arrives at the same (final) bandwidth level."""
        result = run(ShipAllBaseline, workload.partitions)
        levels = {e.tuples_transmitted for e in result.progress.events}
        assert levels == {workload.cardinality}


class TestNaive:
    def test_bandwidth_decomposition(self, workload):
        """up = Σ|SKY(D_i)|, down = up x (m-1): the §4 cost analysis."""
        result = run(NaiveLocalSkylines, workload.partitions)
        m = workload.sites
        up = result.stats.tuples_to_server
        local_sizes = [
            len(prob_skyline_sfs(part, 0.3)) for part in workload.partitions
        ]
        assert up == sum(local_sizes)
        assert result.stats.tuples_from_server == up * (m - 1)

    def test_answer_correct(self, workload):
        result = run(NaiveLocalSkylines, workload.partitions)
        central = prob_skyline_sfs(workload.global_database, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)


class TestDSUD:
    def test_answer_correct(self, workload):
        result = run(DSUD, workload.partitions)
        central = prob_skyline_sfs(workload.global_database, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_cheaper_than_naive(self, workload):
        dsud = run(DSUD, workload.partitions)
        naive = run(NaiveLocalSkylines, workload.partitions)
        assert dsud.bandwidth < naive.bandwidth

    def test_every_fetched_tuple_is_broadcast(self, workload):
        """DSUD resolves everything it fetches: down = up x (m-1)."""
        result = run(DSUD, workload.partitions)
        m = workload.sites
        assert result.stats.tuples_from_server == result.stats.tuples_to_server * (m - 1)

    def test_bandwidth_at_least_ceiling(self, workload):
        result = run(DSUD, workload.partitions)
        assert result.bandwidth >= result.ceiling(workload.sites)

    def test_pruning_disabled_costs_more(self, workload):
        with_pruning = run(DSUD, workload.partitions)
        sites = build_sites(
            workload.partitions, site_config=SiteConfig(feedback_pruning=False)
        )
        without = DSUD(sites, 0.3).run()
        central = prob_skyline_sfs(workload.global_database, 0.3)
        assert without.answer.agrees_with(central, tol=1e-9)
        assert without.bandwidth >= with_pruning.bandwidth


class TestEDSUD:
    def test_answer_correct(self, workload):
        result = run(EDSUD, workload.partitions)
        central = prob_skyline_sfs(workload.global_database, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_not_more_broadcasts_than_dsud(self, workload):
        """Feedback selection may only reduce resolved candidates."""
        dsud = run(DSUD, workload.partitions)
        edsud = run(EDSUD, workload.partitions)
        assert edsud.iterations <= dsud.iterations

    @pytest.mark.parametrize(
        "config",
        [
            EDSUDConfig(),
            EDSUDConfig(server_expunge=False),
            EDSUDConfig(eager_bound_refresh=False),
            EDSUDConfig(reuse_probe_factors=True),
            EDSUDConfig(server_expunge=False, eager_bound_refresh=False),
        ],
        ids=["paper", "no-expunge", "lazy-bounds", "reuse-factors", "lazy-all"],
    )
    def test_all_config_variants_correct(self, workload, config):
        result = run(EDSUD, workload.partitions, config=config)
        central = prob_skyline_sfs(workload.global_database, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)

    def test_expunge_counter_exposed(self, workload):
        result = run(EDSUD, workload.partitions)
        assert "expunged" in result.extra
        assert result.extra["expunged"] >= 0

    def test_expunged_tuples_never_broadcast(self):
        """A server-expunged candidate costs its fetch but no broadcast."""
        db = make_random_database(400, 2, seed=13, grid=10)
        partitions = [db[i::4] for i in range(4)]
        result = run(EDSUD, partitions)
        if result.extra["expunged"] > 0:
            m = 4
            assert result.stats.tuples_from_server < result.stats.tuples_to_server * (m - 1)


class TestBandwidthHierarchy:
    """The paper's headline ordering on a fleet of seeds."""

    @pytest.mark.parametrize("seed", [101, 202, 303, 404])
    @pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
    def test_edsud_leq_dsud_lt_naive_leq_shipall(self, seed, distribution):
        wl = make_synthetic_workload(distribution, n=1200, d=3, sites=6, seed=seed)
        results = {
            name: run(cls, wl.partitions)
            for name, cls in (
                ("edsud", EDSUD),
                ("dsud", DSUD),
                ("naive", NaiveLocalSkylines),
                ("shipall", ShipAllBaseline),
            )
        }
        assert results["edsud"].bandwidth <= results["dsud"].bandwidth
        assert results["dsud"].bandwidth < results["naive"].bandwidth
        # Ship-all pays exactly |D|.  Note the naive strawman can exceed
        # it on skyline-heavy data — Σ|SKY(D_i)| x m > N is precisely the
        # §4 argument (N_back > N_local) for selective feedback, so no
        # ordering is asserted between those two.
        assert results["shipall"].bandwidth == wl.cardinality

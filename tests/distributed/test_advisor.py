"""The cost-model algorithm advisor."""

import pytest

from repro.distributed.advisor import estimate_costs, recommend_algorithm


class TestEstimates:
    def test_ship_all_is_exact(self):
        assert estimate_costs(40_000, 3, 20).ship_all == 40_000

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_costs(100, 2, 0)
        with pytest.raises(ValueError):
            estimate_costs(100, 2, 4, threshold=0.0)

    def test_naive_grows_with_sites(self):
        a = estimate_costs(40_000, 3, 10).naive
        b = estimate_costs(40_000, 3, 40).naive
        assert b > a

    def test_ceiling_grows_with_dimensionality(self):
        a = estimate_costs(40_000, 2, 20).ceiling
        b = estimate_costs(40_000, 5, 20).ceiling
        assert b > a

    def test_threshold_shrinks_estimates(self):
        low = estimate_costs(40_000, 3, 20, threshold=0.3)
        high = estimate_costs(40_000, 3, 20, threshold=0.9)
        assert high.ceiling < low.ceiling
        assert high.naive < low.naive

    def test_as_dict(self):
        d = estimate_costs(1000, 2, 4).as_dict()
        assert set(d) == {"ship-all", "naive", "ceiling"}


class TestRecommendation:
    def test_typical_workload_gets_edsud(self):
        algorithm, _ = recommend_algorithm(40_000, 3, 20, threshold=0.3)
        assert algorithm == "edsud"

    def test_skyline_heavy_workload_gets_ship_all(self):
        # Tiny partitions, high dimensionality, many sites: nearly every
        # tuple is a skyline member and the ceiling swamps N.
        algorithm, estimates = recommend_algorithm(2_000, 5, 100, threshold=0.1)
        assert algorithm == "ship-all"
        assert estimates.ceiling * 1.5 >= estimates.ship_all

    def test_recommendation_tracks_reality(self):
        """On concrete workloads the recommended strategy is not worse."""
        from repro.data.workload import make_synthetic_workload
        from repro.distributed.query import distributed_skyline

        cases = [
            dict(n=3000, d=2, sites=5, q=0.3),    # easy: edsud country
            dict(n=400, d=4, sites=20, q=0.1),    # skyline-heavy: ship-all
        ]
        for case in cases:
            algorithm, _ = recommend_algorithm(
                case["n"], case["d"], case["sites"], case["q"]
            )
            wl = make_synthetic_workload(
                n=case["n"], d=case["d"], sites=case["sites"], seed=17
            )
            chosen = distributed_skyline(wl.partitions, case["q"], algorithm=algorithm)
            other_name = "ship-all" if algorithm == "edsud" else "edsud"
            other = distributed_skyline(wl.partitions, case["q"], algorithm=other_name)
            # Allow slack: these are planning estimates, not guarantees.
            assert chosen.bandwidth <= other.bandwidth * 1.6, (
                case, algorithm, chosen.bandwidth, other.bandwidth
            )

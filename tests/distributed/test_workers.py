"""Worker-process table builds are bit-identical to inline builds.

The pool ships explicit array copies to a process, builds the table
there, and ships back only the payload; adopting it must produce the
same bits as building inline — sync and async — and the pool must shut
down cleanly under the context manager.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core.kernels import ColumnStore
from repro.core.partition_index import PartitionIndex
from repro.distributed.site import LocalSite, SiteConfig
from repro.distributed.workers import TableWorkerPool, build_table_payload

from ..conftest import make_random_database

DB = make_random_database(400, 3, seed=51, grid=8)
STORE = ColumnStore.from_tuples(DB)


def _inline() -> PartitionIndex:
    index = PartitionIndex.build(STORE)
    index.refresh()
    return index


class TestPoolBuilds:
    def test_pool_build_is_bit_identical_to_inline(self):
        inline = _inline()
        with TableWorkerPool(max_workers=1) as pool:
            payload = pool.build_payload(STORE)
        adopted = PartitionIndex.from_payload(STORE, payload)
        np.testing.assert_array_equal(adopted.products, inline.products)
        assert adopted.stale_cells() == 0
        adopted.check_invariants()

    def test_async_build_matches_sync(self):
        inline = _inline()

        async def drive():
            with TableWorkerPool(max_workers=1) as pool:
                return await pool.build_payload_async(STORE)

        payload = asyncio.run(drive())
        adopted = PartitionIndex.from_payload(STORE, payload)
        np.testing.assert_array_equal(adopted.products, inline.products)

    def test_worker_function_is_importable_and_pure(self):
        """The process target rebuilds only from the explicit arrays."""
        payload = build_table_payload(
            np.ascontiguousarray(STORE.values, dtype=np.float64),
            np.ascontiguousarray(STORE.probabilities, dtype=np.float64),
            np.ascontiguousarray(STORE.keys),
            None,
            None,
        )
        np.testing.assert_array_equal(
            np.asarray(payload["products"]), _inline().products
        )

    def test_site_build_through_pool_matches_inline_site(self):
        config = SiteConfig(use_index=False, all_probs_table=True)
        inline_site = LocalSite(0, DB, config=config)
        inline_site.build_all_probs_table()
        pooled_site = LocalSite(0, DB, config=config)
        with TableWorkerPool(max_workers=1) as pool:
            pooled_site.build_all_probs_table(pool)
        np.testing.assert_array_equal(
            pooled_site._table_box["index"].products,
            inline_site._table_box["index"].products,
        )
        assert pooled_site.prepare(0.3) == inline_site.prepare(0.3)

    def test_pool_rejects_use_after_close(self):
        pool = TableWorkerPool(max_workers=1)
        pool.close()
        try:
            pool.build_payload(STORE)
        except RuntimeError:
            return
        raise AssertionError("closed pool accepted work")

"""Batched probe rounds: accounting, equivalence, and wire transport.

Contract under test:

* ``batch_size=1`` (the default) is the pre-batching protocol — same
  RPC trace, same message books, no batch RPC ever issued.
* ``batch_size=k`` produces the same answer (broadcasts resolve exact
  probabilities regardless of grouping) in no more — and on real
  workloads strictly fewer — coordination rounds.
* A batched FEEDBACK message bears as many tuples as it carries
  (the §3.2 metric counts tuples, not envelopes).
* The batch RPC crosses the TCP transport unchanged.
"""

import pytest

from repro.distributed.dsud import DSUD
from repro.distributed.edsud import EDSUD
from repro.distributed.query import build_sites, distributed_skyline
from repro.net.message import MessageKind, Quaternion
from repro.net.sockets import host_sites
from repro.net.transport import RecordingEndpoint

from ..conftest import make_random_database

Q = 0.3
SITES = 3


def make_partitions(n=240, d=2, seed=1, grid=10):
    db = make_random_database(n, d, seed=seed, grid=grid)
    return [db[i::SITES] for i in range(SITES)]


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestBatchSizeOne:
    def test_default_equals_explicit_batch_size_one(self, algorithm):
        partitions = make_partitions()
        default = distributed_skyline(partitions, Q, algorithm=algorithm)
        explicit = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=1
        )
        assert explicit.answer.agrees_with(default.answer, tol=0.0)
        assert explicit.stats.messages == default.stats.messages
        assert explicit.stats.by_kind == default.stats.by_kind
        assert explicit.stats.tuples_transmitted == default.stats.tuples_transmitted
        assert explicit.stats.rounds == default.stats.rounds
        assert explicit.iterations == default.iterations

    def test_batch_size_one_never_issues_the_batch_rpc(self, algorithm):
        partitions = make_partitions(n=120)
        log = []
        sites = [
            RecordingEndpoint(s, log) for s in build_sites(partitions)
        ]
        cls = DSUD if algorithm == "dsud" else EDSUD
        cls(sites, Q, batch_size=1).run()
        methods = {record.method for record in log}
        assert "probe_and_prune" in methods
        assert "probe_and_prune_batch" not in methods


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestBatchedRounds:
    @pytest.mark.parametrize("batch_size", [2, 4])
    def test_same_answer_fewer_rounds(self, algorithm, batch_size):
        partitions = make_partitions()
        unbatched = distributed_skyline(partitions, Q, algorithm=algorithm)
        batched = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=batch_size
        )
        assert batched.answer.agrees_with(unbatched.answer, tol=1e-9)
        assert batched.stats.rounds < unbatched.stats.rounds
        assert batched.stats.by_kind[MessageKind.FEEDBACK.value] < (
            unbatched.stats.by_kind[MessageKind.FEEDBACK.value]
        )

    def test_batch_rpc_actually_used(self, algorithm):
        partitions = make_partitions()
        log = []
        sites = [
            RecordingEndpoint(s, log) for s in build_sites(partitions)
        ]
        cls = DSUD if algorithm == "dsud" else EDSUD
        cls(sites, Q, batch_size=3).run()
        assert any(r.method == "probe_and_prune_batch" for r in log)
        # A batched call never carries a site's own tuple back to it.
        for record in log:
            if record.method != "probe_and_prune_batch":
                continue
            factors = record.result.factors
            assert len(factors) == len(record.args[0])


class TestBatchAccounting:
    def test_feedback_bears_one_tuple_per_batched_quaternion(self):
        partitions = make_partitions(n=90)
        sites = build_sites(partitions)
        coordinator = DSUD(sites, Q, batch_size=2)
        coordinator.prepare_sites()
        heads = [site.pop_representative() for site in sites]
        quaternions = [q for q in heads[:2] if q is not None]
        assert len(quaternions) == 2
        before_msgs = dict(coordinator.stats.by_kind)
        before_tuples = coordinator.stats.tuples_transmitted
        replies = coordinator.broadcast_probes_batch(quaternions)
        coordinator.close()
        # Three sites, two quaternions from sites 0 and 1: sites 0 and
        # 1 each probe the other's tuple (1 each), site 2 probes both.
        feedback_msgs = (
            coordinator.stats.by_kind[MessageKind.FEEDBACK.value]
            - before_msgs.get(MessageKind.FEEDBACK.value, 0)
        )
        assert feedback_msgs == SITES
        assert coordinator.stats.tuples_transmitted - before_tuples == 4
        # Every (quaternion, foreign site) pair contributed a factor.
        assert len(replies) == 4

    def test_single_element_batch_is_the_scalar_broadcast(self):
        partitions = make_partitions(n=90)

        def trace(batch_size):
            log = []
            sites = [
                RecordingEndpoint(s, log) for s in build_sites(partitions)
            ]
            coordinator = DSUD(sites, Q, batch_size=batch_size)
            coordinator.prepare_sites()
            head = sites[0].pop_representative()
            quaternion = Quaternion(
                site=head.site,
                tuple=head.tuple,
                local_probability=head.local_probability,
            )
            out = coordinator.broadcast_batch([quaternion])
            coordinator.close()
            return out, [r.method for r in log], coordinator.stats

        batched, methods_b, stats_b = trace(batch_size=4)
        scalar, methods_s, stats_s = trace(batch_size=1)
        assert batched == scalar  # same floats, same order
        assert methods_b == methods_s  # same RPC trace, no batch call
        assert stats_b.by_kind == stats_s.by_kind
        assert stats_b.tuples_transmitted == stats_s.tuples_transmitted


class TestBatchOverTcp:
    def test_batched_query_over_sockets_matches_in_process(self):
        partitions = make_partitions(n=120)
        in_process = distributed_skyline(
            partitions, Q, algorithm="edsud", batch_size=3
        )
        with host_sites(partitions) as cluster:
            over_wire = EDSUD(cluster.proxies, Q, batch_size=3).run()
        assert over_wire.answer.agrees_with(in_process.answer, tol=1e-9)
        assert over_wire.stats.messages == in_process.stats.messages
        assert over_wire.stats.tuples_transmitted == (
            in_process.stats.tuples_transmitted
        )

"""Vertical partitioning (the §8 future-work algorithm)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Preference
from repro.core.prob_skyline import prob_skyline_brute_force
from repro.core.tuples import UncertainTuple
from repro.distributed.vertical import (
    VerticalSite,
    VerticalSkylineCoordinator,
    vertical_partition,
    vertical_skyline,
)

from ..conftest import make_random_database


class TestVerticalSite:
    def test_sorted_access_order(self):
        site = VerticalSite(0, [(3.0, 1, 0.5), (1.0, 2, 0.5), (2.0, 3, 0.5)])
        keys = [site.sorted_access(i)[0] for i in range(3)]
        assert keys == [2, 3, 1]

    def test_sorted_access_past_end(self):
        site = VerticalSite(0, [(1.0, 1, 0.5)])
        assert site.sorted_access(1) is None

    def test_random_access(self):
        site = VerticalSite(0, [(3.0, 1, 0.7)])
        assert site.random_access(1) == (3.0, 0.7)

    def test_count_and_keys_leq(self):
        site = VerticalSite(0, [(1.0, 1, 0.5), (2.0, 2, 0.5), (2.0, 3, 0.5), (4.0, 4, 0.5)])
        assert site.count_leq(2.0) == 3
        keys = site.keys_leq(2.0)
        assert set(keys) == {1, 2, 3}
        assert keys[1] is True   # strictly below
        assert keys[2] is False  # tie

    def test_filter_leq_strictness_accumulates(self):
        site = VerticalSite(1, [(5.0, 1, 0.5), (9.0, 2, 0.5)])
        filtered = site.filter_leq({1: False, 2: False}, 5.0)
        assert filtered == {1: False}
        filtered = site.filter_leq({1: False}, 6.0)
        assert filtered == {1: True}


class TestPartitioning:
    def test_one_site_per_dimension(self):
        db = make_random_database(50, 3, seed=1)
        sites = vertical_partition(db)
        assert [s.dim for s in sites] == [0, 1, 2]
        assert all(len(s) == 50 for s in sites)

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            vertical_partition([])

    def test_preference_projection(self):
        db = [UncertainTuple(0, (1.0, 2.0), 0.5)]
        sites = vertical_partition(db, Preference.of("min,max"))
        assert sites[1].random_access(0) == (-2.0, 0.5)


class TestCoordinatorValidation:
    def test_dimension_coverage_enforced(self):
        site = VerticalSite(1, [(1.0, 1, 0.5)])
        with pytest.raises(ValueError, match="dimensions"):
            VerticalSkylineCoordinator([site], 0.3)

    def test_threshold_validation(self):
        db = make_random_database(10, 2, seed=2)
        with pytest.raises(ValueError):
            VerticalSkylineCoordinator(vertical_partition(db), 0.0)


class TestCorrectness:
    @pytest.mark.parametrize("q", [0.1, 0.3, 0.6, 0.9])
    def test_matches_centralized(self, q):
        db = make_random_database(200, 2, seed=3, grid=12)
        central = prob_skyline_brute_force(db, q)
        answer, stats = vertical_skyline(db, q)
        assert answer.agrees_with(central, tol=1e-9)
        assert stats.verified >= len(central)

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_dimensionalities(self, d):
        db = make_random_database(120, d, seed=d, grid=8)
        central = prob_skyline_brute_force(db, 0.3)
        answer, _ = vertical_skyline(db, 0.3)
        assert answer.agrees_with(central, tol=1e-9)

    def test_with_preference_keys_match(self):
        db = make_random_database(150, 2, seed=5, grid=10)
        pref = Preference.of("min,max")
        central = prob_skyline_brute_force(db, 0.3, pref)
        answer, _ = vertical_skyline(db, 0.3, pref)
        assert set(answer.keys()) == set(central.keys())
        assert answer.probabilities() == pytest.approx(central.probabilities())

    def test_ties_everywhere(self):
        db = [UncertainTuple(i, (1.0, 1.0), 0.6) for i in range(10)]
        central = prob_skyline_brute_force(db, 0.3)
        answer, _ = vertical_skyline(db, 0.3)
        assert answer.agrees_with(central, tol=1e-9)

    def test_dominance_chain(self):
        db = [UncertainTuple(i, (float(i), float(i)), 0.9) for i in range(25)]
        central = prob_skyline_brute_force(db, 0.3)
        answer, _ = vertical_skyline(db, 0.3)
        assert answer.agrees_with(central, tol=1e-9)

    def test_single_tuple(self):
        db = [UncertainTuple(0, (1.0, 2.0), 0.5)]
        answer, _ = vertical_skyline(db, 0.3)
        assert answer.keys() == [0]
        assert answer.probabilities()[0] == pytest.approx(0.5)

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        q=st.sampled_from([0.2, 0.4, 0.7, 1.0]),
        d=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, seed, q, d):
        db = make_random_database(60, d, seed=seed, grid=6)
        if not db:
            return
        central = prob_skyline_brute_force(db, q)
        answer, _ = vertical_skyline(db, q)
        assert answer.agrees_with(central, tol=1e-9)


class TestEfficiency:
    def test_sorted_access_stops_early_on_easy_data(self):
        """Correlated data with confident leaders: the unseen bound
        collapses quickly, far before the columns are exhausted."""
        db = [
            UncertainTuple(i, (float(i), float(i)), 0.95) for i in range(2000)
        ]
        _, stats = vertical_skyline(db, 0.3)
        assert stats.sorted_accesses < 2 * 2000  # far below d * N = 4000

    def test_stats_populated(self):
        db = make_random_database(100, 2, seed=7, grid=10)
        _, stats = vertical_skyline(db, 0.3)
        assert stats.sorted_accesses > 0
        assert stats.candidates > 0
        assert stats.total_entries == (
            stats.sorted_accesses + stats.random_accesses + stats.dominator_entries
        )

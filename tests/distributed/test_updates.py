"""§5.4 update maintenance: incremental vs naive vs ground truth."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prob_skyline import prob_skyline_sfs
from repro.core.tuples import UncertainTuple
from repro.data.workload import make_synthetic_workload
from repro.distributed.query import build_sites
from repro.distributed.updates import IncrementalMaintainer, NaiveMaintainer

from ..conftest import make_random_database


def fresh_maintainer(cls, n=300, m=4, q=0.3, seed=1):
    db = make_random_database(n, 2, seed=seed, grid=10)
    partitions = [db[i::m] for i in range(m)]
    sites = build_sites(partitions)
    return cls(sites, q), [list(p) for p in partitions], q


def ground_truth(partitions, q):
    union = [t for part in partitions for t in part]
    return prob_skyline_sfs(union, q)


class TestBootstrap:
    @pytest.mark.parametrize("cls", [IncrementalMaintainer, NaiveMaintainer])
    def test_initial_skyline_correct(self, cls):
        maintainer, partitions, q = fresh_maintainer(cls)
        assert maintainer.skyline().agrees_with(ground_truth(partitions, q), tol=1e-9)

    def test_replicas_installed_at_all_sites(self):
        maintainer, _, _ = fresh_maintainer(IncrementalMaintainer)
        keys = set(maintainer.sky)
        for site in maintainer.sites:
            assert set(site.sky_h_replica) == keys


class TestIncrementalInsert:
    def test_dominating_insert_shrinks_skyline(self):
        maintainer, partitions, q = fresh_maintainer(IncrementalMaintainer, seed=2)
        t = UncertainTuple(99_000, (0.0, 0.0), 0.95)
        report = maintainer.insert(0, t)
        partitions[0].append(t)
        assert t.key in [m.key for m in maintainer.skyline()]
        assert maintainer.skyline().agrees_with(ground_truth(partitions, q), tol=1e-6)
        assert report.added == [t.key]

    def test_dominated_insert_is_local_only(self):
        maintainer, partitions, q = fresh_maintainer(IncrementalMaintainer, seed=3)
        before = maintainer.stats.tuples_transmitted
        t = UncertainTuple(99_001, (11.0, 11.0), 0.05)
        report = maintainer.insert(1, t)
        partitions[1].append(t)
        # Replica bound rejects it without any network tuples.
        assert maintainer.stats.tuples_transmitted == before
        assert not report.added
        assert maintainer.skyline().agrees_with(ground_truth(partitions, q), tol=1e-6)

    def test_insert_reweights_existing_members(self):
        maintainer, partitions, q = fresh_maintainer(IncrementalMaintainer, seed=4)
        # A tuple dominating everything reweights every member.
        t = UncertainTuple(99_002, (-1.0, -1.0), 0.5)
        report = maintainer.insert(2, t)
        partitions[2].append(t)
        assert maintainer.skyline().agrees_with(ground_truth(partitions, q), tol=1e-6)
        assert report.reweighted or report.removed


class TestIncrementalDelete:
    def test_delete_member_removes_it(self):
        maintainer, partitions, q = fresh_maintainer(IncrementalMaintainer, seed=5)
        member_key = maintainer.skyline().keys()[0]
        site_id = next(
            s.site_id for s in maintainer.sites if s.contains(member_key)
        )
        report = maintainer.delete(site_id, member_key)
        for part in partitions:
            part[:] = [t for t in part if t.key != member_key]
        assert member_key in report.removed
        assert maintainer.skyline().agrees_with(ground_truth(partitions, q), tol=1e-6)

    def test_delete_suppressor_recovers_candidates(self):
        """Removing a strong dominator must surface what it suppressed."""
        strong = UncertainTuple(0, (0.0, 0.0), 0.95)
        hidden = UncertainTuple(1, (1.0, 1.0), 0.9)   # bound 0.9*0.05 < q
        filler = UncertainTuple(2, (9.0, 9.0), 0.5)
        partitions = [[strong], [hidden], [filler]]
        maintainer = IncrementalMaintainer(build_sites(partitions), 0.3)
        assert [m.key for m in maintainer.skyline()] == [0]
        report = maintainer.delete(0, 0)
        assert 1 in report.added
        assert set(maintainer.skyline().keys()) >= {1}

    def test_delete_nonmember_nondominator_cheap(self):
        maintainer, partitions, q = fresh_maintainer(IncrementalMaintainer, seed=6)
        # A far-corner tuple dominates nothing and is no member.
        t = UncertainTuple(99_003, (10.0, 10.0), 0.01)
        maintainer.insert(0, t)
        partitions[0].append(t)
        report = maintainer.delete(0, t.key)
        partitions[0].remove(t)
        assert not report.added and not report.removed
        assert maintainer.skyline().agrees_with(ground_truth(partitions, q), tol=1e-6)


class TestMixedSequences:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_incremental_tracks_ground_truth(self, seed):
        maintainer, partitions, q = fresh_maintainer(
            IncrementalMaintainer, n=120, m=3, seed=seed
        )
        rng = random.Random(seed)
        key = 1_000_000
        for _ in range(15):
            site_id = rng.randrange(3)
            if rng.random() < 0.5 and partitions[site_id]:
                victim = rng.choice(partitions[site_id])
                partitions[site_id].remove(victim)
                maintainer.delete(site_id, victim.key)
            else:
                t = UncertainTuple(
                    key,
                    (float(rng.randrange(10)), float(rng.randrange(10))),
                    rng.random() * 0.99 + 0.01,
                )
                key += 1
                partitions[site_id].append(t)
                maintainer.insert(site_id, t)
            assert maintainer.skyline().agrees_with(
                ground_truth(partitions, q), tol=1e-6
            )

    def test_incremental_and_naive_agree(self):
        wl = make_synthetic_workload(n=200, d=2, sites=3, seed=8)
        inc = IncrementalMaintainer(build_sites(wl.partitions), 0.3)
        naive = NaiveMaintainer(build_sites(wl.partitions), 0.3)
        rng = random.Random(9)
        live = [list(p) for p in wl.partitions]
        key = 500_000
        for _ in range(12):
            site_id = rng.randrange(3)
            if rng.random() < 0.5 and live[site_id]:
                victim = rng.choice(live[site_id])
                live[site_id].remove(victim)
                inc.delete(site_id, victim.key)
                naive.delete(site_id, victim.key)
            else:
                t = UncertainTuple(
                    key, (rng.random(), rng.random()), rng.random() * 0.99 + 0.01
                )
                key += 1
                live[site_id].append(t)
                inc.insert(site_id, t)
                naive.insert(site_id, t)
        assert inc.skyline().agrees_with(naive.skyline(), tol=1e-6)

    def test_incremental_much_cheaper_than_naive(self):
        wl = make_synthetic_workload(n=400, d=2, sites=4, seed=10)
        inc = IncrementalMaintainer(build_sites(wl.partitions), 0.3)
        naive = NaiveMaintainer(build_sites(wl.partitions), 0.3)
        rng = random.Random(11)
        key = 600_000
        for _ in range(10):
            t = UncertainTuple(
                key, (rng.random(), rng.random()), rng.random() * 0.99 + 0.01
            )
            key += 1
            inc.insert(rng.randrange(4), t)
            naive.insert(rng.randrange(4), t)
        assert inc.stats.tuples_transmitted < naive.stats.tuples_transmitted / 2


class TestReplayProperty:
    """Satellite of the continuous-query subsystem: the §5.4
    maintainers are its per-epoch foundation, so pin that replaying
    any random insert/delete schedule through both keeps them
    member-identical with symmetric message books."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_replay_keeps_naive_and_incremental_identical(self, seed):
        db = make_random_database(90, 2, seed=seed, grid=8)
        partitions = [db[i::3] for i in range(3)]
        inc = IncrementalMaintainer(build_sites(partitions), 0.3)
        naive = NaiveMaintainer(build_sites(partitions), 0.3)
        rng = random.Random(seed + 1)
        live = [list(p) for p in partitions]
        key = 1_000_000
        for _ in range(12):
            site_id = rng.randrange(3)
            if rng.random() < 0.45 and live[site_id]:
                victim = rng.choice(live[site_id])
                live[site_id].remove(victim)
                inc.delete(site_id, victim.key)
                naive.delete(site_id, victim.key)
            else:
                t = UncertainTuple(
                    key,
                    (float(rng.randrange(8)), float(rng.randrange(8))),
                    rng.random() * 0.99 + 0.01,
                )
                key += 1
                live[site_id].append(t)
                inc.insert(site_id, t)
                naive.insert(site_id, t)
            got, want = inc.skyline(), naive.skyline()
            assert [m.key for m in got.members] == [m.key for m in want.members]
            assert got.agrees_with(want, tol=1e-9)
        # Message-book symmetry: every message a maintainer recorded is
        # attributed to exactly one kind, and the incremental book never
        # ships more tuples than the recompute-everything strawman.
        for maintainer in (inc, naive):
            book = maintainer.stats
            assert book.messages == sum(book.by_kind.values())
            assert book.tuples_transmitted >= 0
        assert inc.stats.tuples_transmitted <= naive.stats.tuples_transmitted


class TestReports:
    def test_report_fields(self):
        maintainer, _, _ = fresh_maintainer(IncrementalMaintainer, seed=12)
        t = UncertainTuple(99_004, (0.5, 0.5), 0.5)
        report = maintainer.insert(0, t)
        assert report.operation == "insert"
        assert report.key == t.key
        assert report.seconds >= 0.0
        assert report.tuples_transmitted >= 0

"""Coordinator protocol behaviour, observed through recording endpoints."""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.distributed.dsud import DSUD
from repro.distributed.edsud import EDSUD
from repro.distributed.site import LocalSite
from repro.net.transport import RecordingEndpoint

from ..conftest import make_random_database


def recorded_run(coordinator_cls, m=4, n=240, q=0.3, seed=1, **kwargs):
    db = make_random_database(n, 2, seed=seed, grid=10)
    log = []
    sites = [
        RecordingEndpoint(LocalSite(i, db[i::m]), log=log) for i in range(m)
    ]
    coordinator = coordinator_cls(sites, q, **kwargs)
    result = coordinator.run()
    return result, log, db, coordinator


class TestConstruction:
    def test_requires_sites(self):
        with pytest.raises(ValueError):
            DSUD([], 0.3)

    def test_requires_valid_threshold(self):
        site = LocalSite(0, make_random_database(10, 2, seed=1))
        with pytest.raises(ValueError):
            DSUD([site], 0.0)
        with pytest.raises(ValueError):
            DSUD([site], 1.2)


@pytest.mark.parametrize("coordinator_cls", [DSUD, EDSUD])
class TestProtocolInvariants:
    def test_every_site_prepared_exactly_once(self, coordinator_cls):
        _, log, _, _ = recorded_run(coordinator_cls)
        prepares = [c for c in log if c.method == "prepare"]
        assert sorted(c.site_id for c in prepares) == [0, 1, 2, 3]

    def test_feedback_never_returns_to_origin(self, coordinator_cls):
        """The Server-Delivery phase excludes the tuple's own site."""
        _, log, db, _ = recorded_run(coordinator_cls)
        origin = {}
        for call in log:
            if call.method == "pop_representative" and call.result is not None:
                origin[call.result.tuple.key] = call.site_id
        for call in log:
            if call.method == "probe_and_prune":
                key = call.args[0].key
                assert origin[key] != call.site_id

    def test_broadcast_reaches_all_other_sites(self, coordinator_cls):
        _, log, _, _ = recorded_run(coordinator_cls, m=3)
        deliveries = {}
        for call in log:
            if call.method == "probe_and_prune":
                deliveries.setdefault(call.args[0].key, set()).add(call.site_id)
        for key, sites in deliveries.items():
            assert len(sites) == 2  # m - 1

    def test_results_reported_progressively(self, coordinator_cls):
        result, _, _, _ = recorded_run(coordinator_cls)
        events = result.progress.events
        assert len(events) == result.result_count
        bandwidths = [e.tuples_transmitted for e in events]
        assert bandwidths == sorted(bandwidths)
        assert bandwidths[-1] <= result.bandwidth

    def test_bandwidth_identity(self, coordinator_cls):
        """tuples = to-server + from-server, and both directions are sane."""
        result, log, _, _ = recorded_run(coordinator_cls)
        stats = result.stats
        assert stats.tuples_transmitted == stats.tuples_to_server + stats.tuples_from_server
        pops = sum(
            1 for c in log if c.method == "pop_representative" and c.result is not None
        )
        probes = sum(1 for c in log if c.method == "probe_and_prune")
        assert stats.tuples_to_server == pops
        assert stats.tuples_from_server == probes

    def test_every_result_meets_threshold(self, coordinator_cls):
        result, _, _, _ = recorded_run(coordinator_cls, q=0.4)
        assert all(m.probability >= 0.4 for m in result.answer)

    def test_run_result_fields(self, coordinator_cls):
        result, _, db, _ = recorded_run(coordinator_cls)
        assert result.algorithm in ("DSUD", "e-DSUD")
        assert result.iterations > 0
        assert result.ceiling(4) == result.result_count * 4
        assert result.algorithm in result.summary()

    def test_site_pruning_stats_surfaced(self, coordinator_cls):
        result, log, _, _ = recorded_run(coordinator_cls)
        pruned_via_replies = sum(
            c.result.pruned for c in log if c.method == "probe_and_prune"
        )
        assert result.extra["site_pruned_total"] >= pruned_via_replies


class TestSingleSite:
    @pytest.mark.parametrize("coordinator_cls", [DSUD, EDSUD])
    def test_degenerate_single_site(self, coordinator_cls):
        db = make_random_database(100, 2, seed=2, grid=8)
        site = LocalSite(0, db)
        result = coordinator_cls([site], 0.3).run()
        central = prob_skyline_sfs(db, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)
        # With one site there is nobody to broadcast to.
        assert result.stats.tuples_from_server == 0


class TestEmptySites:
    @pytest.mark.parametrize("coordinator_cls", [DSUD, EDSUD])
    def test_all_sites_empty(self, coordinator_cls):
        sites = [LocalSite(i, []) for i in range(3)]
        result = coordinator_cls(sites, 0.3).run()
        assert result.result_count == 0
        assert result.bandwidth == 0

    @pytest.mark.parametrize("coordinator_cls", [DSUD, EDSUD])
    def test_some_sites_empty(self, coordinator_cls):
        db = make_random_database(90, 2, seed=3, grid=8)
        sites = [LocalSite(0, db), LocalSite(1, []), LocalSite(2, [])]
        result = coordinator_cls(sites, 0.3).run()
        central = prob_skyline_sfs(db, 0.3)
        assert result.answer.agrees_with(central, tol=1e-9)

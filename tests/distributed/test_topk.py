"""Top-k probabilistic skyline (the ``limit=`` extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prob_skyline import prob_skyline_brute_force
from repro.distributed.coordinator import TopKBuffer
from repro.distributed.query import distributed_skyline

from ..conftest import make_random_database


def top_k_truth(db, q, k):
    """The k most probable qualified tuples, centrally computed."""
    answer = prob_skyline_brute_force(db, q)
    return answer.keys()[:k], answer.probabilities()


class TestTopKBuffer:
    def test_limit_validation(self):
        with pytest.raises(ValueError):
            TopKBuffer(0)

    def test_drains_in_probability_order(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(3)
        for key, p in ((1, 0.4), (2, 0.9), (3, 0.6)):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), p)
        emitted = []
        done = buffer.drain(0.0, lambda t, p: emitted.append((t.key, p)))
        assert done
        assert [k for k, _ in emitted] == [2, 3, 1]

    def test_cap_blocks_uncertain_emissions(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(2)
        buffer.offer(UncertainTuple(1, (0.0,), 0.5), 0.6)
        emitted = []
        done = buffer.drain(0.7, lambda t, p: emitted.append(t.key))
        assert not done and emitted == []
        done = buffer.drain(0.5, lambda t, p: emitted.append(t.key))
        assert not done and emitted == [1]

    def test_limit_one_stops_after_first_emission(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(1)
        buffer.offer(UncertainTuple(1, (0.0,), 0.5), 0.9)
        buffer.offer(UncertainTuple(2, (0.0,), 0.5), 0.8)
        emitted = []
        done = buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert done and emitted == [1]
        # further drains are inert: the limit has been hit
        assert buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert emitted == [1]

    def test_probability_ties_break_on_key(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(3)
        for key in (9, 3, 6):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), 0.7)
        emitted = []
        buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        # equal probabilities emit in deterministic key order
        assert emitted == [3, 6, 9]

    def test_flush_after_partial_drain_releases_the_rest(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(5)
        for key, p in ((1, 0.9), (2, 0.5), (3, 0.3)):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), p)
        emitted = []
        done = buffer.drain(0.6, lambda t, p: emitted.append(t.key))
        assert not done and emitted == [1]  # 0.5 and 0.3 held back
        buffer.flush(lambda t, p: emitted.append(t.key))
        assert emitted == [1, 2, 3]
        assert buffer.emitted == 3


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestTopKQueries:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_returns_k_most_probable(self, algorithm, k):
        db = make_random_database(300, 2, seed=1, grid=10)
        partitions = [db[i::4] for i in range(4)]
        want_keys, probs = top_k_truth(db, 0.3, k)
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm, limit=k)
        assert result.answer.keys() == want_keys
        for key, p in result.answer.probabilities().items():
            assert p == pytest.approx(probs[key])

    def test_emission_order_is_descending_probability(self, algorithm):
        db = make_random_database(250, 2, seed=2, grid=10)
        partitions = [db[i::3] for i in range(3)]
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm, limit=5)
        emitted = [e.global_probability for e in result.progress.events]
        assert emitted == sorted(emitted, reverse=True)

    def test_limit_larger_than_answer_returns_everything(self, algorithm):
        db = make_random_database(150, 2, seed=3, grid=10)
        partitions = [db[i::3] for i in range(3)]
        full = distributed_skyline(partitions, 0.3, algorithm=algorithm)
        limited = distributed_skyline(
            partitions, 0.3, algorithm=algorithm, limit=10_000
        )
        assert limited.answer.agrees_with(full.answer, tol=1e-9)

    def test_small_limit_saves_bandwidth(self, algorithm):
        db = make_random_database(600, 3, seed=4, grid=12)
        partitions = [db[i::5] for i in range(5)]
        full = distributed_skyline(partitions, 0.2, algorithm=algorithm)
        assert full.result_count > 5
        top1 = distributed_skyline(partitions, 0.2, algorithm=algorithm, limit=1)
        assert top1.bandwidth < full.bandwidth

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_topk_property(self, algorithm, seed, k):
        db = make_random_database(80, 2, seed=seed, grid=6)
        partitions = [db[i::3] for i in range(3)]
        want_keys, probs = top_k_truth(db, 0.3, k)
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm, limit=k)
        assert result.answer.keys() == want_keys


class TestTopKValidation:
    @pytest.mark.parametrize("algorithm", ["ship-all", "naive"])
    def test_bulk_algorithms_reject_limit(self, algorithm):
        with pytest.raises(ValueError, match="progressive"):
            distributed_skyline([[]], 0.3, algorithm=algorithm, limit=3)

"""Top-k probabilistic skyline (the ``limit=`` extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prob_skyline import prob_skyline_brute_force
from repro.core.tuples import UncertainTuple
from repro.distributed.coordinator import TopKBuffer
from repro.distributed.query import distributed_skyline
from repro.fault.coverage import TupleCoverage

from ..conftest import make_random_database


def make_coverage(t, bound, origin=0, missing=()):
    """A TupleCoverage in the state the coordinator's broadcast leaves it."""
    return TupleCoverage(
        key=t.key,
        origin=origin,
        tuple=t,
        upper_bound=bound,
        contributing={origin},
        missing=set(missing),
    )


def top_k_truth(db, q, k):
    """The k most probable qualified tuples, centrally computed."""
    answer = prob_skyline_brute_force(db, q)
    return answer.keys()[:k], answer.probabilities()


class TestTopKBuffer:
    def test_limit_validation(self):
        with pytest.raises(ValueError):
            TopKBuffer(0)

    def test_drains_in_probability_order(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(3)
        for key, p in ((1, 0.4), (2, 0.9), (3, 0.6)):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), p)
        emitted = []
        done = buffer.drain(0.0, lambda t, p: emitted.append((t.key, p)))
        assert done
        assert [k for k, _ in emitted] == [2, 3, 1]

    def test_cap_blocks_uncertain_emissions(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(2)
        buffer.offer(UncertainTuple(1, (0.0,), 0.5), 0.6)
        emitted = []
        done = buffer.drain(0.7, lambda t, p: emitted.append(t.key))
        assert not done and emitted == []
        done = buffer.drain(0.5, lambda t, p: emitted.append(t.key))
        assert not done and emitted == [1]

    def test_limit_one_stops_after_first_emission(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(1)
        buffer.offer(UncertainTuple(1, (0.0,), 0.5), 0.9)
        buffer.offer(UncertainTuple(2, (0.0,), 0.5), 0.8)
        emitted = []
        done = buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert done and emitted == [1]
        # further drains are inert: the limit has been hit
        assert buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert emitted == [1]

    def test_probability_ties_break_on_key(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(3)
        for key in (9, 3, 6):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), 0.7)
        emitted = []
        buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        # equal probabilities emit in deterministic key order
        assert emitted == [3, 6, 9]

    def test_flush_after_partial_drain_releases_the_rest(self):
        from repro.core.tuples import UncertainTuple

        buffer = TopKBuffer(5)
        for key, p in ((1, 0.9), (2, 0.5), (3, 0.3)):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), p)
        emitted = []
        done = buffer.drain(0.6, lambda t, p: emitted.append(t.key))
        assert not done and emitted == [1]  # 0.5 and 0.3 held back
        buffer.flush(lambda t, p: emitted.append(t.key))
        assert emitted == [1, 2, 3]
        assert buffer.emitted == 3

    def test_offer_bounds_memory_to_the_limit(self):
        # A query that resolves many qualified tuples before the first
        # drain must not hold all of them: exact entries beyond the
        # limit can never be emitted and are trimmed on offer.
        buffer = TopKBuffer(3)
        for key in range(100):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), 1.0 - key / 200.0)
        assert len(buffer) == 3
        emitted = []
        buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        # trimming never changes the emission semantics
        assert emitted == [0, 1, 2]

    def test_trim_keeps_inexact_entries(self):
        # An inexact bound may tighten below the tail entry, so nothing
        # may be dropped while a leading entry is still inexact.
        buffer = TopKBuffer(1)
        t1 = UncertainTuple(1, (0.0,), 0.5)
        buffer.offer(t1, 0.9, coverage=make_coverage(t1, 0.9, missing={2}))
        for key in (5, 6, 7):
            buffer.offer(UncertainTuple(key, (0.0,), 0.5), 0.5)
        assert len(buffer) == 4  # everything retained

    def test_tie_with_the_cap_is_held_not_emitted(self):
        # An unresolved candidate could still tie at exactly the cap;
        # emission requires a strict win (documented tie rule).
        buffer = TopKBuffer(2)
        buffer.offer(UncertainTuple(1, (0.0,), 0.5), 0.6)
        emitted = []
        assert not buffer.drain(0.6, lambda t, p: emitted.append(t.key))
        assert emitted == []
        assert buffer.drain(0.59, lambda t, p: emitted.append(t.key)) is False
        assert emitted == [1]

    def test_cross_site_key_collision_does_not_raise(self):
        # Two sites can surface tuples sharing a key; the old heap fell
        # through to comparing UncertainTuple objects (TypeError).  The
        # (key, origin) namespace keeps the order total + deterministic.
        ta = UncertainTuple(7, (0.0,), 0.5)
        tb = UncertainTuple(7, (1.0,), 0.5)
        buffer = TopKBuffer(3)
        buffer.offer(ta, 0.5, coverage=make_coverage(ta, 0.5, origin=2))
        buffer.offer(tb, 0.5, coverage=make_coverage(tb, 0.5, origin=1))
        emitted = []
        buffer.drain(0.0, lambda t, p: emitted.append((t.key, t.values)))
        assert emitted == [(7, (1.0,)), (7, (0.0,))]  # origin order on ties

    def test_inexact_entries_never_drain(self):
        # A probability that is only a Corollary-1 upper bound (site
        # DOWN during the broadcast) must wait for reintegration.
        t1 = UncertainTuple(1, (0.0,), 0.5)
        cov = make_coverage(t1, 0.9, missing={2})
        buffer = TopKBuffer(2)
        buffer.offer(t1, 0.9, coverage=cov)
        emitted = []
        assert not buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert emitted == [] and buffer.inexact_entries() != []
        # the recovered site's re-probe lands in the shared coverage
        cov.upper_bound *= 0.8
        cov.missing.discard(2)
        cov.contributing.add(2)
        assert not buffer.drain(0.0, lambda t, p: emitted.append((t.key, p)))
        assert emitted == [(1, pytest.approx(0.72))]

    def test_exact_entry_waits_behind_a_larger_inexact_bound(self):
        # An exact 0.8 cannot be released while a buffered bound of 0.9
        # could still resolve above it — emission order would be wrong.
        t1 = UncertainTuple(1, (0.0,), 0.5)
        t2 = UncertainTuple(2, (1.0,), 0.5)
        cov = make_coverage(t2, 0.9, missing={2})
        buffer = TopKBuffer(2)
        buffer.offer(t1, 0.8)
        buffer.offer(t2, 0.9, coverage=cov)
        emitted = []
        assert not buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert emitted == []
        cov.upper_bound = 0.5  # re-probe proves t2 below t1
        cov.missing.clear()
        assert buffer.drain(0.0, lambda t, p: emitted.append(t.key))
        assert emitted == [1, 2]

    def test_retracted_buffered_entry_never_emits(self):
        # Tightening below q retracts *buffered* state — the tuple was
        # never reported, so the progressive guarantee holds.
        t1 = UncertainTuple(1, (0.0,), 0.5)
        cov = make_coverage(t1, 0.8, missing={2})
        buffer = TopKBuffer(1, threshold=0.3)
        buffer.offer(t1, 0.8, coverage=cov)
        cov.upper_bound = 0.2
        cov.missing.clear()
        emitted = []
        buffer.flush(lambda t, p: emitted.append(t.key))
        assert emitted == [] and len(buffer) == 0

    def test_flush_emits_inexact_entries_at_their_bound(self):
        # Natural termination with a site permanently DOWN: degraded
        # superset semantics — emit at the Corollary-1 bound, and leave
        # beyond-limit entries pending for the coverage report.
        t1 = UncertainTuple(1, (0.0,), 0.5)
        t2 = UncertainTuple(2, (1.0,), 0.5)
        buffer = TopKBuffer(1)
        buffer.offer(t1, 0.7, coverage=make_coverage(t1, 0.7, missing={2}))
        buffer.offer(t2, 0.6, coverage=make_coverage(t2, 0.6, missing={2}))
        emitted = []
        assert buffer.flush(lambda t, p: emitted.append((t.key, p)))
        assert emitted == [(1, 0.7)]
        assert [e.tuple.key for e in buffer.inexact_entries()] == [2]


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestTopKQueries:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_returns_k_most_probable(self, algorithm, k):
        db = make_random_database(300, 2, seed=1, grid=10)
        partitions = [db[i::4] for i in range(4)]
        want_keys, probs = top_k_truth(db, 0.3, k)
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm, limit=k)
        assert result.answer.keys() == want_keys
        for key, p in result.answer.probabilities().items():
            assert p == pytest.approx(probs[key])

    def test_emission_order_is_descending_probability(self, algorithm):
        db = make_random_database(250, 2, seed=2, grid=10)
        partitions = [db[i::3] for i in range(3)]
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm, limit=5)
        emitted = [e.global_probability for e in result.progress.events]
        assert emitted == sorted(emitted, reverse=True)

    def test_limit_larger_than_answer_returns_everything(self, algorithm):
        db = make_random_database(150, 2, seed=3, grid=10)
        partitions = [db[i::3] for i in range(3)]
        full = distributed_skyline(partitions, 0.3, algorithm=algorithm)
        limited = distributed_skyline(
            partitions, 0.3, algorithm=algorithm, limit=10_000
        )
        assert limited.answer.agrees_with(full.answer, tol=1e-9)

    def test_small_limit_saves_bandwidth(self, algorithm):
        db = make_random_database(600, 3, seed=4, grid=12)
        partitions = [db[i::5] for i in range(5)]
        full = distributed_skyline(partitions, 0.2, algorithm=algorithm)
        assert full.result_count > 5
        top1 = distributed_skyline(partitions, 0.2, algorithm=algorithm, limit=1)
        assert top1.bandwidth < full.bandwidth

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_topk_property(self, algorithm, seed, k):
        db = make_random_database(80, 2, seed=seed, grid=6)
        partitions = [db[i::3] for i in range(3)]
        want_keys, probs = top_k_truth(db, 0.3, k)
        result = distributed_skyline(partitions, 0.3, algorithm=algorithm, limit=k)
        assert result.answer.keys() == want_keys


class TestTopKValidation:
    @pytest.mark.parametrize("algorithm", ["ship-all", "naive"])
    def test_bulk_algorithms_reject_limit(self, algorithm):
        with pytest.raises(ValueError, match="progressive"):
            distributed_skyline([[]], 0.3, algorithm=algorithm, limit=3)

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random
from typing import List, Optional

import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.core.tuples import UncertainTuple

# Profiles: "ci" (default) disables the wall-clock deadline so runs on
# loaded machines never flake; "thorough" raises the example budget for
# overnight soak testing.  Select via HYPOTHESIS_PROFILE=thorough.
settings.register_profile("ci", deadline=None)
settings.register_profile("thorough", deadline=None, max_examples=500)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

def probabilities() -> st.SearchStrategy[float]:
    """Existential probabilities in (0, 1]."""
    return st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


def coordinates(max_value: float = 10.0) -> st.SearchStrategy[float]:
    """Attribute values on a small grid so dominance ties actually occur."""
    return st.integers(min_value=0, max_value=int(max_value)).map(float)


def uncertain_tuples(
    dimensionality: int, start_key: int = 0
) -> st.SearchStrategy[List[UncertainTuple]]:
    """Lists of well-formed uncertain tuples with unique keys."""

    def build(rows):
        return [
            UncertainTuple(start_key + i, tuple(values), p)
            for i, (values, p) in enumerate(rows)
        ]

    row = st.tuples(
        st.lists(coordinates(), min_size=dimensionality, max_size=dimensionality),
        probabilities(),
    )
    return st.lists(row, min_size=0, max_size=24).map(build)


def small_databases(
    min_dim: int = 1, max_dim: int = 4
) -> st.SearchStrategy[List[UncertainTuple]]:
    """Databases of random (but consistent) dimensionality."""
    return st.integers(min_value=min_dim, max_value=max_dim).flatmap(uncertain_tuples)


# ----------------------------------------------------------------------
# plain fixtures
# ----------------------------------------------------------------------

def make_random_database(
    n: int,
    d: int,
    seed: int,
    grid: Optional[int] = None,
    start_key: int = 0,
) -> List[UncertainTuple]:
    """Seeded random database; ``grid`` quantizes values to force ties."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        if grid:
            values = tuple(float(rng.randrange(grid)) for _ in range(d))
        else:
            values = tuple(rng.random() for _ in range(d))
        out.append(
            UncertainTuple(start_key + i, values, rng.random() * 0.99 + 0.01)
        )
    return out


@pytest.fixture
def small_db():
    """A tiny fixed database used by several exact-value tests."""
    return make_random_database(30, 2, seed=7, grid=8)


@pytest.fixture
def medium_db():
    return make_random_database(300, 3, seed=11)

"""Fault schedules, the injecting endpoint, and the retry policy."""

import pytest

from repro.distributed.site import LocalSite
from repro.fault.errors import SiteCrashed, SiteTimeout
from repro.fault.injection import FaultyEndpoint
from repro.fault.retry import RetryPolicy, call_with_retry
from repro.fault.schedule import FaultKind, FaultSchedule

from ..conftest import make_random_database


def make_faulty(schedule, seed=1, n=40):
    site = LocalSite(0, make_random_database(n, 2, seed=seed, grid=8))
    return FaultyEndpoint(site, schedule, sleep=None)


class TestFaultSchedule:
    def test_no_rules_no_faults(self):
        schedule = FaultSchedule()
        assert schedule.decide(0, "prepare", 1) is None
        assert not schedule

    def test_crash_window(self):
        schedule = FaultSchedule().crash(0, at_call=3, until_call=5)
        verdicts = [schedule.decide(0, "prepare", i) for i in range(1, 7)]
        assert [v.kind if v else None for v in verdicts] == [
            None, None, FaultKind.CRASH, FaultKind.CRASH, None, None,
        ]

    def test_permanent_crash(self):
        schedule = FaultSchedule().crash(1, at_call=2)
        assert schedule.decide(1, "prepare", 1) is None
        assert schedule.decide(1, "prepare", 100).kind is FaultKind.CRASH
        assert schedule.decide(0, "prepare", 100) is None  # other site clean

    def test_method_filter(self):
        schedule = FaultSchedule().timeout(0, methods=["probe_and_prune"])
        assert schedule.decide(0, "prepare", 1) is None
        assert schedule.decide(0, "probe_and_prune", 1).kind is FaultKind.TIMEOUT

    def test_slow_carries_delay(self):
        schedule = FaultSchedule().slow(0, delay=0.25)
        action = schedule.decide(0, "prepare", 1)
        assert action.kind is FaultKind.DELAY
        assert action.delay == pytest.approx(0.25)

    def test_flaky_is_deterministic_and_seed_dependent(self):
        a = FaultSchedule(seed=42).flaky(0, probability=0.5)
        b = FaultSchedule(seed=42).flaky(0, probability=0.5)
        c = FaultSchedule(seed=43).flaky(0, probability=0.5)
        def verdict(s, i):
            return s.decide(0, "prepare", i) is not None

        seq_a = [verdict(a, i) for i in range(1, 50)]
        assert seq_a == [verdict(b, i) for i in range(1, 50)]
        assert seq_a != [verdict(c, i) for i in range(1, 50)]
        assert any(seq_a) and not all(seq_a)  # p=0.5 actually mixes

    def test_flaky_probability_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule().flaky(0, probability=1.5)


class TestFaultyEndpoint:
    def test_clean_schedule_is_transparent(self):
        endpoint = make_faulty(FaultSchedule())
        size = endpoint.prepare(0.3)
        assert size >= 1
        assert endpoint.pop_representative() is not None
        assert endpoint.injected == []

    def test_injected_crash_raises_before_the_site_sees_the_call(self):
        endpoint = make_faulty(FaultSchedule().crash(0, at_call=2, until_call=3))
        endpoint.prepare(0.3)  # call 1 passes
        before = endpoint.inner.queue_size()
        with pytest.raises(SiteCrashed):
            endpoint.pop_representative()  # call 2 crashes
        # the inner queue was not popped: a retry cannot skip a candidate
        assert endpoint.inner.queue_size() == before
        q = endpoint.pop_representative()  # call 3: recovered
        assert q is not None

    def test_injected_timeout_type(self):
        endpoint = make_faulty(FaultSchedule().timeout(0))
        with pytest.raises(SiteTimeout):
            endpoint.prepare(0.3)

    def test_faults_are_journalled(self):
        endpoint = make_faulty(FaultSchedule().timeout(0, at_call=1, until_call=2))
        with pytest.raises(SiteTimeout):
            endpoint.prepare(0.3)
        endpoint.prepare(0.3)
        assert len(endpoint.injected) == 1
        record = endpoint.injected[0]
        assert (record.method, record.call_index) == ("prepare", 1)

    def test_slow_reply_sleeps_then_answers(self):
        slept = []
        site = LocalSite(0, make_random_database(20, 2, seed=3, grid=8))
        endpoint = FaultyEndpoint(
            site, FaultSchedule().slow(0, delay=0.5), sleep=slept.append
        )
        assert endpoint.prepare(0.3) >= 0
        assert slept == [0.5]

    def test_passthrough_of_unfaulted_surface(self):
        endpoint = make_faulty(FaultSchedule().crash(0))
        # ship_all is outside the faulted protocol surface
        assert len(endpoint.ship_all()) == 40
        assert endpoint.calls == 0


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, max_backoff=0.3, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)  # capped

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5, seed=7)
        assert policy.backoff(0, site_id=1) == policy.backoff(0, site_id=1)
        assert policy.backoff(0, site_id=1) != policy.backoff(0, site_id=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_retry_until_success(self):
        attempts = []

        def sometimes():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("flap")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_backoff=0.0, jitter=0.0)
        value, error = call_with_retry(sometimes, policy, sleep=None)
        assert (value, error) == ("ok", None)
        assert len(attempts) == 3

    def test_exhaustion_returns_error_instead_of_raising(self):
        def always():
            raise TimeoutError("dead")

        policy = RetryPolicy(max_attempts=3, base_backoff=0.0, jitter=0.0)
        value, error = call_with_retry(always, policy, sleep=None)
        assert value is None
        assert isinstance(error, TimeoutError)

    def test_application_errors_propagate(self):
        def broken():
            raise RuntimeError("bug, not a fault")

        with pytest.raises(RuntimeError):
            call_with_retry(broken, RetryPolicy(), sleep=None)

    def test_deadline_stops_early(self):
        calls = []

        def always():
            calls.append(1)
            raise ConnectionError("down")

        policy = RetryPolicy(
            max_attempts=10, base_backoff=1.0, multiplier=1.0,
            jitter=0.0, deadline=2.5,
        )
        _, error = call_with_retry(always, policy, sleep=lambda s: None)
        assert error is not None
        # 1s + 1s fits the 2.5s budget, the third backoff would not
        assert len(calls) == 3

    def test_on_retry_hook_sees_each_backoff(self):
        seen = []

        def always():
            raise ConnectionError("down")

        policy = RetryPolicy(max_attempts=3, base_backoff=0.1, jitter=0.0)
        call_with_retry(
            always, policy, sleep=lambda s: None,
            on_retry=lambda attempt, delay, exc: seen.append((attempt, delay)),
        )
        assert seen == [(0, pytest.approx(0.1)), (1, pytest.approx(0.2))]

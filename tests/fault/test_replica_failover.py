"""Chaos × replication acceptance: rf=2 failover reproduces the fault-free run.

The replication contract is stronger than the Corollary-1 degraded
mode it replaces: with ``replication_factor=2`` and *any* single-site
fault schedule, the promoted buddy completes the in-flight round with
the same Eq.-9 factor at the same multiplication position, so the
query's result keys, probabilities, **emission order**, and
``coverage.exact`` all match an identical fault-free run — no
Corollary-1 upper bounds, no ``[buffered]`` top-k holds.

Also here: the §5.4 write-forwarding regression (a delete applied only
to the primary must not be resurrected by a failover) and the rf=1
bit-identity guarantee (the replication layer is invisible until a
second copy actually exists).
"""

import pytest

from repro.core.tuples import UncertainTuple
from repro.distributed.edsud import EDSUD
from repro.distributed.query import build_sites, distributed_skyline
from repro.distributed.updates import IncrementalMaintainer
from repro.fault.injection import FaultyEndpoint
from repro.fault.retry import RetryPolicy
from repro.fault.schedule import FaultSchedule
from repro.replica.manager import ReplicaManager

from ..conftest import make_random_database

Q = 0.25
SITES = 4
VICTIM = 1


def make_partitions(n=120, d=3, seed=11):
    db = make_random_database(n, d, seed=seed)
    return [db[i::SITES] for i in range(SITES)]


def fast_retries():
    return RetryPolicy(max_attempts=2, base_backoff=1e-4, max_backoff=1e-3)


def emission(result):
    """(key, probability) in the order tuples were released to the client."""
    return [(m.key, m.probability) for m in result.answer]


SCHEDULES = {
    "prepare-crash": lambda: FaultSchedule(seed=0).crash(VICTIM, at_call=1),
    "permanent-crash": lambda: FaultSchedule(seed=0).crash(VICTIM, at_call=5),
    "crash-recover": lambda: FaultSchedule(seed=0).crash(
        VICTIM, at_call=4, until_call=10
    ),
    "timeout-window": lambda: FaultSchedule(seed=0).timeout(
        VICTIM, at_call=4, until_call=7
    ),
}


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
@pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
class TestFailoverExactness:
    @pytest.mark.parametrize("limit,batch_size", [(None, 1), (None, 3), (5, 1), (5, 5)])
    def test_rf2_single_site_fault_matches_fault_free_run(
        self, algorithm, schedule_name, limit, batch_size
    ):
        partitions = make_partitions()
        baseline = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=limit, batch_size=batch_size
        )
        chaotic = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=limit, batch_size=batch_size,
            fault_schedule=SCHEDULES[schedule_name](),
            retry_policy=fast_retries(),
            replication_factor=2,
        )
        assert emission(chaotic) == emission(baseline)
        coverage = chaotic.coverage
        assert coverage is not None
        assert coverage.complete  # exact — not Corollary-1 degraded
        assert not coverage.degraded
        assert not coverage.buffered


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestReplicationLayerInvisibleAtFactorOne:
    def test_rf1_chaos_books_and_coverage_bit_identical(self, algorithm):
        partitions = make_partitions()
        kwargs = dict(
            algorithm=algorithm,
            retry_policy=fast_retries(),
        )
        plain = distributed_skyline(
            partitions, Q,
            fault_schedule=FaultSchedule(seed=0).crash(VICTIM, at_call=5),
            **kwargs,
        )
        layered = distributed_skyline(
            partitions, Q,
            fault_schedule=FaultSchedule(seed=0).crash(VICTIM, at_call=5),
            replication_factor=1,
            **kwargs,
        )
        assert emission(layered) == emission(plain)
        assert layered.stats.snapshot() == plain.stats.snapshot()
        assert layered.coverage.degraded == plain.coverage.degraded
        assert layered.coverage.buffered == plain.coverage.buffered

    def test_rf2_healthy_query_books_identical_to_rf1(self, algorithm):
        partitions = make_partitions()
        plain = distributed_skyline(partitions, Q, algorithm=algorithm)
        replicated = distributed_skyline(
            partitions, Q, algorithm=algorithm, replication_factor=2
        )
        assert emission(replicated) == emission(plain)
        assert replicated.stats.snapshot() == plain.stats.snapshot()


class TestFailoverAccounting:
    def test_failover_traffic_lands_on_the_query_books(self):
        partitions = make_partitions()
        result = distributed_skyline(
            partitions, Q, algorithm="edsud",
            fault_schedule=FaultSchedule(seed=0).crash(VICTIM, at_call=5),
            retry_policy=fast_retries(),
            replication_factor=2,
        )
        assert result.stats.failovers == 1
        # Replaying the in-flight feedback onto the promoted buddy is
        # tuple-bearing traffic and must be visible in the ledger.
        assert result.stats.by_kind.get("failover_probe", 0) > 0

    def test_failback_resyncs_via_digest_exchange(self):
        partitions = make_partitions()
        result = distributed_skyline(
            partitions, Q, algorithm="edsud",
            fault_schedule=FaultSchedule(seed=0).crash(
                VICTIM, at_call=4, until_call=8
            ),
            retry_policy=fast_retries(),
            replication_factor=2,
        )
        assert result.stats.failovers == 1
        assert result.stats.failbacks == 1
        assert result.stats.by_kind.get("digest", 0) > 0

    def test_provisioning_never_bills_the_query(self):
        partitions = make_partitions()
        result = distributed_skyline(
            partitions, Q, algorithm="edsud", replication_factor=2
        )
        assert result.stats.by_kind.get("replica_sync", 0) == 0


class TestWriteForwardingRegression:
    """§5.4 updates must reach replicas, or failover corrupts the data."""

    def _cluster(self):
        partitions = make_partitions(seed=23)
        sites = build_sites(partitions)
        manager = ReplicaManager(sites, 2)
        manager.ensure_provisioned()  # replicas exist before any update
        maintainer = IncrementalMaintainer(sites, Q, replica_manager=manager)
        return sites, manager, maintainer

    def _chaos_query(self, sites, manager, at_call=3):
        schedule = FaultSchedule(seed=0).crash(VICTIM, at_call=at_call)
        wrapped = [FaultyEndpoint(s, schedule) for s in sites]
        return EDSUD(
            wrapped, Q,
            retry_policy=fast_retries(),
            replica_manager=manager,
        ).run()

    def _victim_member(self, maintainer):
        owned = {t.key for t in maintainer._site(VICTIM).database.values()}
        members = [m for m in maintainer.skyline().members if m.key in owned]
        assert members, "fixture needs a skyline member on the victim site"
        return max(members, key=lambda m: m.probability)

    def test_forwarded_delete_survives_failover(self):
        sites, manager, maintainer = self._cluster()
        doomed = self._victim_member(maintainer)
        maintainer.delete(VICTIM, doomed.key)
        result = self._chaos_query(sites, manager)
        assert result.stats.failovers == 1
        assert doomed.key not in {m.key for m in result.answer}

    def test_unforwarded_delete_is_resurrected_proving_the_bug_class(self):
        # The defect this PR closes: apply the same delete primary-only
        # (the pre-forwarding code path) and the promoted replica
        # happily re-reports the deleted tuple.
        sites, manager, maintainer = self._cluster()
        doomed = self._victim_member(maintainer)
        maintainer._site(VICTIM).delete_tuple(doomed.key)
        result = self._chaos_query(sites, manager)
        assert result.stats.failovers == 1
        assert doomed.key in {m.key for m in result.answer}

    def test_forwarded_insert_is_served_by_the_promoted_replica(self):
        sites, manager, maintainer = self._cluster()
        fresh = UncertainTuple(9100, (0.0, 0.0, 0.0), 0.99)
        maintainer.insert(VICTIM, fresh)
        assert fresh.key in {m.key for m in maintainer.skyline().members}
        result = self._chaos_query(sites, manager)
        assert result.stats.failovers == 1
        assert fresh.key in {m.key for m in result.answer}

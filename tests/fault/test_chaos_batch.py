"""Chaos under batched probe rounds: Corollary-1 bounds stay sound.

Batching changes the RPC shape — one FEEDBACK message carries several
quaternions, and one crashed RPC therefore loses *several* Eq.-9
factors at once.  The fault machinery must compose unchanged: every
lost factor is ≤ 1, so each affected result still carries a sound
Corollary-1 upper bound, and a recovered site is re-probed for every
factor it owes regardless of how they were originally batched.
"""

import pytest

from repro.distributed.query import distributed_skyline
from repro.fault.retry import RetryPolicy
from repro.fault.schedule import FaultSchedule

from ..conftest import make_random_database

Q = 0.3
SITES = 3
VICTIM = 1
BATCH = 3


def make_partitions(n=240, d=2, seed=1, grid=10):
    db = make_random_database(n, d, seed=seed, grid=grid)
    return [db[i::SITES] for i in range(SITES)]


def fast_retries(attempts=2):
    return RetryPolicy(max_attempts=attempts, base_backoff=1e-4, max_backoff=1e-3)


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestBatchedChaos:
    def test_crash_mid_batch_yields_sound_upper_bounds(self, algorithm):
        partitions = make_partitions()
        exact = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=BATCH
        )
        assert exact.coverage.complete
        exact_probs = exact.answer.probabilities()

        schedule = FaultSchedule(seed=7).crash(VICTIM, at_call=4)
        degraded = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=BATCH,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )

        coverage = degraded.coverage
        assert not coverage.complete
        assert coverage.down_sites == (VICTIM,)
        assert degraded.stats.sites_lost == 1

        # Corollary 1: every reported probability is an upper bound on
        # the exact value — a whole batch of factors went missing with
        # the crashed RPC, and each missing factor is ≤ 1.
        for key, bound in degraded.answer.probabilities().items():
            if key in exact_probs:
                assert bound >= exact_probs[key] - 1e-9
        for key, (bound, contributing) in coverage.degraded.items():
            assert VICTIM not in contributing

        # Superset over reachable data, exactly as in the unbatched
        # chaos contract.
        surviving = {
            t.key
            for i, part in enumerate(partitions)
            if i != VICTIM
            for t in part
        }
        for key in exact_probs:
            if key in surviving:
                assert key in degraded.answer

    def test_recovery_replays_batched_factors_exactly(self, algorithm):
        partitions = make_partitions()
        exact = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=BATCH
        )
        schedule = FaultSchedule(seed=7).crash(VICTIM, at_call=4, until_call=6)
        recovered = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=BATCH,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )
        assert recovered.stats.sites_lost == 1
        assert recovered.stats.sites_recovered == 1
        assert recovered.coverage.complete
        assert recovered.answer.agrees_with(exact.answer, tol=1e-9)

    def test_unbatched_and_batched_degraded_answers_agree_on_keys(self, algorithm):
        """The degraded *key set* is a protocol property, not a batching one."""
        partitions = make_partitions()
        schedule = FaultSchedule(seed=7).crash(VICTIM, at_call=1)
        unbatched = distributed_skyline(
            partitions, Q, algorithm=algorithm,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )
        rebatched = distributed_skyline(
            partitions, Q, algorithm=algorithm, batch_size=BATCH,
            fault_schedule=FaultSchedule(seed=7).crash(VICTIM, at_call=1),
            retry_policy=fast_retries(),
        )
        assert set(rebatched.answer.keys()) == set(unbatched.answer.keys())

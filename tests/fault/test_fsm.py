"""The site lifecycle FSM and cluster health books."""

import pytest

from repro.fault.fsm import ClusterHealth, SiteLifecycle, SiteState


class TestSiteLifecycle:
    def test_starts_up(self):
        lc = SiteLifecycle(3)
        assert lc.state is SiteState.UP
        assert lc.is_up and not lc.is_down

    def test_full_failure_recovery_cycle(self):
        lc = SiteLifecycle(0)
        lc.to(SiteState.SUSPECT, "rpc failed")
        lc.to(SiteState.DOWN, "retries exhausted")
        lc.to(SiteState.RECOVERING, "liveness probe answered")
        lc.to(SiteState.UP, "reintegrated")
        assert [t.new for t in lc.history] == [
            SiteState.SUSPECT,
            SiteState.DOWN,
            SiteState.RECOVERING,
            SiteState.UP,
        ]

    def test_suspect_can_return_to_up(self):
        lc = SiteLifecycle(0)
        lc.to(SiteState.SUSPECT, "one failed attempt")
        lc.to(SiteState.UP, "retry succeeded")
        assert lc.is_up

    def test_illegal_transitions_raise(self):
        lc = SiteLifecycle(0)
        with pytest.raises(ValueError, match="illegal transition"):
            lc.to(SiteState.RECOVERING)  # UP cannot jump to RECOVERING
        lc.to(SiteState.DOWN, "crash")
        with pytest.raises(ValueError, match="illegal transition"):
            lc.to(SiteState.SUSPECT)  # DOWN must pass through RECOVERING

    def test_same_state_is_a_noop(self):
        lc = SiteLifecycle(0)
        lc.to(SiteState.UP)
        assert lc.history == []

    def test_failure_counter_resets_on_up(self):
        lc = SiteLifecycle(0)
        lc.record_failure()
        lc.record_failure()
        assert lc.consecutive_failures == 2
        assert lc.state is SiteState.SUSPECT
        lc.to(SiteState.UP, "recovered")
        assert lc.consecutive_failures == 0

    def test_transitions_carry_reasons(self):
        lc = SiteLifecycle(7)
        lc.to(SiteState.DOWN, "injected crash")
        t = lc.history[0]
        assert t.site_id == 7
        assert t.reason == "injected crash"
        assert (t.old, t.new) == (SiteState.UP, SiteState.DOWN)


class TestClusterHealth:
    def test_all_up_initially(self):
        health = ClusterHealth([0, 1, 2])
        assert health.up_sites() == [0, 1, 2]
        assert health.down_sites() == []
        assert not health.any_down

    def test_mark_down_and_recover(self):
        health = ClusterHealth([0, 1, 2])
        health.mark_down(1, "crash")
        assert health.any_down
        assert health.down_sites() == [1]
        assert health.is_down(1)
        health.mark_recovering(1, "ping ok")
        assert health.down_sites() == []  # RECOVERING is not DOWN
        assert health.any_down  # …but not healthy either
        health.mark_up(1, "reintegrated")
        assert not health.any_down
        assert health.up_sites() == [0, 1, 2]

    def test_mark_down_is_idempotent(self):
        health = ClusterHealth([0])
        health.mark_down(0, "a")
        health.mark_down(0, "b")
        assert len(health.lifecycle(0).history) == 1

    def test_transitions_aggregate_across_sites(self):
        health = ClusterHealth([0, 1])
        health.mark_down(1, "x")
        health.mark_suspect(0)
        transitions = health.transitions()
        assert {t.site_id for t in transitions} == {0, 1}

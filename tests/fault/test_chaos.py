"""Chaos acceptance tests: seeded fault plans against DSUD and e-DSUD.

Three contracts, straight from the failure-model design:

* **Degraded soundness** — killing a site mid-query still terminates,
  and every reported tuple's probability is a Corollary-1 *upper
  bound* on (hence ≥) its exact value from an identical fault-free
  run; every qualified tuple owned by a surviving site is still
  reported (the degraded answer is a superset over the reachable
  data).
* **Recovery exactness** — with a fail-then-recover window the site is
  reintegrated mid-query: its missed Eq.-9 factors are re-probed, the
  degraded bounds tighten (retracting anything that sinks below
  ``q``), and the final answer equals the fault-free answer exactly.
* **Zero overhead when healthy** — installing the retry/FSM/coverage
  layer changes nothing on a clean run: identical message books,
  identical answers.
"""

import pytest

from repro.core.prob_skyline import prob_skyline_sfs
from repro.distributed.query import build_sites, distributed_skyline
from repro.fault.injection import FaultyEndpoint
from repro.fault.retry import RetryPolicy
from repro.fault.schedule import FaultSchedule

from ..conftest import make_random_database

Q = 0.3
SITES = 3
VICTIM = 1


def make_partitions(n=240, d=2, seed=1, grid=10):
    db = make_random_database(n, d, seed=seed, grid=grid)
    return db, [db[i::SITES] for i in range(SITES)]


def fast_retries(attempts=2):
    """Real backoff sleeps, kept microscopic so chaos tests stay fast."""
    return RetryPolicy(max_attempts=attempts, base_backoff=1e-4, max_backoff=1e-3)


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestSiteLossMidQuery:
    def test_degraded_run_terminates_with_sound_upper_bounds(self, algorithm):
        db, partitions = make_partitions()
        exact = distributed_skyline(partitions, Q, algorithm=algorithm)
        assert exact.coverage is not None and exact.coverage.complete
        exact_probs = exact.answer.probabilities()

        # Kill the victim a few RPCs in (after PREPARE + initial fill)
        # and never bring it back.
        schedule = FaultSchedule(seed=7).crash(VICTIM, at_call=4)
        degraded = distributed_skyline(
            partitions, Q, algorithm=algorithm,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )

        # (a) the query terminated (we are here) and disclosed the loss
        coverage = degraded.coverage
        assert not coverage.complete
        assert coverage.down_sites == (VICTIM,)
        assert degraded.stats.rpc_failures > 0
        assert degraded.stats.sites_lost == 1

        # (b) every reported probability is an upper bound on the exact one
        for key, bound in degraded.answer.probabilities().items():
            if key in exact_probs:
                assert bound >= exact_probs[key] - 1e-9

        # Degraded entries are annotated with who contributed — never
        # the dead site, always the origin.
        for key, (bound, contributing) in coverage.degraded.items():
            assert VICTIM not in contributing
            assert bound == pytest.approx(degraded.answer.probabilities()[key])

        # Superset over reachable data: every exact result owned by a
        # surviving site is still reported (its bound can only be
        # larger, so it cannot have been dropped).
        surviving_keys = {
            t.key for i, part in enumerate(partitions) if i != VICTIM for t in part
        }
        for key in exact_probs:
            if key in surviving_keys:
                assert key in degraded.answer

    def test_fail_then_recover_restores_the_exact_answer(self, algorithm):
        db, partitions = make_partitions()
        exact = distributed_skyline(partitions, Q, algorithm=algorithm)

        # The victim refuses calls 4 and 5 (first attempt + retry), is
        # declared DOWN, then the next liveness probe (call 6) answers
        # and it is reintegrated: missed factors re-probed, queue
        # drained.
        schedule = FaultSchedule(seed=7).crash(VICTIM, at_call=4, until_call=6)
        recovered = distributed_skyline(
            partitions, Q, algorithm=algorithm,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )

        assert recovered.stats.sites_lost == 1
        assert recovered.stats.sites_recovered == 1
        assert recovered.coverage.complete
        assert recovered.coverage.down_sites == ()
        # (c) bit-for-bit the same answer as the fault-free run
        assert recovered.answer.agrees_with(exact.answer, tol=1e-9)

    def test_crash_at_prepare_degrades_to_reachable_partitions(self, algorithm):
        db, partitions = make_partitions()
        schedule = FaultSchedule().crash(VICTIM, at_call=1)
        degraded = distributed_skyline(
            partitions, Q, algorithm=algorithm,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )
        # Equivalent to querying only the surviving partitions exactly,
        # except probabilities may be looser (the dead partition's
        # dominators are unknown) — so the key set must be a superset
        # of the two-partition exact answer restricted to live data.
        live = [p for i, p in enumerate(partitions) if i != VICTIM]
        live_exact = distributed_skyline(live, Q, algorithm=algorithm)
        assert degraded.coverage.down_sites == (VICTIM,)
        assert set(degraded.answer.keys()) == set(live_exact.answer.keys())

    def test_flaky_site_with_retries_stays_exact(self, algorithm):
        db, partitions = make_partitions(n=180)
        exact = distributed_skyline(partitions, Q, algorithm=algorithm)
        # 20% of calls time out; retries absorb them. The window closes
        # late in the query so even an unlucky streak gets reintegrated.
        schedule = FaultSchedule(seed=11).flaky(
            VICTIM, probability=0.2, until_call=60
        )
        result = distributed_skyline(
            partitions, Q, algorithm=algorithm,
            fault_schedule=schedule, retry_policy=fast_retries(attempts=4),
        )
        assert result.stats.rpc_retries > 0
        assert result.coverage.complete
        assert result.answer.agrees_with(exact.answer, tol=1e-9)


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestZeroOverheadWhenHealthy:
    def test_clean_run_books_are_bit_identical(self, algorithm):
        db, partitions = make_partitions()
        bare = distributed_skyline(partitions, Q, algorithm=algorithm)
        guarded = distributed_skyline(
            partitions, Q, algorithm=algorithm,
            fault_schedule=FaultSchedule(),  # installed but empty
            retry_policy=RetryPolicy(),
        )
        assert guarded.answer.agrees_with(bare.answer, tol=0.0)
        assert guarded.stats.messages == bare.stats.messages
        assert guarded.stats.by_kind == bare.stats.by_kind
        assert guarded.stats.tuples_transmitted == bare.stats.tuples_transmitted
        assert guarded.stats.rounds == bare.stats.rounds
        assert guarded.stats.rpc_failures == 0
        assert guarded.stats.rpc_retries == 0
        assert guarded.stats.sites_lost == 0
        assert guarded.coverage.complete
        assert guarded.iterations == bare.iterations

    def test_wrapped_sites_report_no_injections(self, algorithm):
        db, partitions = make_partitions(n=120)
        sites = [
            FaultyEndpoint(s, FaultSchedule())
            for s in build_sites(partitions)
        ]
        from repro.distributed.query import ALGORITHMS

        result = ALGORITHMS[algorithm](sites, Q, retry_policy=RetryPolicy()).run()
        assert all(endpoint.injected == [] for endpoint in sites)
        central = prob_skyline_sfs(db, Q)
        assert result.answer.agrees_with(central, tol=1e-9)


class TestDegradedAnnotations:
    def test_run_result_surfaces_coverage(self):
        db, partitions = make_partitions()
        schedule = FaultSchedule().crash(VICTIM, at_call=4)
        result = distributed_skyline(
            partitions, Q, algorithm="edsud",
            fault_schedule=schedule, retry_policy=fast_retries(),
        )
        assert "DEGRADED" in result.coverage.describe()
        assert "DEGRADED" in result.summary()
        # the FSM audit trail is attached
        assert any("down" in t for t in result.coverage.transitions)

    def test_fault_free_coverage_reports_complete(self):
        db, partitions = make_partitions(n=90)
        result = distributed_skyline(partitions, Q, algorithm="dsud")
        assert result.coverage.complete
        assert result.coverage.degraded == {}
        assert "complete" in result.coverage.describe()

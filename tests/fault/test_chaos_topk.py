"""Chaos × ``limit=`` composition: top-k queries stay sound under faults.

The contracts, straight from the degraded-top-k design (docs/protocol.md,
*Degraded top-k*):

* **No retraction, ever** — a tuple emitted by a ``limit=`` query is
  never invalidated by a later reintegration: the buffer only releases
  entries whose probability is exact and provably next-best, so the
  progressive-reporting guarantee survives site churn.
* **Recovery ⇒ fault-free order** — if every failed site recovers
  before termination, the k emitted tuples and their emission *order*
  match the fault-free run exactly.
* **Permanent loss ⇒ disclosed bounds** — with sites DOWN at
  termination, every emitted-or-buffered inexact tuple appears in
  ``CoverageReport.degraded`` with its ``(upper_bound,
  contributing_sites)`` annotation; held-back entries are listed in
  ``CoverageReport.buffered``.
* **Batching is transparent** — ``batch_size > 1`` + ``limit`` + chaos
  answers the same query as ``batch_size = 1``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.query import distributed_skyline
from repro.fault.retry import RetryPolicy
from repro.fault.schedule import FaultSchedule

from ..conftest import make_random_database

Q = 0.25
SITES = 4
VICTIM = 1


def make_partitions(n=400, d=3, seed=4, grid=12):
    db = make_random_database(n, d, seed=seed, grid=grid)
    return db, [db[i::SITES] for i in range(SITES)]


def fast_retries(attempts=2):
    """Real backoff sleeps, kept microscopic so chaos tests stay fast."""
    return RetryPolicy(max_attempts=attempts, base_backoff=1e-4, max_backoff=1e-3)


def recover_schedule(seed=4):
    """The victim refuses calls 6–8, then answers the liveness probe."""
    return FaultSchedule(seed=seed).crash(VICTIM, at_call=6, until_call=9)


def crash_schedule(seed=4):
    """The victim dies a few RPCs in and never comes back."""
    return FaultSchedule(seed=seed).crash(VICTIM, at_call=6)


@pytest.mark.parametrize("algorithm", ["dsud", "edsud"])
class TestChaosLimitComposition:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_recovery_restores_the_fault_free_topk_and_its_order(
        self, algorithm, k
    ):
        _db, partitions = make_partitions()
        exact = distributed_skyline(partitions, Q, algorithm=algorithm, limit=k)
        recovered = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=k,
            fault_schedule=recover_schedule(), retry_policy=fast_retries(),
        )
        assert recovered.coverage.complete
        # same k tuples, same probabilities...
        assert recovered.answer.agrees_with(exact.answer, tol=1e-9)
        # ...and the same emission order (the progressive timeline)
        assert [e.key for e in recovered.progress.events] == [
            e.key for e in exact.progress.events
        ]

    @pytest.mark.parametrize("schedule_factory", [recover_schedule, crash_schedule])
    def test_no_emitted_tuple_is_ever_retracted(self, algorithm, schedule_factory):
        _db, partitions = make_partitions()
        result = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=5,
            fault_schedule=schedule_factory(), retry_policy=fast_retries(),
        )
        emitted = [e.key for e in result.progress.events]
        # every emission survived to the final answer, none re-emitted
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == set(result.answer.keys())
        # and nothing was emitted at a probability later proven below q
        for probability in result.answer.probabilities().values():
            assert probability >= Q

    def test_permanent_crash_surfaces_inexact_entries_in_coverage(self, algorithm):
        _db, partitions = make_partitions()
        exact_probs = distributed_skyline(
            partitions, Q, algorithm=algorithm
        ).answer.probabilities()
        result = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=3,
            fault_schedule=crash_schedule(), retry_policy=fast_retries(),
        )
        coverage = result.coverage
        assert not coverage.complete
        assert coverage.down_sites == (VICTIM,)
        # Every emitted-or-buffered inexact tuple carries its
        # Corollary-1 bound and the contributing sites (never the
        # victim); buffered keys are a subset of the degraded map.
        assert coverage.degraded, "the crash must leave inexact results"
        for key, (bound, contributing) in coverage.degraded.items():
            assert VICTIM not in contributing
            if key in exact_probs:
                assert bound >= exact_probs[key] - 1e-9
        for key in coverage.buffered:
            assert key in coverage.degraded
            assert key not in result.answer  # held back, not emitted

    def test_emitted_prefix_is_sound_under_permanent_loss(self, algorithm):
        # Degraded superset semantics per position: each emitted
        # probability is an upper bound on the exact value of that
        # tuple, and the emission order is descending.
        _db, partitions = make_partitions()
        exact_probs = distributed_skyline(
            partitions, Q, algorithm=algorithm
        ).answer.probabilities()
        result = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=4,
            fault_schedule=crash_schedule(), retry_policy=fast_retries(),
        )
        series = [e.global_probability for e in result.progress.events]
        assert series == sorted(series, reverse=True)
        for event in result.progress.events:
            if event.key in exact_probs:
                assert event.global_probability >= exact_probs[event.key] - 1e-9

    @pytest.mark.parametrize("batch_size", [2, 4])
    def test_batched_chaos_limit_agrees_with_unbatched(self, algorithm, batch_size):
        _db, partitions = make_partitions()
        unbatched = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=5,
            fault_schedule=recover_schedule(), retry_policy=fast_retries(),
        )
        batched = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=5, batch_size=batch_size,
            fault_schedule=recover_schedule(), retry_policy=fast_retries(),
        )
        assert batched.answer.keys() == unbatched.answer.keys()
        for key, p in batched.answer.probabilities().items():
            assert p == pytest.approx(unbatched.answer.probabilities()[key])

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=5),
        batch_size=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=10, deadline=None)
    def test_chaos_limit_property(self, algorithm, seed, k, batch_size):
        # Whenever the victim recovers before termination, chaos +
        # limit + batching answers the fault-free top-k exactly.
        db = make_random_database(120, 2, seed=seed, grid=8)
        partitions = [db[i::3] for i in range(3)]
        exact = distributed_skyline(partitions, Q, algorithm=algorithm, limit=k)
        schedule = FaultSchedule(seed=seed).crash(1, at_call=5, until_call=8)
        result = distributed_skyline(
            partitions, Q, algorithm=algorithm, limit=k, batch_size=batch_size,
            fault_schedule=schedule, retry_policy=fast_retries(),
        )
        if result.coverage.complete:
            assert result.answer.keys() == exact.answer.keys()
        else:
            # the victim stayed down: emitted keys are never retracted
            emitted = [e.key for e in result.progress.events]
            assert set(emitted) == set(result.answer.keys())


class TestDownSiteBlocksEarlyStop:
    def test_early_stop_waits_for_a_possible_recovery(self):
        # While the victim is DOWN its undelivered candidates cap the
        # drain: the coordinator must not declare the top-k final on
        # reachable data alone.  With the victim recovering, the run
        # must find the victim-owned tuple the early stop would skip.
        _db, partitions = make_partitions(seed=4)
        exact = distributed_skyline(partitions, Q, algorithm="dsud", limit=5)
        victim_keys = {t.key for t in partitions[VICTIM]}
        assert victim_keys & set(exact.answer.keys()), (
            "workload must place a top-k tuple on the victim for this "
            "test to exercise the early-stop guard"
        )
        recovered = distributed_skyline(
            partitions, Q, algorithm="dsud", limit=5,
            fault_schedule=recover_schedule(), retry_policy=fast_retries(),
        )
        assert recovered.answer.keys() == exact.answer.keys()

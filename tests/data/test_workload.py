"""Workload assembly and the query-mix sampler."""


from repro.core.tuples import validate_database
import pytest

from repro.data.workload import (
    Workload,
    make_nyse_workload,
    make_synthetic_workload,
    sample_query_mix,
)


class TestSyntheticWorkload:
    def test_basic_assembly(self):
        wl = make_synthetic_workload("independent", n=500, d=3, sites=5, seed=1)
        assert wl.cardinality == 500
        assert wl.sites == 5
        assert wl.dimensionality == 3
        assert validate_database(wl.global_database) == 3

    def test_partitions_cover_database(self):
        wl = make_synthetic_workload(n=300, sites=4, seed=2)
        keys = sorted(t.key for p in wl.partitions for t in p)
        assert keys == sorted(t.key for t in wl.global_database)

    def test_balanced_partitions(self):
        wl = make_synthetic_workload(n=301, sites=4, seed=3)
        sizes = [len(p) for p in wl.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_seed_reproducibility(self):
        a = make_synthetic_workload(n=200, sites=4, seed=7)
        b = make_synthetic_workload(n=200, sites=4, seed=7)
        assert [t.values for t in a.global_database] == [
            t.values for t in b.global_database
        ]
        assert [[t.key for t in p] for p in a.partitions] == [
            [t.key for t in p] for p in b.partitions
        ]

    def test_gaussian_probability_kind(self):
        wl = make_synthetic_workload(
            n=2000, sites=4, probability_kind="gaussian", probability_mean=0.8, seed=4
        )
        mean = sum(t.probability for t in wl.global_database) / 2000
        assert abs(mean - 0.8) < 0.05

    def test_describe(self):
        wl = make_synthetic_workload(n=100, d=2, sites=3, seed=5)
        text = wl.describe()
        assert "N=100" in text and "d=2" in text and "m=3" in text


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        wl = make_synthetic_workload(n=150, d=3, sites=4, seed=9)
        wl.save(tmp_path / "wl")
        restored = Workload.load(tmp_path / "wl")
        assert restored.name == wl.name
        assert restored.seed == wl.seed
        assert [[t for t in p] for p in restored.partitions] == [
            [t for t in p] for p in wl.partitions
        ]
        assert restored.global_database == [
            t for p in wl.partitions for t in p
        ]

    def test_preference_survives_roundtrip(self, tmp_path):
        wl = make_nyse_workload(n=80, sites=3, seed=10)
        wl.save(tmp_path / "wl")
        restored = Workload.load(tmp_path / "wl")
        assert restored.preference is not None
        assert restored.preference.directions == wl.preference.directions

    def test_restored_workload_answers_identically(self, tmp_path):
        from repro.distributed.query import distributed_skyline

        wl = make_synthetic_workload(n=300, d=2, sites=3, seed=11)
        original = distributed_skyline(wl.partitions, 0.3)
        wl.save(tmp_path / "wl")
        restored = Workload.load(tmp_path / "wl")
        again = distributed_skyline(restored.partitions, 0.3)
        assert again.answer.agrees_with(original.answer, tol=1e-12)
        assert again.bandwidth == original.bandwidth


class TestNyseWorkload:
    def test_assembly(self):
        wl = make_nyse_workload(n=400, sites=4, seed=6)
        assert wl.cardinality == 400
        assert wl.dimensionality == 2
        assert wl.preference is not None

    def test_empty_workload_dimensionality(self):
        wl = Workload(name="empty", global_database=[], partitions=[[]])
        assert wl.dimensionality == 0


class TestSampleQueryMix:
    def test_same_seed_same_mix(self):
        a = sample_query_mix(40, 3, seed=5)
        b = sample_query_mix(40, 3, seed=5)
        assert a == b  # frozen dataclasses: structural equality is exact

    def test_different_seeds_differ(self):
        assert sample_query_mix(40, 3, seed=5) != sample_query_mix(40, 3, seed=6)

    def test_seed_none_means_seed_zero(self):
        assert sample_query_mix(25, 3) == sample_query_mix(25, 3, seed=0)

    def test_pinned_prefix_for_the_default_knobs(self):
        # A golden pin: random.Random's algorithm is stable across
        # Python versions by language guarantee, so this exact mix is
        # what every machine derives from seed 0.  If it ever changes,
        # every BENCH_service.json trajectory silently re-bases.
        draws = sample_query_mix(3, 3, seed=0)
        assert [d.threshold for d in draws] == [0.6, 0.6, 0.5]
        assert [d.algorithm for d in draws] == ["edsud", "edsud", "dsud"]
        assert [d.limit for d in draws] == [10, None, 3]
        assert [d.subspace for d in draws] == [None, (0, 1), None]
        assert [d.batch_size for d in draws] == [1, 4, 1]

    def test_draws_respect_the_pools(self):
        draws = sample_query_mix(
            60,
            4,
            seed=9,
            thresholds=(0.25, 0.75),
            algorithms=("dsud",),
            limits=(7,),
            tenants=("a", "b"),
        )
        assert {d.threshold for d in draws} <= {0.25, 0.75}
        assert {d.algorithm for d in draws} == {"dsud"}
        assert {d.limit for d in draws} <= {None, 7}
        assert {d.tenant for d in draws} <= {"a", "b"}
        for d in draws:
            if d.subspace is not None:
                assert 2 <= len(d.subspace) < 4
                assert d.subspace == tuple(sorted(d.subspace))
                assert all(0 <= i < 4 for i in d.subspace)

    def test_low_dimensions_never_draw_subspaces(self):
        draws = sample_query_mix(50, 2, seed=3, subspace_fraction=1.0)
        assert all(d.subspace is None for d in draws)

    def test_fractions_at_the_extremes(self):
        none = sample_query_mix(30, 3, seed=4, limit_fraction=0.0)
        assert all(d.limit is None for d in none)
        every = sample_query_mix(30, 3, seed=4, limit_fraction=1.0)
        assert all(d.limit is not None for d in every)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            sample_query_mix(-1, 3)
        with pytest.raises(ValueError):
            sample_query_mix(10, 0)

    def test_empty_mix(self):
        assert sample_query_mix(0, 3, seed=1) == []

"""Workload assembly."""


from repro.core.tuples import validate_database
from repro.data.workload import Workload, make_nyse_workload, make_synthetic_workload


class TestSyntheticWorkload:
    def test_basic_assembly(self):
        wl = make_synthetic_workload("independent", n=500, d=3, sites=5, seed=1)
        assert wl.cardinality == 500
        assert wl.sites == 5
        assert wl.dimensionality == 3
        assert validate_database(wl.global_database) == 3

    def test_partitions_cover_database(self):
        wl = make_synthetic_workload(n=300, sites=4, seed=2)
        keys = sorted(t.key for p in wl.partitions for t in p)
        assert keys == sorted(t.key for t in wl.global_database)

    def test_balanced_partitions(self):
        wl = make_synthetic_workload(n=301, sites=4, seed=3)
        sizes = [len(p) for p in wl.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_seed_reproducibility(self):
        a = make_synthetic_workload(n=200, sites=4, seed=7)
        b = make_synthetic_workload(n=200, sites=4, seed=7)
        assert [t.values for t in a.global_database] == [
            t.values for t in b.global_database
        ]
        assert [[t.key for t in p] for p in a.partitions] == [
            [t.key for t in p] for p in b.partitions
        ]

    def test_gaussian_probability_kind(self):
        wl = make_synthetic_workload(
            n=2000, sites=4, probability_kind="gaussian", probability_mean=0.8, seed=4
        )
        mean = sum(t.probability for t in wl.global_database) / 2000
        assert abs(mean - 0.8) < 0.05

    def test_describe(self):
        wl = make_synthetic_workload(n=100, d=2, sites=3, seed=5)
        text = wl.describe()
        assert "N=100" in text and "d=2" in text and "m=3" in text


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        wl = make_synthetic_workload(n=150, d=3, sites=4, seed=9)
        wl.save(tmp_path / "wl")
        restored = Workload.load(tmp_path / "wl")
        assert restored.name == wl.name
        assert restored.seed == wl.seed
        assert [[t for t in p] for p in restored.partitions] == [
            [t for t in p] for p in wl.partitions
        ]
        assert restored.global_database == [
            t for p in wl.partitions for t in p
        ]

    def test_preference_survives_roundtrip(self, tmp_path):
        wl = make_nyse_workload(n=80, sites=3, seed=10)
        wl.save(tmp_path / "wl")
        restored = Workload.load(tmp_path / "wl")
        assert restored.preference is not None
        assert restored.preference.directions == wl.preference.directions

    def test_restored_workload_answers_identically(self, tmp_path):
        from repro.distributed.query import distributed_skyline

        wl = make_synthetic_workload(n=300, d=2, sites=3, seed=11)
        original = distributed_skyline(wl.partitions, 0.3)
        wl.save(tmp_path / "wl")
        restored = Workload.load(tmp_path / "wl")
        again = distributed_skyline(restored.partitions, 0.3)
        assert again.answer.agrees_with(original.answer, tol=1e-12)
        assert again.bandwidth == original.bandwidth


class TestNyseWorkload:
    def test_assembly(self):
        wl = make_nyse_workload(n=400, sites=4, seed=6)
        assert wl.cardinality == 400
        assert wl.dimensionality == 2
        assert wl.preference is not None

    def test_empty_workload_dimensionality(self):
        wl = Workload(name="empty", global_database=[], partitions=[[]])
        assert wl.dimensionality == 0

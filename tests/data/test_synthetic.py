"""Synthetic value generators: domains, shapes, determinism."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DISTRIBUTIONS,
    anticorrelated,
    clustered,
    correlated,
    generate_values,
    independent,
)


def pairwise_correlation(values: np.ndarray) -> float:
    """Mean off-diagonal Pearson correlation between dimensions."""
    corr = np.corrcoef(values.T)
    d = corr.shape[0]
    off = [corr[i, j] for i in range(d) for j in range(d) if i != j]
    return float(np.mean(off))


class TestDomains:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_unit_cube(self, name):
        values = generate_values(name, 5000, 3, seed=1)
        assert values.shape == (5000, 3)
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_zero_rows(self, name):
        assert generate_values(name, 0, 3, seed=1).shape == (0, 3)

    def test_one_dimension(self):
        for name in DISTRIBUTIONS:
            values = generate_values(name, 100, 1, seed=2)
            assert values.shape == (100, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_values("independent", -1, 2)
        with pytest.raises(ValueError):
            generate_values("independent", 10, 0)
        with pytest.raises(ValueError, match="unknown distribution"):
            generate_values("zipfian", 10, 2)


class TestShapes:
    def test_independent_near_zero_correlation(self):
        values = independent(20_000, 3, np.random.default_rng(3))
        assert abs(pairwise_correlation(values)) < 0.03

    def test_correlated_positive_correlation(self):
        values = correlated(20_000, 3, np.random.default_rng(4))
        assert pairwise_correlation(values) > 0.4

    def test_anticorrelated_negative_correlation(self):
        values = anticorrelated(20_000, 3, np.random.default_rng(5))
        assert pairwise_correlation(values) < -0.15

    def test_anticorrelated_2d(self):
        values = anticorrelated(20_000, 2, np.random.default_rng(6))
        assert pairwise_correlation(values) < -0.3

    def test_skyline_size_ordering(self):
        """anticorrelated > independent > correlated skylines — the very
        property the paper's Fig. 8 comparison rests on."""
        from repro.core.skyline import skyline
        from repro.core.tuples import tuples_from_arrays

        sizes = {}
        for name in ("correlated", "independent", "anticorrelated"):
            values = generate_values(name, 3000, 3, seed=7)
            db = tuples_from_arrays(values, np.ones(3000))
            sizes[name] = len(skyline(db))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]


class TestClustered:
    def test_points_form_tight_blobs(self):
        values = clustered(5000, 2, np.random.default_rng(8), clusters=3, spread=0.02)
        # Nearest-center distances must be far below a uniform cloud's.
        from scipy.cluster.vq import kmeans2

        centroids, labels = kmeans2(values, 3, seed=1, minit="points")
        distances = np.linalg.norm(values - centroids[labels], axis=1)
        assert np.median(distances) < 0.1

    def test_cluster_count_validation(self):
        with pytest.raises(ValueError):
            clustered(10, 2, np.random.default_rng(9), clusters=0)

    def test_registered_in_dispatch(self):
        values = generate_values("clustered", 100, 3, seed=10)
        assert values.shape == (100, 3)

    def test_zero_rows(self):
        assert clustered(0, 2, np.random.default_rng(11)).shape == (0, 2)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_seed_reproducibility(self, name):
        a = generate_values(name, 500, 3, seed=42)
        b = generate_values(name, 500, 3, seed=42)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_different_seeds_differ(self, name):
        a = generate_values(name, 500, 3, seed=42)
        b = generate_values(name, 500, 3, seed=43)
        assert not np.array_equal(a, b)

"""Regression tests for the SKY201 fixes: seedless defaults are seed 0.

Before the skylint pass, ``seed=None`` fell through to
``np.random.default_rng(None)`` / ``random.Random()`` — OS entropy —
so two "default" workloads disagreed and no experiment was replayable
without remembering to pass a seed.  These tests pin the fixed
contract: no arguments means seed 0, identically, everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.core.possible_worlds import skyline_probabilities_monte_carlo
from repro.core.tuples import UncertainTuple
from repro.data.partition import partition_uniform
from repro.data.probabilities import generate_probabilities
from repro.data.synthetic import generate_values
from repro.data.workload import make_nyse_workload, make_synthetic_workload


def _keys(partitions):
    return [[t.key for t in part] for part in partitions]


def test_default_synthetic_workload_is_deterministic_and_equals_seed_zero():
    a = make_synthetic_workload(n=64, d=2, sites=4)
    b = make_synthetic_workload(n=64, d=2, sites=4)
    c = make_synthetic_workload(n=64, d=2, sites=4, seed=0)
    assert a.seed == 0
    for other in (b, c):
        assert _keys(a.partitions) == _keys(other.partitions)
        assert [t.values for t in a.global_database] == [
            t.values for t in other.global_database
        ]
        assert [t.probability for t in a.global_database] == [
            t.probability for t in other.global_database
        ]


def test_default_nyse_workload_is_deterministic_and_equals_seed_zero():
    a = make_nyse_workload(n=64, sites=4)
    b = make_nyse_workload(n=64, sites=4, seed=0)
    assert a.seed == 0
    assert _keys(a.partitions) == _keys(b.partitions)
    assert [t.probability for t in a.global_database] == [
        t.probability for t in b.global_database
    ]


def test_explicit_seed_still_varies_the_workload():
    a = make_synthetic_workload(n=64, d=2, sites=4, seed=0)
    b = make_synthetic_workload(n=64, d=2, sites=4, seed=1)
    assert [t.values for t in a.global_database] != [
        t.values for t in b.global_database
    ]


def test_partition_uniform_default_placement_is_reproducible():
    tuples = [UncertainTuple(key=i, values=(float(i),), probability=0.5) for i in range(23)]
    assert _keys(partition_uniform(tuples, 4)) == _keys(partition_uniform(tuples, 4))


def test_generator_defaults_equal_seed_zero():
    np.testing.assert_array_equal(
        generate_values("independent", 32, 3),
        generate_values("independent", 32, 3, seed=0),
    )
    np.testing.assert_array_equal(
        generate_probabilities("uniform", 32),
        generate_probabilities("uniform", 32, seed=0),
    )


def test_monte_carlo_default_seed_is_stable():
    db = [
        UncertainTuple(key=i, values=(float(i), float(3 - i)), probability=0.6)
        for i in range(4)
    ]
    a = skyline_probabilities_monte_carlo(db, samples=200)
    b = skyline_probabilities_monte_carlo(db, samples=200)
    assert a == b

"""Existential-probability assignment."""

import numpy as np
import pytest

from repro.data.probabilities import (
    constant_probabilities,
    gaussian_probabilities,
    generate_probabilities,
    uniform_probabilities,
)


class TestUniform:
    def test_domain(self):
        probs = uniform_probabilities(10_000, np.random.default_rng(1))
        assert probs.min() > 0.0
        assert probs.max() <= 1.0

    def test_mean_near_half(self):
        probs = uniform_probabilities(50_000, np.random.default_rng(2))
        assert abs(probs.mean() - 0.5) < 0.01


class TestGaussian:
    @pytest.mark.parametrize("mu", [0.3, 0.5, 0.7, 0.9])
    def test_mean_tracks_mu(self, mu):
        probs = gaussian_probabilities(50_000, np.random.default_rng(3), mean=mu)
        # clipping biases the extremes slightly; stay within 0.05
        assert abs(probs.mean() - mu) < 0.05

    def test_domain_clipped(self):
        probs = gaussian_probabilities(50_000, np.random.default_rng(4), mean=0.9, std=0.4)
        assert probs.min() > 0.0
        assert probs.max() <= 1.0

    def test_std_parameter(self):
        tight = gaussian_probabilities(20_000, np.random.default_rng(5), mean=0.5, std=0.05)
        wide = gaussian_probabilities(20_000, np.random.default_rng(5), mean=0.5, std=0.2)
        assert tight.std() < wide.std()


class TestConstant:
    def test_value(self):
        probs = constant_probabilities(10, value=0.75)
        assert np.all(probs == 0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_probabilities(10, value=0.0)
        with pytest.raises(ValueError):
            constant_probabilities(10, value=1.5)


class TestDispatch:
    def test_kinds(self):
        assert len(generate_probabilities("uniform", 5, seed=1)) == 5
        assert len(generate_probabilities("gaussian", 5, seed=1, mean=0.4)) == 5
        assert np.all(generate_probabilities("constant", 5, value=0.5) == 0.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown probability kind"):
            generate_probabilities("bimodal", 5)

    def test_valid_tuple_probabilities(self):
        """Every generated value must be a legal existential probability."""
        from repro.core.tuples import UncertainTuple

        for kind in ("uniform", "gaussian"):
            probs = generate_probabilities(kind, 1000, seed=6, mean=0.1)
            for i, p in enumerate(probs):
                UncertainTuple(i, (0.0,), float(p))  # must not raise

"""The synthetic NYSE trade trace (the real-data substitute)."""

import numpy as np
import pytest

from repro.core.dominance import Direction, dominates
from repro.data.nyse import (
    TRADING_DAYS,
    attach_uncertainty,
    generate_nyse_trades,
    nyse_preference,
)


class TestTradeGeneration:
    def test_shape_and_determinism(self):
        a = generate_nyse_trades(1000, seed=1)
        b = generate_nyse_trades(1000, seed=1)
        assert len(a) == 1000
        assert [t.values for t in a] == [t.values for t in b]

    def test_zero_trades(self):
        assert generate_nyse_trades(0, seed=1) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_nyse_trades(-1)

    def test_price_plausible_for_dell_2000(self):
        trades = generate_nyse_trades(5000, seed=2)
        prices = np.array([t.values[0] for t in trades])
        assert 2.0 < prices.min()
        assert prices.max() < 100.0

    def test_prices_cent_quantized(self):
        trades = generate_nyse_trades(500, seed=3)
        for t in trades:
            cents = t.values[0] * 100
            assert abs(cents - round(cents)) < 1e-6

    def test_volumes_are_round_lots(self):
        trades = generate_nyse_trades(500, seed=4)
        for t in trades:
            assert t.values[1] >= 100.0
            assert t.values[1] % 100 == 0

    def test_price_clusters_by_day(self):
        """The random walk must leave visible day-level structure."""
        trades = generate_nyse_trades(20_000, seed=5)
        prices = np.array([t.values[0] for t in trades])
        # Intraday noise is ~0.4%; across the whole window the walk
        # wanders much further.
        assert prices.std() / prices.mean() > 0.05

    def test_trading_window_constant(self):
        assert TRADING_DAYS == 118

    def test_skyline_is_nontrivial(self):
        """Cent/lot quantization + price impact must produce a usable skyline."""
        from repro.core.skyline import skyline

        trades = generate_nyse_trades(2000, seed=6)
        sky = skyline(trades, nyse_preference())
        assert 5 <= len(sky) <= 200


class TestPreference:
    def test_direction_semantics(self):
        pref = nyse_preference()
        assert pref.directions == (Direction.MIN, Direction.MAX)

    def test_cheap_big_deal_dominates(self):
        trades = generate_nyse_trades(2, seed=7)
        from repro.core.tuples import UncertainTuple

        good = UncertainTuple(100, (10.0, 5000.0), 1.0)
        bad = UncertainTuple(101, (12.0, 1000.0), 1.0)
        assert dominates(good, bad, nyse_preference())
        assert not dominates(bad, good, nyse_preference())


class TestAttachUncertainty:
    def test_uniform_kind(self):
        trades = generate_nyse_trades(2000, seed=8)
        uncertain = attach_uncertainty(trades, kind="uniform", seed=9)
        probs = np.array([t.probability for t in uncertain])
        assert abs(probs.mean() - 0.5) < 0.03
        assert [t.values for t in uncertain] == [t.values for t in trades]

    @pytest.mark.parametrize("mu", [0.3, 0.6, 0.9])
    def test_gaussian_kind(self, mu):
        trades = generate_nyse_trades(5000, seed=10)
        uncertain = attach_uncertainty(trades, kind="gaussian", mean=mu, seed=11)
        probs = np.array([t.probability for t in uncertain])
        assert abs(probs.mean() - mu) < 0.05

    def test_keys_preserved(self):
        trades = generate_nyse_trades(100, seed=12)
        uncertain = attach_uncertainty(trades, seed=13)
        assert [t.key for t in uncertain] == [t.key for t in trades]

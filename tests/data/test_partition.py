"""Horizontal partitioning schemes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    partition_angle,
    partition_range,
    partition_round_robin,
    partition_uniform,
)

from ..conftest import make_random_database

PARTITIONERS = [
    lambda ts, m: partition_uniform(ts, m, rng=random.Random(0)),
    partition_round_robin,
    partition_range,
    partition_angle,
]


class TestCommonProperties:
    @pytest.mark.parametrize("partition", PARTITIONERS)
    @pytest.mark.parametrize("m", [1, 3, 7])
    def test_disjoint_and_complete(self, partition, m):
        db = make_random_database(100, 2, seed=1)
        parts = partition(db, m)
        assert len(parts) == m
        keys = [t.key for part in parts for t in part]
        assert sorted(keys) == sorted(t.key for t in db)
        assert len(set(keys)) == len(keys)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_balanced_sizes(self, partition):
        db = make_random_database(101, 2, seed=2)
        parts = partition(db, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_site_count_validation(self, partition):
        with pytest.raises(ValueError):
            partition([], 0)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_more_sites_than_tuples(self, partition):
        db = make_random_database(3, 2, seed=3)
        parts = partition(db, 10)
        assert sum(len(p) for p in parts) == 3


class TestUniform:
    def test_seeded_reproducibility(self):
        db = make_random_database(50, 2, seed=4)
        a = partition_uniform(db, 5, rng=random.Random(7))
        b = partition_uniform(db, 5, rng=random.Random(7))
        assert [[t.key for t in p] for p in a] == [[t.key for t in p] for p in b]

    def test_shuffles_relative_to_input(self):
        db = make_random_database(200, 2, seed=5)
        parts = partition_uniform(db, 2, rng=random.Random(1))
        assert [t.key for t in parts[0]] != [t.key for t in db[:100]]


class TestRange:
    def test_contiguous_value_ranges(self):
        db = make_random_database(90, 2, seed=6)
        parts = partition_range(db, 3, dim=0)
        maxima = [max(t.values[0] for t in p) for p in parts]
        minima = [min(t.values[0] for t in p) for p in parts]
        assert maxima[0] <= minima[1] and maxima[1] <= minima[2]

    def test_skew_concentrates_skyline(self):
        """Site 0 should hold essentially the whole global skyline."""
        from repro.core.skyline import skyline

        db = make_random_database(300, 2, seed=7)
        parts = partition_range(db, 3, dim=0)
        global_keys = {t.key for t in skyline(db)}
        site0_keys = {t.key for t in parts[0]}
        overlap = len(global_keys & site0_keys) / len(global_keys)
        assert overlap > 0.6


class TestAngle:
    @staticmethod
    def _anticorrelated_db(n=800, seed=10):
        """Skyline-rich data — the regime angle partitioning targets."""
        from repro.data.workload import make_synthetic_workload

        return make_synthetic_workload(
            "anticorrelated", n=n, d=2, sites=1, seed=seed
        ).global_database

    def test_every_site_holds_skyline_members(self):
        """The property angle partitioning exists for: no site is useless."""
        from repro.core.skyline import skyline

        db = self._anticorrelated_db()
        parts = partition_angle(db, 4)
        global_keys = {t.key for t in skyline(db)}
        assert len(global_keys) >= 12
        for part in parts:
            assert global_keys & {t.key for t in part}

    def test_spreads_skyline_better_than_range(self):
        from repro.core.skyline import skyline

        db = self._anticorrelated_db(seed=11)
        global_keys = {t.key for t in skyline(db)}

        def sites_with_skyline(parts):
            return sum(1 for p in parts if global_keys & {t.key for t in p})

        assert sites_with_skyline(partition_angle(db, 6)) >= sites_with_skyline(
            partition_range(db, 6)
        )

    def test_one_dimensional_fallback(self):
        db = make_random_database(60, 1, seed=12)
        parts = partition_angle(db, 3)
        assert sum(len(p) for p in parts) == 60

    def test_distributed_answer_unchanged(self):
        """Partitioning never affects correctness, only bandwidth."""
        from repro.core.prob_skyline import prob_skyline_sfs
        from repro.distributed.query import distributed_skyline

        db = make_random_database(400, 3, seed=13)
        central = prob_skyline_sfs(db, 0.3)
        result = distributed_skyline(partition_angle(db, 5), 0.3, algorithm="edsud")
        assert result.answer.agrees_with(central, tol=1e-9)


class TestRoundRobin:
    def test_deterministic_assignment(self):
        db = make_random_database(10, 2, seed=8)
        parts = partition_round_robin(db, 3)
        assert [t.key for t in parts[0]] == [0, 3, 6, 9]

    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_round_robin_property(self, n, m):
        db = make_random_database(n, 2, seed=9)
        parts = partition_round_robin(db, m)
        for i, part in enumerate(parts):
            assert all(t.key % m == i for t in part)

"""Relation persistence: CSV and JSONL round-trips."""

import pytest

from repro.data.io import (
    load_tuples,
    load_tuples_csv,
    load_tuples_jsonl,
    save_tuples,
    save_tuples_csv,
    save_tuples_jsonl,
)
from repro.core.tuples import UncertainTuple

from ..conftest import make_random_database


class TestCsv:
    def test_roundtrip_exact(self, tmp_path):
        db = make_random_database(100, 3, seed=1)
        path = tmp_path / "rel.csv"
        save_tuples_csv(path, db)
        assert load_tuples_csv(path) == db

    def test_custom_attribute_names(self, tmp_path):
        db = make_random_database(5, 2, seed=2)
        path = tmp_path / "rel.csv"
        save_tuples_csv(path, db, attribute_names=["price", "distance"])
        header = path.read_text().splitlines()[0]
        assert header == "key,price,distance,probability"
        assert load_tuples_csv(path) == db

    def test_attribute_name_count_checked(self, tmp_path):
        db = make_random_database(5, 2, seed=3)
        with pytest.raises(ValueError, match="attribute names"):
            save_tuples_csv(tmp_path / "rel.csv", db, attribute_names=["only_one"])

    def test_empty_relation(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("")
        assert load_tuples_csv(path) == []

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,a,probability\n1,0.5,0.5\n2,broken,0.5\n")
        with pytest.raises(ValueError, match=":3"):
            load_tuples_csv(path)

    def test_short_header_rejected(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,probability\n")
        with pytest.raises(ValueError, match="at least"):
            load_tuples_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,a,probability\n1,0.5\n")
        with pytest.raises(ValueError, match="expected 3 cells"):
            load_tuples_csv(path)


class TestJsonl:
    def test_roundtrip_exact(self, tmp_path):
        db = make_random_database(80, 4, seed=4)
        path = tmp_path / "rel.jsonl"
        save_tuples_jsonl(path, db)
        assert load_tuples_jsonl(path) == db

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        path.write_text(
            '{"key": 1, "values": [0.5], "probability": 0.5}\n\n'
            '{"key": 2, "values": [0.7], "probability": 0.7}\n'
        )
        assert len(load_tuples_jsonl(path)) == 2

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        path.write_text('{"key": 1, "values": [0.5], "probability": 0.5}\n{"nope": 1}\n')
        with pytest.raises(ValueError, match=":2"):
            load_tuples_jsonl(path)

    def test_wire_format_compatible(self, tmp_path):
        from repro.net.message import encode_tuple
        import json

        t = UncertainTuple(9, (1.5, 2.5), 0.25)
        path = tmp_path / "rel.jsonl"
        path.write_text(json.dumps(encode_tuple(t)) + "\n")
        assert load_tuples_jsonl(path) == [t]


class TestDispatch:
    @pytest.mark.parametrize("name", ["rel.csv", "rel.jsonl", "rel.ndjson"])
    def test_suffix_dispatch(self, tmp_path, name):
        db = make_random_database(10, 2, seed=5)
        path = tmp_path / name
        save_tuples(path, db)
        assert load_tuples(path) == db

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_tuples(tmp_path / "rel.parquet", [])
        with pytest.raises(ValueError, match="unsupported"):
            load_tuples(tmp_path / "rel.parquet")

    def test_duplicate_keys_rejected_on_load(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,a,probability\n1,0.5,0.5\n1,0.7,0.5\n")
        with pytest.raises(ValueError, match="duplicate"):
            load_tuples_csv(path)

"""Relation persistence: CSV/JSONL round-trips and column directories."""

import numpy as np
import pytest

from repro.data.io import (
    ColumnWriter,
    load_tuples,
    load_tuples_csv,
    load_tuples_jsonl,
    open_columns,
    save_columns,
    save_tuples,
    save_tuples_csv,
    save_tuples_jsonl,
    write_columns,
)
from repro.core.tuples import UncertainTuple

from ..conftest import make_random_database


class TestCsv:
    def test_roundtrip_exact(self, tmp_path):
        db = make_random_database(100, 3, seed=1)
        path = tmp_path / "rel.csv"
        save_tuples_csv(path, db)
        assert load_tuples_csv(path) == db

    def test_custom_attribute_names(self, tmp_path):
        db = make_random_database(5, 2, seed=2)
        path = tmp_path / "rel.csv"
        save_tuples_csv(path, db, attribute_names=["price", "distance"])
        header = path.read_text().splitlines()[0]
        assert header == "key,price,distance,probability"
        assert load_tuples_csv(path) == db

    def test_attribute_name_count_checked(self, tmp_path):
        db = make_random_database(5, 2, seed=3)
        with pytest.raises(ValueError, match="attribute names"):
            save_tuples_csv(tmp_path / "rel.csv", db, attribute_names=["only_one"])

    def test_empty_relation(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("")
        assert load_tuples_csv(path) == []

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,a,probability\n1,0.5,0.5\n2,broken,0.5\n")
        with pytest.raises(ValueError, match=":3"):
            load_tuples_csv(path)

    def test_short_header_rejected(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,probability\n")
        with pytest.raises(ValueError, match="at least"):
            load_tuples_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,a,probability\n1,0.5\n")
        with pytest.raises(ValueError, match="expected 3 cells"):
            load_tuples_csv(path)


class TestJsonl:
    def test_roundtrip_exact(self, tmp_path):
        db = make_random_database(80, 4, seed=4)
        path = tmp_path / "rel.jsonl"
        save_tuples_jsonl(path, db)
        assert load_tuples_jsonl(path) == db

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        path.write_text(
            '{"key": 1, "values": [0.5], "probability": 0.5}\n\n'
            '{"key": 2, "values": [0.7], "probability": 0.7}\n'
        )
        assert len(load_tuples_jsonl(path)) == 2

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        path.write_text('{"key": 1, "values": [0.5], "probability": 0.5}\n{"nope": 1}\n')
        with pytest.raises(ValueError, match=":2"):
            load_tuples_jsonl(path)

    def test_wire_format_compatible(self, tmp_path):
        from repro.net.message import encode_tuple
        import json

        t = UncertainTuple(9, (1.5, 2.5), 0.25)
        path = tmp_path / "rel.jsonl"
        path.write_text(json.dumps(encode_tuple(t)) + "\n")
        assert load_tuples_jsonl(path) == [t]


class TestDispatch:
    @pytest.mark.parametrize("name", ["rel.csv", "rel.jsonl", "rel.ndjson"])
    def test_suffix_dispatch(self, tmp_path, name):
        db = make_random_database(10, 2, seed=5)
        path = tmp_path / name
        save_tuples(path, db)
        assert load_tuples(path) == db

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_tuples(tmp_path / "rel.parquet", [])
        with pytest.raises(ValueError, match="unsupported"):
            load_tuples(tmp_path / "rel.parquet")

    def test_duplicate_keys_rejected_on_load(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("key,a,probability\n1,0.5,0.5\n1,0.7,0.5\n")
        with pytest.raises(ValueError, match="duplicate"):
            load_tuples_csv(path)


class TestColumnDirectory:
    def test_tuple_roundtrip_through_memmap(self, tmp_path):
        db = make_random_database(150, 3, seed=71)
        count = save_columns(tmp_path / "rel", db)
        assert count == len(db)
        store = open_columns(tmp_path / "rel")
        assert isinstance(store.values, np.memmap)
        assert len(store) == len(db)
        for r, t in enumerate(db):
            assert store.keys[r] == t.key
            assert tuple(store.values[r]) == t.values
            assert store.probabilities[r] == t.probability

    def test_mmap_false_loads_plain_arrays(self, tmp_path):
        db = make_random_database(20, 2, seed=72)
        save_columns(tmp_path / "rel", db)
        store = open_columns(tmp_path / "rel", mmap=False)
        assert not isinstance(store.values, np.memmap)
        np.testing.assert_array_equal(
            store.values, open_columns(tmp_path / "rel").values
        )

    def test_chunked_build_matches_single_shot(self, tmp_path):
        rng = np.random.default_rng(73)
        values = rng.random((1000, 3))
        probs = rng.random(1000) * 0.99 + 0.01

        def chunks():
            for start in range(0, 1000, 128):
                yield values[start : start + 128], probs[start : start + 128], None

        count = write_columns(tmp_path / "chunked", chunks(), 3)
        assert count == 1000
        store = open_columns(tmp_path / "chunked")
        np.testing.assert_array_equal(np.asarray(store.values), values)
        np.testing.assert_array_equal(np.asarray(store.probabilities), probs)
        # Auto-numbered keys: running row count across chunks.
        np.testing.assert_array_equal(np.asarray(store.keys), np.arange(1000))

    def test_float32_values_preserved(self, tmp_path):
        rng = np.random.default_rng(74)
        values = rng.random((64, 2), dtype=np.float32)
        probs = rng.random(64) * 0.5 + 0.25
        with ColumnWriter(tmp_path / "f32", 2, value_dtype="float32") as writer:
            writer.append(values, probs)
        store = open_columns(tmp_path / "f32")
        assert store.values.dtype == np.float32
        assert store.probabilities.dtype == np.float64
        np.testing.assert_array_equal(np.asarray(store.values), values)

    def test_crashed_write_is_visibly_incomplete(self, tmp_path):
        rng = np.random.default_rng(75)
        with pytest.raises(RuntimeError, match="boom"):
            with ColumnWriter(tmp_path / "crash", 2) as writer:
                writer.append(rng.random((8, 2)), rng.random(8) * 0.5 + 0.1)
                raise RuntimeError("boom")
        # No meta.json stamp → the directory refuses to open.
        with pytest.raises(FileNotFoundError, match="meta.json"):
            open_columns(tmp_path / "crash")

    def test_version_mismatch_rejected(self, tmp_path):
        save_columns(tmp_path / "rel", make_random_database(5, 2, seed=76))
        meta = tmp_path / "rel" / "meta.json"
        meta.write_text(meta.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(ValueError, match="version"):
            open_columns(tmp_path / "rel")

    def test_empty_relation_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_columns(tmp_path / "rel", [])

    def test_shape_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(77)
        with ColumnWriter(tmp_path / "bad", 3) as writer:
            with pytest.raises(ValueError):
                writer.append(rng.random((4, 2)), rng.random(4))

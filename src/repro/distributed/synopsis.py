"""Synopsis-guided feedback selection — the road §5.2 decides *not* to take.

Before settling on the Corollary-2 bound, the paper considers having
every site ship "data synopses retaining the key statistical traits of
the original data distribution" so the server can pick the feedback
tuple with the greatest pruning power — and rejects the idea because
"transmitting such data synopses may occupy too much network
bandwidth".  This module implements that rejected design faithfully so
the claim can be measured rather than taken on faith (see the
``ablation-synopsis`` experiment).

Each site summarises its qualified local skyline as an equi-width grid
histogram over canonical min-space; every non-empty cell costs one
tuple-equivalent of bandwidth up front.  The coordinator then selects
the broadcast candidate by *estimated prune count* — how many
histogrammed candidates at other sites the tuple would dominate —
instead of by the Corollary-2 bound.  All soundness machinery
(Corollary-2 bounds for expunge and termination) is retained, so the
answer is provably identical; only the selection heuristic and the
up-front synopsis traffic differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..net.message import Message, MessageKind
from ..net.stats import LatencyModel
from ..net.transport import SiteEndpoint
from .coordinator import _Request
from .edsud import EDSUD, EDSUDConfig, _Resident
from .site import LocalSite

__all__ = ["GridSynopsis", "build_site_synopsis", "SynopsisEDSUD"]


@dataclass(frozen=True)
class GridSynopsis:
    """An equi-width histogram of one site's local skyline candidates."""

    site_id: int
    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    cells_per_dim: int
    #: cell index tuple → (candidate count, mean existential probability)
    cells: Dict[Tuple[int, ...], Tuple[int, float]] = field(default_factory=dict)

    @property
    def entry_count(self) -> int:
        """Non-empty cells = tuple-equivalents this synopsis cost to ship."""
        return len(self.cells)

    def cell_lower_corner(self, cell: Tuple[int, ...]) -> Tuple[float, ...]:
        widths = self._widths()
        return tuple(
            lo + idx * w for lo, idx, w in zip(self.lower, cell, widths)
        )

    def _widths(self) -> Tuple[float, ...]:
        return tuple(
            (up - lo) / self.cells_per_dim if up > lo else 1.0
            for lo, up in zip(self.lower, self.upper)
        )

    def estimated_dominated(self, point: Tuple[float, ...]) -> int:
        """Candidates in cells whose whole extent ``point`` dominates.

        A cell is counted when the point is ≤ its lower corner with a
        strict dimension — then every candidate inside is dominated.
        Conservative (boundary cells are skipped), which is the right
        bias for a selection heuristic.
        """
        total = 0
        for cell, (count, _mean_p) in self.cells.items():
            corner = self.cell_lower_corner(cell)
            strict = False
            dominated = True
            for p, c in zip(point, corner):
                if p > c:
                    dominated = False
                    break
                if p < c:
                    strict = True
            if dominated and strict:
                total += count
        return total


def build_site_synopsis(site: LocalSite, cells_per_dim: int = 8) -> GridSynopsis:
    """Histogram a site's current candidate queue in min-space."""
    if cells_per_dim < 1:
        raise ValueError("need at least one cell per dimension")
    points = []
    for candidate in site._queue:  # the qualified local skyline
        values = candidate.tuple.values
        if site.preference is not None:
            values = site.preference.project(values)
        points.append((tuple(values), candidate.tuple.probability))
    if not points:
        return GridSynopsis(site.site_id, (), (), cells_per_dim, {})
    d = len(points[0][0])
    lower = tuple(min(p[0][j] for p in points) for j in range(d))
    upper = tuple(max(p[0][j] for p in points) for j in range(d))
    widths = tuple(
        (up - lo) / cells_per_dim if up > lo else 1.0
        for lo, up in zip(lower, upper)
    )
    raw: Dict[Tuple[int, ...], List[float]] = {}
    for values, prob in points:
        cell = tuple(
            min(cells_per_dim - 1, int((v - lo) / w))
            for v, lo, w in zip(values, lower, widths)
        )
        raw.setdefault(cell, []).append(prob)
    cells = {
        cell: (len(probs), sum(probs) / len(probs)) for cell, probs in raw.items()
    }
    return GridSynopsis(site.site_id, lower, upper, cells_per_dim, cells)


class SynopsisEDSUD(EDSUD):
    """e-DSUD with §5.2's rejected synopsis-based feedback selection.

    Identical answers (the sound Corollary-2 machinery still governs
    expunge and termination); only the broadcast *order* follows the
    estimated prune count, and the synopsis shipment is billed up
    front.
    """

    algorithm = "synopsis-e-DSUD"

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        config: Optional[EDSUDConfig] = None,
        cells_per_dim: int = 8,
    ) -> None:
        super().__init__(sites, threshold, preference, latency_model, config=config)
        self.cells_per_dim = cells_per_dim
        self.synopses: Dict[int, GridSynopsis] = {}
        self.synopsis_tuples = 0

    def _prepare_sites_script(
        self,
    ) -> Generator[Optional[_Request], Any, List[int]]:
        sizes = yield from super()._prepare_sites_script()
        # The rejected design's defining cost: one shipment of every
        # non-empty histogram cell, billed as tuple traffic.
        total = 0
        for site in self.sites:
            synopsis = build_site_synopsis(site, self.cells_per_dim)
            self.synopses[site.site_id] = synopsis
            for _ in range(synopsis.entry_count):
                self.stats.record(
                    Message.bearing(
                        MessageKind.DATA, self._name(site), "server", None
                    )
                )
            total += synopsis.entry_count
        self.synopsis_tuples = total
        self.stats.record_round(tuples_in_round=total)
        return sizes

    def _max_bound_resident(self) -> Optional[_Resident]:
        """Pick by estimated prune count; break ties by the sound bound.

        Residents whose bound is already below the threshold are left
        for the expunge machinery — selecting them would be wasted
        bandwidth regardless of their estimated reach.
        """
        best = None
        best_key = None
        for resident in self._residents.values():
            if resident.bound < self.threshold:
                continue
            point = resident.quaternion.tuple.values
            if self.preference is not None:
                point = self.preference.project(point)
            reach = sum(
                synopsis.estimated_dominated(tuple(point))
                for site_id, synopsis in self.synopses.items()
                if site_id != resident.quaternion.site
            )
            key = (reach, resident.bound)
            if best_key is None or key > best_key:
                best = resident
                best_key = key
        if best is not None:
            return best
        # Everyone is below the threshold: defer to the base behaviour
        # so termination logic sees the true maximum bound.
        return super()._max_bound_resident()

    def _extra(self) -> dict:
        extra = super()._extra()
        extra["synopsis_tuples"] = float(self.synopsis_tuples)
        return extra

"""Choosing an algorithm from the Eqs. 6–8 cost model.

The §4 analysis is actionable: before moving any data, the expected
skyline cardinality ``H(d, n)`` predicts what each strategy will
transmit —

* **ship-all** pays exactly ``N``;
* **naive** pays ``Σ|SKY(D_i)| × m ≈ m · H(d, N/m) · m`` (every local
  skyline tuple travels up once and back out m−1 times);
* any *resolve-by-broadcast* algorithm (DSUD, e-DSUD) pays at least the
  Ceiling ``|SKY(H)| × m ≈ H(d, N) · m`` — each qualified tuple must
  reach the server and be checked against the other sites.

That last line is a genuine lower bound, which yields a clean decision
rule: when the Ceiling already exceeds ``N`` (skyline-heavy data: high
``d``, many sites, small partitions), shipping everything is provably
no worse than the cleverest iterative algorithm, and otherwise e-DSUD
is the right default.  :func:`recommend_algorithm` applies the rule and
returns the estimates it used, so callers can see the margin.

The threshold ``q`` scales the probabilistic skyline relative to the
certain-data estimate; the correction applied here is the uniform-
probability heuristic ``max(0, (1 − q))`` for the fraction of
candidates that survive the threshold (exact at q→1 where only
undominated, near-certain tuples remain; deliberately rough elsewhere —
these are planning numbers, not guarantees, and the tests hold them to
ordering, not precision).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.cardinality import expected_skyline_cardinality

__all__ = ["CostEstimates", "estimate_costs", "recommend_algorithm"]


@dataclass(frozen=True)
class CostEstimates:
    """Expected tuples transmitted per strategy, plus the lower bound."""

    cardinality: int
    dimensionality: int
    sites: int
    threshold: float
    ship_all: float
    naive: float
    ceiling: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "ship-all": self.ship_all,
            "naive": self.naive,
            "ceiling": self.ceiling,
        }


def estimate_costs(
    cardinality: int, dimensionality: int, sites: int, threshold: float = 0.3
) -> CostEstimates:
    """Eqs. 6–8 turned into per-strategy bandwidth forecasts."""
    if sites < 1:
        raise ValueError("need at least one site")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
    survive = max(0.05, 1.0 - threshold)
    local_each = expected_skyline_cardinality(
        dimensionality, max(1, cardinality // sites)
    ) * survive
    global_size = expected_skyline_cardinality(dimensionality, cardinality) * survive
    return CostEstimates(
        cardinality=cardinality,
        dimensionality=dimensionality,
        sites=sites,
        threshold=threshold,
        ship_all=float(cardinality),
        naive=sites * local_each * sites,  # up once + out (m-1) times ≈ ×m
        ceiling=global_size * sites,
    )


def recommend_algorithm(
    cardinality: int, dimensionality: int, sites: int, threshold: float = 0.3
) -> "tuple[str, CostEstimates]":
    """Pick ``"edsud"`` or ``"ship-all"`` from the forecasts.

    The rule rests on the Ceiling being a true lower bound for any
    broadcast-resolving algorithm: if even that floor exceeds shipping
    the raw data, iterate no further.  A 1.5× safety margin absorbs the
    gap between e-DSUD and the unattainable Ceiling observed across the
    benchmark suite (1.3–1.8×).
    """
    estimates = estimate_costs(cardinality, dimensionality, sites, threshold)
    if estimates.ceiling * 1.5 >= estimates.ship_all:
        return "ship-all", estimates
    return "edsud", estimates

"""Continuous skyline maintenance under local updates (§5.4).

After an initial distributed query has produced ``SKY(H)``, local sites
keep receiving inserts and deletes.  Two maintainers are provided:

* :class:`IncrementalMaintainer` — the paper's replica-based strategy.
  ``SKY(H)`` is duplicated at every participant, so most updates
  resolve with *zero* wide-area tuple traffic:

  - **insert** — existing results dominated by the new tuple are
    re-weighted locally (their global probability just gains the
    factor ``1 − P(t)``); the new tuple itself is globally resolved
    only when the replica cannot already disqualify it.
  - **delete** — results lose the deleted dominator's factor, again a
    local reweighting; only locally-qualified tuples that the deleted
    tuple had been suppressing are re-resolved over the network, and a
    replica-based bound skips most of those resolutions too.

* :class:`NaiveMaintainer` — the strawman the paper compares against:
  rerun the full distributed query whenever fresh results must be
  reported.

Both maintainers keep the exact invariant tested by the suite: after
any update sequence their answer equals a from-scratch centralized
recomputation over the current site databases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference, dominates
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from ..core.probability import feedback_pruning_bound
from ..core.tuples import UncertainTuple
from ..net.message import Message, MessageKind
from ..net.stats import LatencyModel, NetworkStats
from .edsud import EDSUD
from .site import LocalSite

if TYPE_CHECKING:
    from ..replica.manager import ReplicaManager

__all__ = ["MaintenanceReport", "IncrementalMaintainer", "NaiveMaintainer"]


@dataclass
class MaintenanceReport:
    """What one update cost and changed."""

    operation: str
    key: int
    seconds: float
    tuples_transmitted: int
    added: List[int] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)
    reweighted: List[int] = field(default_factory=list)


class _MaintainerBase:
    """Shared bootstrap: run e-DSUD once to obtain the initial SKY(H)."""

    def __init__(
        self,
        sites: Sequence[LocalSite],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        replica_manager: Optional["ReplicaManager"] = None,
    ) -> None:
        self.sites = list(sites)
        self.threshold = threshold
        self.preference = preference
        self.latency_model = latency_model or LatencyModel()
        self.stats = NetworkStats(latency_model=self.latency_model)
        self.replica_manager = replica_manager
        self.sky: Dict[int, Tuple[UncertainTuple, float]] = {}
        self._bootstrap()

    def _apply_insert(self, site_id: int, t: UncertainTuple) -> None:
        """Insert at the primary AND every buddy replica.

        Updates that only touch the primary are the resurrection bug a
        replicated cluster cannot afford: a failover after a
        primary-only delete would bring the tuple back from the dead,
        and a primary-only insert would silently vanish.  All §5.4
        writes therefore route through here.
        """
        self._site(site_id).insert_tuple(t)
        if self.replica_manager is not None:
            self.replica_manager.forward_insert(site_id, t)

    def _apply_delete(self, site_id: int, key: int) -> UncertainTuple:
        """Delete at the primary AND every buddy replica (see _apply_insert)."""
        t = self._site(site_id).delete_tuple(key)
        if self.replica_manager is not None:
            self.replica_manager.forward_delete(site_id, key)
        return t

    def _bootstrap(self) -> None:
        result = EDSUD(
            self.sites, self.threshold, self.preference, self.latency_model
        ).run()
        self.sky = {m.key: (m.tuple, m.probability) for m in result.answer}
        self._push_replicas()

    def _push_replicas(self) -> None:
        for site in self.sites:
            self._control_message("server", f"site-{site.site_id}")
            site.set_replica(self.sky)

    def skyline(self) -> ProbabilisticSkyline:
        """The currently maintained global answer."""
        members = [SkylineMember(t, p) for t, p in self.sky.values()]
        return ProbabilisticSkyline(self.threshold, members)

    def _site(self, site_id: int) -> LocalSite:
        for site in self.sites:
            if site.site_id == site_id:
                return site
        raise KeyError(f"no site with id {site_id}")

    def _tuple_message(self, sender: str, receiver: str) -> None:
        self.stats.record(Message.bearing(MessageKind.UPDATE, sender, receiver, None))

    def _control_message(self, sender: str, receiver: str) -> None:
        self.stats.record(Message.bearing(MessageKind.CONTROL, sender, receiver, None))


class IncrementalMaintainer(_MaintainerBase):
    """§5.4's replica-based incremental maintenance."""

    def insert(self, site_id: int, t: UncertainTuple) -> MaintenanceReport:
        start = time.perf_counter()
        before = self.stats.tuples_transmitted
        self._apply_insert(site_id, t)
        report = MaintenanceReport("insert", t.key, 0.0, 0)

        # 1. Reweight existing results the new tuple dominates — pure
        #    replica arithmetic, no network tuples.
        removed = []
        for key, (s, prob) in list(self.sky.items()):
            if dominates(t, s, self.preference):
                new_prob = feedback_pruning_bound(prob, [t])
                if new_prob < self.threshold:
                    removed.append(key)
                    del self.sky[key]
                else:
                    self.sky[key] = (s, new_prob)
                    report.reweighted.append(key)
        report.removed.extend(removed)

        # 2. Does the new tuple itself qualify?  The replica gives a
        #    free upper bound before any bandwidth is spent.
        bound = feedback_pruning_bound(
            t.probability,
            (s for s, _prob in self.sky.values() if dominates(s, t, self.preference)),
        )
        if bound >= self.threshold:
            prob = self._resolve_global(site_id, t)
            if prob >= self.threshold:
                self.sky[t.key] = (t, prob)
                report.added.append(t.key)

        self._sync_replicas_if_changed(report)
        report.seconds = time.perf_counter() - start
        report.tuples_transmitted = self.stats.tuples_transmitted - before
        return report

    def delete(self, site_id: int, key: int) -> MaintenanceReport:
        start = time.perf_counter()
        before = self.stats.tuples_transmitted
        site = self._site(site_id)
        t = self._apply_delete(site_id, key)
        report = MaintenanceReport("delete", key, 0.0, 0)

        # 1. The tuple itself leaves the answer if it was in it.
        if key in self.sky:
            del self.sky[key]
            report.removed.append(key)

        # 2. Results it dominated regain its non-occurrence factor —
        #    again replica-local arithmetic.
        survivor_factor = 1.0 - t.probability
        if survivor_factor > 0.0:
            # A P(t)=1 tuple forces every dominated tuple's probability
            # to zero, so none of them can be a current member and the
            # reweighting loop would have nothing to divide.
            for skey, (s, prob) in list(self.sky.items()):
                if dominates(t, s, self.preference):
                    self.sky[skey] = (s, prob / survivor_factor)
                    report.reweighted.append(skey)

        # 3. Locally-qualified tuples the deleted one was suppressing
        #    may newly qualify.  The deleting site scans itself for
        #    free; every other site is probed with one tuple.  The
        #    current (post-removal) answer doubles as the pruning set —
        #    sites hold it as their replica anyway — so dominated
        #    tuples that provably still miss q are skipped without an
        #    index probe.
        pruners = [s for s, _prob in self.sky.values()]
        candidates: List[Tuple[UncertainTuple, float, int]] = []
        for cand, local_prob in site.dominated_local_candidates(
            t, self.threshold, pruners=pruners
        ):
            candidates.append((cand, local_prob, site_id))
        recovered = 0
        for other in self.sites:
            if other.site_id == site_id:
                continue
            self._tuple_message("server", f"site-{other.site_id}")
            found = other.dominated_local_candidates(
                t, self.threshold, pruners=pruners
            )
            for cand, local_prob in found:
                candidates.append((cand, local_prob, other.site_id))
            recovered += len(found)
        self.stats.record_round(tuples_in_round=len(self.sites) - 1)

        for cand, _local_prob, origin in candidates:
            if cand.key in self.sky:
                continue
            bound = feedback_pruning_bound(
                cand.probability,
                (
                    s
                    for s, _prob in self.sky.values()
                    if s.key != cand.key and dominates(s, cand, self.preference)
                ),
            )
            if bound < self.threshold:
                continue
            prob = self._resolve_global(origin, cand)
            if prob >= self.threshold:
                self.sky[cand.key] = (cand, prob)
                report.added.append(cand.key)

        self._sync_replicas_if_changed(report)
        report.seconds = time.perf_counter() - start
        report.tuples_transmitted = self.stats.tuples_transmitted - before
        return report

    # ------------------------------------------------------------------

    def _resolve_global(self, origin_site: int, t: UncertainTuple) -> float:
        """Exact global probability of ``t``: one tuple up, m−1 probes out."""
        origin = self._site(origin_site)
        self._tuple_message(f"site-{origin_site}", "server")
        prob = (
            origin.local_skyline_probability(t)
            if origin.contains(t.key)
            else origin.probe(t) * t.probability
        )
        sent = 0
        for other in self.sites:
            if other.site_id == origin_site:
                continue
            self._tuple_message("server", f"site-{other.site_id}")
            prob *= other.probe(t)
            self._control_message(f"site-{other.site_id}", "server")
            sent += 1
        self.stats.record_round(tuples_in_round=1 + sent)
        return prob

    def _sync_replicas_if_changed(self, report: MaintenanceReport) -> None:
        if not (report.added or report.removed or report.reweighted):
            return
        # _push_replicas bills one control message per site.
        self._push_replicas()
        self.stats.record_round()


class NaiveMaintainer(_MaintainerBase):
    """Recompute the whole distributed query on every update."""

    def insert(self, site_id: int, t: UncertainTuple) -> MaintenanceReport:
        start = time.perf_counter()
        self._apply_insert(site_id, t)
        tuples = self._recompute()
        return MaintenanceReport(
            "insert", t.key, time.perf_counter() - start, tuples
        )

    def delete(self, site_id: int, key: int) -> MaintenanceReport:
        start = time.perf_counter()
        self._apply_delete(site_id, key)
        tuples = self._recompute()
        return MaintenanceReport(
            "delete", key, time.perf_counter() - start, tuples
        )

    def _recompute(self) -> int:
        result = EDSUD(
            self.sites, self.threshold, self.preference, self.latency_model
        ).run()
        self.sky = {m.key: (m.tuple, m.probability) for m in result.answer}
        self._push_replicas()
        self.stats.tuples_transmitted += result.stats.tuples_transmitted
        self.stats.messages += result.stats.messages
        self.stats.simulated_time += result.stats.simulated_time
        self.stats.rounds += result.stats.rounds
        # Merge the per-kind breakdown too, or the book goes asymmetric:
        # every absorbed message must stay attributable to its kind.
        for kind, count in result.stats.by_kind.items():
            self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + count
        return result.stats.tuples_transmitted

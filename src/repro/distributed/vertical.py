"""Probabilistic skyline over *vertically* partitioned uncertain data.

The paper closes (§8) by naming vertical partitioning — every site
stores one attribute of the relation, as in Balke et al.'s distributed
skyline — as the open problem its horizontal algorithms do not cover.
This module supplies that missing algorithm, adapting the
threshold-algorithm (TA) style of sorted access to the probabilistic
threshold semantics.

Why the certain-data algorithm is not enough
--------------------------------------------
Balke et al. stop sorted access once one tuple has surfaced in every
attribute list: everything unseen is dominated by it, and a dominated
tuple cannot be a (certain) skyline member.  Under possible-world
semantics a dominated tuple merely loses a *factor* ``(1 − P(t))`` per
dominator, so one surfaced tuple proves nothing.  The probabilistic
stopping rule has to accumulate dominating mass:

    every unseen tuple u has u_j ≥ frontier_j on every dimension,
    so each fully-seen tuple t with t ≼ frontier (strict somewhere)
    dominates *all* unseen tuples, and

        P_sky(u) ≤ ∏_{t complete, t ≺ frontier} (1 − P(t)) =: B.

    Sorted access may stop as soon as B < q.

Afterwards the candidate set (= every tuple touched by sorted access)
is completed by random access, pruned with candidate-local dominator
bounds, and the survivors' *exact* skyline probabilities are resolved
with per-dimension dominator-set intersection — the coordinator walks
the sites in ascending selectivity order so the key set only ever
shrinks.

Bandwidth here is measured in **attribute entries** (a ``(key, value,
probability)`` triple is one entry; a horizontal tuple corresponds to
``d`` of them), reported separately per phase in
:class:`VerticalRunStats`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from ..core.probability import product_of_non_occurrence
from ..core.tuples import UncertainTuple

__all__ = ["VerticalSite", "VerticalRunStats", "VerticalSkylineCoordinator",
           "vertical_partition", "vertical_skyline"]


class VerticalSite:
    """One attribute column of the relation, sorted ascending.

    Stores ``(value_j, key, probability)`` for every tuple; the
    existential probability rides along with every column (it is part
    of each record, exactly as the horizontal sites carry it).
    Coordinates are canonical min-space values — apply a
    :class:`Preference` before construction (see
    :func:`vertical_partition`).
    """

    def __init__(self, dim: int, entries: Sequence[Tuple[float, int, float]]) -> None:
        self.dim = dim
        self.entries = sorted(entries)
        self._by_key: Dict[int, Tuple[float, float]] = {
            key: (value, prob) for value, key, prob in self.entries
        }
        self._values = [value for value, _key, _prob in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def sorted_access(self, position: int) -> Optional[Tuple[int, float, float]]:
        """The ``position``-th smallest entry as ``(key, value, prob)``."""
        if position >= len(self.entries):
            return None
        value, key, prob = self.entries[position]
        return key, value, prob

    def random_access(self, key: int) -> Tuple[float, float]:
        """This column's ``(value, probability)`` for one tuple."""
        return self._by_key[key]

    def count_leq(self, value: float) -> int:
        """How many entries have column value ≤ ``value`` (free control info)."""
        return bisect.bisect_right(self._values, value)

    def keys_leq(self, value: float) -> Dict[int, bool]:
        """Keys with column value ≤ ``value``; True where strictly less."""
        hi = bisect.bisect_right(self._values, value)
        return {
            key: column_value < value
            for column_value, key, _prob in self.entries[:hi]
        }

    def filter_leq(self, keys: Dict[int, bool], value: float) -> Dict[int, bool]:
        """Intersection step: keep keys whose column value is ≤ ``value``,
        OR-ing in this column's strictness."""
        out = {}
        for key, strict in keys.items():
            column_value, _prob = self._by_key[key]
            if column_value <= value:
                out[key] = strict or column_value < value
        return out


@dataclass
class VerticalRunStats:
    """Entry-level accounting, broken down by protocol phase."""

    sorted_accesses: int = 0
    random_accesses: int = 0
    dominator_entries: int = 0
    control_messages: int = 0
    candidates: int = 0
    verified: int = 0

    @property
    def total_entries(self) -> int:
        return self.sorted_accesses + self.random_accesses + self.dominator_entries


@dataclass
class _Partial:
    probability: float
    values: Dict[int, float] = field(default_factory=dict)

    def complete(self, d: int) -> bool:
        return len(self.values) == d

    def vector(self, d: int) -> Tuple[float, ...]:
        return tuple(self.values[j] for j in range(d))


class VerticalSkylineCoordinator:
    """TA-style probabilistic skyline over one column site per dimension."""

    def __init__(self, sites: Sequence[VerticalSite], threshold: float) -> None:
        if not sites:
            raise ValueError("need at least one column site")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
        dims = sorted(site.dim for site in sites)
        if dims != list(range(len(sites))):
            raise ValueError(f"sites must cover dimensions 0..d-1, got {dims}")
        self.sites = sorted(sites, key=lambda s: s.dim)
        self.threshold = threshold
        self.stats = VerticalRunStats()

    # ------------------------------------------------------------------

    def run(self) -> ProbabilisticSkyline:
        candidates = self._discovery_phase()
        survivors = self._pruning_phase(candidates)
        members = self._verification_phase(candidates, survivors)
        return ProbabilisticSkyline(self.threshold, members)

    # ------------------------------------------------------------------
    # phase 1: round-robin sorted access with the probabilistic stop
    # ------------------------------------------------------------------

    def _discovery_phase(self) -> Dict[int, _Partial]:
        d = len(self.sites)
        positions = [0] * d
        frontier: List[Optional[float]] = [None] * d
        partials: Dict[int, _Partial] = {}
        exhausted = [len(site) == 0 for site in self.sites]
        unseen_bound = 1.0
        # Complete tuples not yet folded into the bound: the frontier
        # only ever advances, so a factor once valid stays valid, and a
        # tuple not yet below the frontier may drop below it later.
        pending_complete: List[int] = []

        while not all(exhausted):
            for j, site in enumerate(self.sites):
                if exhausted[j]:
                    continue
                entry = site.sorted_access(positions[j])
                if entry is None:
                    exhausted[j] = True
                    continue
                self.stats.sorted_accesses += 1
                key, value, prob = entry
                positions[j] += 1
                frontier[j] = value
                partial = partials.setdefault(key, _Partial(probability=prob))
                was_complete = partial.complete(d)
                partial.values[j] = value
                if not was_complete and partial.complete(d):
                    pending_complete.append(key)
            if all(f is not None for f in frontier):
                still_pending = []
                folded: List[float] = []
                for key in pending_complete:
                    if self._strictly_below_frontier(partials[key], frontier):
                        folded.append(partials[key].probability)
                    else:
                        still_pending.append(key)
                pending_complete = still_pending
                if folded:
                    unseen_bound *= product_of_non_occurrence(folded)
                if unseen_bound < self.threshold:
                    # No tuple still unseen on every dimension can qualify.
                    break
            # One column exhausted means every tuple has surfaced at
            # least once — nothing remains "unseen", so discovery is
            # complete regardless of the bound.
            if any(exhausted):
                break
        self.stats.candidates = len(partials)
        return partials

    @staticmethod
    def _strictly_below_frontier(partial: _Partial, frontier: List[float]) -> bool:
        strict = False
        for j, f in enumerate(frontier):
            v = partial.values[j]
            if v > f:
                return False
            if v < f:
                strict = True
        return strict

    # ------------------------------------------------------------------
    # phase 2: complete candidates, prune with candidate-local bounds
    # ------------------------------------------------------------------

    def _pruning_phase(self, partials: Dict[int, _Partial]) -> List[int]:
        d = len(self.sites)
        for key, partial in partials.items():
            for j in range(d):
                if j not in partial.values:
                    value, _prob = self.sites[j].random_access(key)
                    self.stats.random_accesses += 1
                    partial.values[j] = value

        # Sort by coordinate sum so every dominator of a candidate
        # precedes it; accumulate bounds with early exit (same trick as
        # the centralized SFS algorithm, over the candidate set only —
        # a *subset* of true dominators, hence a sound upper bound).
        ordered = sorted(
            partials.items(), key=lambda kv: sum(kv[1].values.values())
        )
        survivors: List[int] = []
        vectors = [(key, p.vector(d), p.probability) for key, p in ordered]
        for i, (key, vec, prob) in enumerate(vectors):
            if prob < self.threshold:
                continue
            floor = self.threshold / prob
            bound = product_of_non_occurrence(
                (
                    oprob
                    for _okey, ovec, oprob in vectors[:i]
                    if _dominates_vec(ovec, vec)
                ),
                floor=floor,
            )
            if bound >= floor:
                survivors.append(key)
        return survivors

    # ------------------------------------------------------------------
    # phase 3: exact probabilities via shrinking dominator intersection
    # ------------------------------------------------------------------

    def _verification_phase(
        self, partials: Dict[int, _Partial], survivors: List[int]
    ) -> List[SkylineMember]:
        d = len(self.sites)
        members: List[SkylineMember] = []
        for key in survivors:
            partial = partials[key]
            vec = partial.vector(d)
            # Ask every site how selective its column is (control
            # traffic), then intersect starting from the smallest set so
            # transmitted dominator entries only shrink.
            counts = [
                (self.sites[j].count_leq(vec[j]), j) for j in range(d)
            ]
            self.stats.control_messages += d
            counts.sort()
            first = counts[0][1]
            keys = self.sites[first].keys_leq(vec[first])
            self.stats.dominator_entries += len(keys)
            for _count, j in counts[1:]:
                keys = self.sites[j].filter_leq(keys, vec[j])
                self.stats.dominator_entries += len(keys)
            dominator_probs: List[float] = []
            for dom_key, strict in keys.items():
                if dom_key == key or not strict:
                    continue  # self, or equal on every dimension
                _value, prob = self.sites[0].random_access(dom_key)
                dominator_probs.append(prob)
            product = product_of_non_occurrence(dominator_probs)
            probability = partial.probability * product
            self.stats.verified += 1
            if probability >= self.threshold:
                members.append(
                    SkylineMember(
                        UncertainTuple(key, vec, partial.probability), probability
                    )
                )
        return members


def _dominates_vec(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict


def vertical_partition(
    database: Sequence[UncertainTuple],
    preference: Optional[Preference] = None,
) -> List[VerticalSite]:
    """Split a relation column-wise into one :class:`VerticalSite` per
    (effective) dimension, projecting through ``preference`` first."""
    if not database:
        raise ValueError("cannot vertically partition an empty relation")
    if preference is not None:
        projected = [(t.key, preference.project(t.values), t.probability) for t in database]
    else:
        projected = [(t.key, tuple(t.values), t.probability) for t in database]
    d = len(projected[0][1])
    sites = []
    for j in range(d):
        sites.append(
            VerticalSite(
                dim=j,
                entries=[(values[j], key, prob) for key, values, prob in projected],
            )
        )
    return sites


def vertical_skyline(
    database: Sequence[UncertainTuple],
    threshold: float,
    preference: Optional[Preference] = None,
) -> Tuple[ProbabilisticSkyline, VerticalRunStats]:
    """Partition column-wise, run the TA-style algorithm, return
    ``(answer, stats)``.

    The answer's member tuples carry *projected* (min-space) values;
    compare by key against a centralized answer when a preference is in
    play.
    """
    coordinator = VerticalSkylineCoordinator(
        vertical_partition(database, preference), threshold
    )
    answer = coordinator.run()
    return answer, coordinator.stats

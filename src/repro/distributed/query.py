"""One-call front door for distributed skyline queries.

:func:`distributed_skyline` assembles :class:`LocalSite` runtimes from
raw partitions, picks the algorithm by name, runs it, and hands back
the full :class:`~repro.distributed.runner.RunResult` — the function
examples, tests, and the benchmark harness all build on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..fault.injection import FaultyEndpoint
from ..fault.retry import RetryPolicy
from ..fault.schedule import FaultSchedule
from ..net.stats import LatencyModel
from .baseline import ShipAllBaseline
from .coordinator import Coordinator
from .dsud import DSUD
from .edsud import EDSUD, EDSUDConfig
from .naive import NaiveLocalSkylines
from .runner import RunResult
from .site import LocalSite, SiteConfig

__all__ = ["ALGORITHMS", "build_sites", "distributed_skyline"]

ALGORITHMS: Dict[str, Type[Coordinator]] = {
    "ship-all": ShipAllBaseline,
    "naive": NaiveLocalSkylines,
    "dsud": DSUD,
    "edsud": EDSUD,
}


def build_sites(
    partitions: Sequence[Sequence[UncertainTuple]],
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
) -> List[LocalSite]:
    """Instantiate one :class:`LocalSite` per partition (ids are indices)."""
    return [
        LocalSite(site_id=i, database=part, preference=preference, config=site_config)
        for i, part in enumerate(partitions)
    ]


def distributed_skyline(
    partitions: Sequence[Sequence[UncertainTuple]],
    threshold: float,
    algorithm: str = "edsud",
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    edsud_config: Optional[EDSUDConfig] = None,
    limit: Optional[int] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    batch_size: int = 1,
) -> RunResult:
    """Answer a distributed probabilistic skyline query.

    Parameters
    ----------
    partitions:
        The horizontal partition ``D_1 … D_m`` — one sequence of
        :class:`UncertainTuple` per site.
    threshold:
        The probability threshold ``q`` in ``(0, 1]``.
    algorithm:
        ``"edsud"`` (default), ``"dsud"``, ``"naive"``, or
        ``"ship-all"``.
    preference:
        Optional per-dimension directions / subspace.
    site_config, latency_model, edsud_config:
        Execution knobs; see the respective classes.
    limit:
        Optional top-k: stop after the ``k`` globally most probable
        qualified tuples are resolved, emitted in descending
        probability order.  Supported by the progressive algorithms
        (``dsud``/``edsud``) only — the point is stopping early, which
        the bulk strawmen cannot do.  Composes with
        ``fault_schedule``: a tuple whose probability is only a
        Corollary-1 bound is never emitted early, so if every failed
        site recovers before termination the answer (and emission
        order) equals the fault-free run; with sites permanently DOWN
        the held-back candidates are disclosed via
        ``RunResult.coverage.buffered`` / ``coverage.degraded``.
    fault_schedule:
        Optional chaos plan: every site is wrapped in a
        :class:`~repro.fault.injection.FaultyEndpoint` replaying it.
    retry_policy:
        Optional :class:`~repro.fault.retry.RetryPolicy` for every
        coordinator→site RPC (progressive algorithms only); exhausted
        retries degrade the query instead of failing it.
    batch_size:
        Feedback quaternions per FEEDBACK message (progressive
        algorithms only).  The default 1 reproduces the paper's
        per-candidate protocol bit-for-bit; larger batches cut
        coordination rounds (see docs/performance.md).

    Returns the :class:`RunResult` with the answer, exact bandwidth
    accounting, the progressiveness timeline, and the coverage report.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        )
    sites: Sequence = build_sites(
        partitions, preference=preference, site_config=site_config
    )
    if fault_schedule is not None:
        sites = [FaultyEndpoint(site, fault_schedule) for site in sites]
    cls = ALGORITHMS[algorithm]
    if cls is EDSUD:
        coordinator: Coordinator = EDSUD(
            sites, threshold, preference, latency_model,
            config=edsud_config, limit=limit, retry_policy=retry_policy,
            batch_size=batch_size,
        )
    elif cls is DSUD:
        coordinator = DSUD(
            sites, threshold, preference, latency_model, limit=limit,
            retry_policy=retry_policy, batch_size=batch_size,
        )
    else:
        if limit is not None:
            raise ValueError(
                f"limit= requires a progressive algorithm (dsud/edsud); "
                f"{algorithm!r} resolves everything before its first result"
            )
        if batch_size != 1:
            raise ValueError(
                f"batch_size= requires a progressive algorithm (dsud/edsud); "
                f"{algorithm!r} has no broadcast rounds to batch"
            )
        coordinator = cls(sites, threshold, preference, latency_model)
    return coordinator.run()

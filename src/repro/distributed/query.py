"""One-call front door for distributed skyline queries.

:func:`distributed_skyline` assembles :class:`LocalSite` runtimes from
raw partitions, picks the algorithm by name, runs it, and hands back
the full :class:`~repro.distributed.runner.RunResult` — the function
examples, tests, and the benchmark harness all build on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..fault.injection import FaultyEndpoint
from ..fault.retry import RetryPolicy
from ..fault.schedule import FaultSchedule
from ..net.stats import LatencyModel
from ..replica.manager import ReplicaManager
from .baseline import ShipAllBaseline
from .coordinator import Coordinator
from .dsud import DSUD
from .edsud import EDSUD, EDSUDConfig
from .naive import NaiveLocalSkylines
from .runner import RunResult
from .site import LocalSite, SiteConfig

__all__ = [
    "ALGORITHMS",
    "build_sites",
    "build_coordinator",
    "distributed_skyline",
    "adistributed_skyline",
]

ALGORITHMS: Dict[str, Type[Coordinator]] = {
    "ship-all": ShipAllBaseline,
    "naive": NaiveLocalSkylines,
    "dsud": DSUD,
    "edsud": EDSUD,
}


def build_sites(
    partitions: Sequence[Sequence[UncertainTuple]],
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
) -> List[LocalSite]:
    """Instantiate one :class:`LocalSite` per partition (ids are indices)."""
    return [
        LocalSite(site_id=i, database=part, preference=preference, config=site_config)
        for i, part in enumerate(partitions)
    ]


def build_coordinator(
    partitions: Sequence[Sequence[UncertainTuple]],
    threshold: float,
    algorithm: str = "edsud",
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    edsud_config: Optional[EDSUDConfig] = None,
    limit: Optional[int] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    batch_size: int = 1,
    replication_factor: int = 1,
    replica_manager: Optional[ReplicaManager] = None,
) -> Coordinator:
    """Assemble (but do not run) the coordinator for one query.

    Shared by :func:`distributed_skyline` (sync ``run``) and
    :func:`adistributed_skyline` (awaitable ``asteps``); validation
    and site/replica assembly are identical, so the two drivers differ
    only in who owns the event loop.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        )
    if replication_factor < 1:
        raise ValueError(
            f"replication_factor must be >= 1, got {replication_factor!r}"
        )
    sites: Sequence = build_sites(
        partitions, preference=preference, site_config=site_config
    )
    if fault_schedule is not None:
        sites = [FaultyEndpoint(site, fault_schedule) for site in sites]
    cls = ALGORITHMS[algorithm]
    if replica_manager is None and replication_factor > 1:
        if cls not in (DSUD, EDSUD):
            raise ValueError(
                f"replication_factor= requires a progressive algorithm "
                f"(dsud/edsud); {algorithm!r} has no failover protocol"
            )
        # Replicas are provisioned from the (possibly fault-wrapped)
        # primaries via ship_all — a maintenance path the fault
        # schedule does not gate — onto plain LocalSite copies; the
        # provisioning cost lands on the manager's standing books.
        replica_manager = ReplicaManager(
            sites, replication_factor,
            preference=preference, site_config=site_config,
        )
        replica_manager.ensure_provisioned()
    if cls is EDSUD:
        coordinator: Coordinator = EDSUD(
            sites, threshold, preference, latency_model,
            config=edsud_config, limit=limit, retry_policy=retry_policy,
            batch_size=batch_size, replica_manager=replica_manager,
        )
    elif cls is DSUD:
        coordinator = DSUD(
            sites, threshold, preference, latency_model, limit=limit,
            retry_policy=retry_policy, batch_size=batch_size,
            replica_manager=replica_manager,
        )
    else:
        if replica_manager is not None:
            raise ValueError(
                f"replication requires a progressive algorithm "
                f"(dsud/edsud); {algorithm!r} has no failover protocol"
            )
        if limit is not None:
            raise ValueError(
                f"limit= requires a progressive algorithm (dsud/edsud); "
                f"{algorithm!r} resolves everything before its first result"
            )
        if batch_size != 1:
            raise ValueError(
                f"batch_size= requires a progressive algorithm (dsud/edsud); "
                f"{algorithm!r} has no broadcast rounds to batch"
            )
        coordinator = cls(sites, threshold, preference, latency_model)
    return coordinator


def distributed_skyline(
    partitions: Sequence[Sequence[UncertainTuple]],
    threshold: float,
    algorithm: str = "edsud",
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    edsud_config: Optional[EDSUDConfig] = None,
    limit: Optional[int] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    batch_size: int = 1,
    replication_factor: int = 1,
    replica_manager: Optional[ReplicaManager] = None,
) -> RunResult:
    """Answer a distributed probabilistic skyline query.

    Parameters
    ----------
    partitions:
        The horizontal partition ``D_1 … D_m`` — one sequence of
        :class:`UncertainTuple` per site.
    threshold:
        The probability threshold ``q`` in ``(0, 1]``.
    algorithm:
        ``"edsud"`` (default), ``"dsud"``, ``"naive"``, or
        ``"ship-all"``.
    preference:
        Optional per-dimension directions / subspace.
    site_config, latency_model, edsud_config:
        Execution knobs; see the respective classes.
    limit:
        Optional top-k: stop after the ``k`` globally most probable
        qualified tuples are resolved, emitted in descending
        probability order.  Supported by the progressive algorithms
        (``dsud``/``edsud``) only — the point is stopping early, which
        the bulk strawmen cannot do.  Composes with
        ``fault_schedule``: a tuple whose probability is only a
        Corollary-1 bound is never emitted early, so if every failed
        site recovers before termination the answer (and emission
        order) equals the fault-free run; with sites permanently DOWN
        the held-back candidates are disclosed via
        ``RunResult.coverage.buffered`` / ``coverage.degraded``.
    fault_schedule:
        Optional chaos plan: every site is wrapped in a
        :class:`~repro.fault.injection.FaultyEndpoint` replaying it.
    retry_policy:
        Optional :class:`~repro.fault.retry.RetryPolicy` for every
        coordinator→site RPC (progressive algorithms only); exhausted
        retries degrade the query instead of failing it.
    batch_size:
        Feedback quaternions per FEEDBACK message (progressive
        algorithms only).  The default 1 reproduces the paper's
        per-candidate protocol bit-for-bit; larger batches cut
        coordination rounds (see docs/performance.md).
    replication_factor:
        Copies kept of every partition (progressive algorithms only).
        The default 1 is the unreplicated protocol, bit-identical to
        earlier behaviour.  With ``f >= 2`` each partition gets
        ``f - 1`` buddy replicas (seed-deterministic ring placement)
        and a primary that dies mid-query is *failed over*: a replica
        is promoted, the in-flight round replayed, and the answer
        stays exact — equal to the fault-free run — instead of
        degrading to Corollary-1 bounds (see docs/failure-model.md).
    replica_manager:
        Optionally supply a pre-built (already provisioned, possibly
        update-forwarded) :class:`~repro.replica.manager.ReplicaManager`
        instead of ``replication_factor``; its replica traffic is
        billed to this query's books from the moment the coordinator
        binds it.

    Returns the :class:`RunResult` with the answer, exact bandwidth
    accounting, the progressiveness timeline, and the coverage report.
    """
    coordinator = build_coordinator(
        partitions, threshold, algorithm=algorithm, preference=preference,
        site_config=site_config, latency_model=latency_model,
        edsud_config=edsud_config, limit=limit,
        fault_schedule=fault_schedule, retry_policy=retry_policy,
        batch_size=batch_size, replication_factor=replication_factor,
        replica_manager=replica_manager,
    )
    with coordinator:
        return coordinator.run()


async def adistributed_skyline(
    partitions: Sequence[Sequence[UncertainTuple]],
    threshold: float,
    algorithm: str = "edsud",
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    edsud_config: Optional[EDSUDConfig] = None,
    limit: Optional[int] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    batch_size: int = 1,
    replication_factor: int = 1,
    replica_manager: Optional[ReplicaManager] = None,
) -> RunResult:
    """Awaitable twin of :func:`distributed_skyline`.

    Same assembly, same knobs, same RunResult — but the query is driven
    through :meth:`~repro.distributed.coordinator.Coordinator.asteps`,
    so every coordinator→site RPC is awaited on the caller's event loop
    and the answer is bit-identical to the sync run (the async
    exactness suite pins this).
    """
    coordinator = build_coordinator(
        partitions, threshold, algorithm=algorithm, preference=preference,
        site_config=site_config, latency_model=latency_model,
        edsud_config=edsud_config, limit=limit,
        fault_schedule=fault_schedule, retry_policy=retry_policy,
        batch_size=batch_size, replication_factor=replication_factor,
        replica_manager=replica_manager,
    )
    async for _ in coordinator.asteps():
        pass
    return await coordinator.afinish()

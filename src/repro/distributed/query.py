"""One-call front door for distributed skyline queries.

:func:`distributed_skyline` assembles :class:`LocalSite` runtimes from
raw partitions, picks the algorithm by name, runs it, and hands back
the full :class:`~repro.distributed.runner.RunResult` — the function
examples, tests, and the benchmark harness all build on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from ..net.stats import LatencyModel
from .baseline import ShipAllBaseline
from .coordinator import Coordinator
from .dsud import DSUD
from .edsud import EDSUD, EDSUDConfig
from .naive import NaiveLocalSkylines
from .runner import RunResult
from .site import LocalSite, SiteConfig

__all__ = ["ALGORITHMS", "build_sites", "distributed_skyline"]

ALGORITHMS: Dict[str, Type[Coordinator]] = {
    "ship-all": ShipAllBaseline,
    "naive": NaiveLocalSkylines,
    "dsud": DSUD,
    "edsud": EDSUD,
}


def build_sites(
    partitions: Sequence[Sequence[UncertainTuple]],
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
) -> List[LocalSite]:
    """Instantiate one :class:`LocalSite` per partition (ids are indices)."""
    return [
        LocalSite(site_id=i, database=part, preference=preference, config=site_config)
        for i, part in enumerate(partitions)
    ]


def distributed_skyline(
    partitions: Sequence[Sequence[UncertainTuple]],
    threshold: float,
    algorithm: str = "edsud",
    preference: Optional[Preference] = None,
    site_config: Optional[SiteConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    edsud_config: Optional[EDSUDConfig] = None,
    limit: Optional[int] = None,
) -> RunResult:
    """Answer a distributed probabilistic skyline query.

    Parameters
    ----------
    partitions:
        The horizontal partition ``D_1 … D_m`` — one sequence of
        :class:`UncertainTuple` per site.
    threshold:
        The probability threshold ``q`` in ``(0, 1]``.
    algorithm:
        ``"edsud"`` (default), ``"dsud"``, ``"naive"``, or
        ``"ship-all"``.
    preference:
        Optional per-dimension directions / subspace.
    site_config, latency_model, edsud_config:
        Execution knobs; see the respective classes.
    limit:
        Optional top-k: stop after the ``k`` globally most probable
        qualified tuples are resolved, emitted in descending
        probability order.  Supported by the progressive algorithms
        (``dsud``/``edsud``) only — the point is stopping early, which
        the bulk strawmen cannot do.

    Returns the :class:`RunResult` with the answer, exact bandwidth
    accounting, and the progressiveness timeline.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        )
    sites = build_sites(partitions, preference=preference, site_config=site_config)
    cls = ALGORITHMS[algorithm]
    if cls is EDSUD:
        coordinator: Coordinator = EDSUD(
            sites, threshold, preference, latency_model,
            config=edsud_config, limit=limit,
        )
    elif cls is DSUD:
        coordinator = DSUD(sites, threshold, preference, latency_model, limit=limit)
    else:
        if limit is not None:
            raise ValueError(
                f"limit= requires a progressive algorithm (dsud/edsud); "
                f"{algorithm!r} resolves everything before its first result"
            )
        coordinator = cls(sites, threshold, preference, latency_model)
    return coordinator.run()

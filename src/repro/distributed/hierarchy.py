"""Hierarchical coordination: regions of sites behind one endpoint.

Real deployments are rarely flat — sites cluster in data centers, and
WAN traffic between regions costs far more than LAN traffic within
them.  This module adds a two-tier topology *without touching the
algorithms*: a :class:`RegionCoordinator` owns a group of ordinary
sites and itself implements the
:class:`~repro.net.transport.SiteEndpoint` surface, so the root
coordinator (DSUD/e-DSUD, unchanged) sees one "site" per region.

The correctness subtlety is the representative's probability.  A flat
site reports ``P_sky(t, D_i)`` over its own partition; a region must
report ``P_sky(t, D_R)`` over the *union* of its children — otherwise
the root would never collect the factors of the candidate's sibling
sites (it excludes the origin endpoint from broadcasts).  Computing
that union probability needs intra-region probes, which is exactly the
point: those are LAN messages, tracked separately in
``region.local_stats``, while the WAN bill shrinks from ``m_sites`` to
``m_regions`` endpoints.

The regional queue is a lazy max-heap: child-queue heads enter keyed by
their child-local probability (an upper bound on the regional value);
on pop, the head is resolved against the sibling sites and re-queued
with its exact value unless it still beats the next bound.  Sound
because resolution only ever lowers the key.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence

from ..core.dominance import Preference, dominates
from ..core.probability import feedback_pruning_bound
from ..core.tuples import UncertainTuple
from ..net.message import Message, MessageKind, Quaternion
from ..net.stats import NetworkStats
from ..net.transport import SiteEndpoint
from .site import ProbeReply

__all__ = ["RegionCoordinator", "build_regions"]


class RegionCoordinator:
    """A group of sites masquerading as one site endpoint."""

    def __init__(self, region_id: int, sites: Sequence[SiteEndpoint]) -> None:
        if not sites:
            raise ValueError("a region needs at least one site")
        self.site_id = region_id
        self.sites = list(sites)
        #: Intra-region (LAN) traffic, kept apart from the root's WAN books.
        self.local_stats = NetworkStats()
        self.threshold: Optional[float] = None
        self._heap: List = []  # (-bound, tick, quaternion, resolved, origin)
        self._counter = itertools.count()
        self._exhausted: set = set()
        self._feedback: List[UncertainTuple] = []
        self._pull_later: List[int] = []

    # ------------------------------------------------------------------
    # SiteEndpoint surface
    # ------------------------------------------------------------------

    def prepare(self, threshold: float) -> int:
        self.threshold = threshold
        self._heap = []
        self._exhausted = set()
        self._feedback = []
        total = 0
        for site in self.sites:
            self._lan(MessageKind.PREPARE, to_site=site)
            total += site.prepare(threshold)
            self._lan(MessageKind.PREPARE_REPLY, from_site=site)
            self._pull_from(site)
        return total

    def pop_representative(self) -> Optional[Quaternion]:
        """The region's best candidate, with its *regional* probability.

        Lazy resolution: heap keys are child-local probabilities
        (upper bounds); a popped head is resolved against sibling sites
        and either emitted (still ≥ the next bound) or re-queued with
        its exact value.
        """
        if self.threshold is None:
            raise RuntimeError("region used before prepare()")
        while self._heap:
            neg_prob, _, quaternion, resolved, origin = heapq.heappop(self._heap)
            prob = -neg_prob
            if prob < self.threshold:
                break
            if not resolved:
                regional = self._resolve_regional(quaternion)
                self._pull_from(self._site_by_id(origin))
                if regional < self.threshold:
                    continue  # can never qualify; its slot was refilled
                quaternion = Quaternion(
                    site=self.site_id,
                    tuple=quaternion.tuple,
                    local_probability=regional,
                )
                next_bound = -self._heap[0][0] if self._heap else 0.0
                if regional < next_bound:
                    heapq.heappush(
                        self._heap,
                        (-regional, next(self._counter), quaternion, True, origin),
                    )
                    continue
            # (A resolved entry's origin slot was already refilled when
            # it was first resolved — no further pull on emission.)
            return quaternion
        return None

    def probe_and_prune(self, t: UncertainTuple) -> ProbeReply:
        """Forward a root broadcast to every child; multiply the factors."""
        factor = 1.0
        pruned = 0
        remaining = 0
        for site in self.sites:
            self._lan(MessageKind.FEEDBACK, to_site=site)
            reply = site.probe_and_prune(t)
            self._lan(MessageKind.PROBE_REPLY, from_site=site)
            factor *= reply.factor
            pruned += reply.pruned
            remaining += reply.queue_remaining
        self.local_stats.record_round(tuples_in_round=len(self.sites))
        self._feedback.append(t)
        pruned += self._prune_regional_queue(t)
        return ProbeReply(factor=factor, pruned=pruned, queue_remaining=remaining)

    def queue_size(self) -> int:
        total = len(self._heap)
        for site in self.sites:
            self._lan(MessageKind.CONTROL, to_site=site)
            total += site.queue_size()
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _site_by_id(self, site_id: int) -> SiteEndpoint:
        for site in self.sites:
            if site.site_id == site_id:
                return site
        raise KeyError(f"region {self.site_id} has no site {site_id}")

    def _pull_from(self, site: SiteEndpoint) -> None:
        """Fetch a site's next head into the regional heap (LAN traffic)."""
        if site.site_id in self._exhausted:
            return
        quaternion = site.pop_representative()
        self._lan(MessageKind.REPRESENTATIVE, from_site=site)
        if quaternion is None:
            self._exhausted.add(site.site_id)
            return
        # Feedback that arrived while this candidate sat in its site's
        # queue has already pruned there; feedback received since must
        # be applied to the regional bound as well.
        bound = feedback_pruning_bound(
            quaternion.local_probability,
            (f for f in self._feedback if dominates(f, quaternion.tuple)),
        )
        if bound < (self.threshold or 0.0):
            self._pull_from(site)
            return
        heapq.heappush(
            self._heap,
            (
                -quaternion.local_probability,
                next(self._counter),
                quaternion,
                False,
                site.site_id,
            ),
        )

    def _resolve_regional(self, quaternion: Quaternion) -> float:
        """P_sky(t, D_region): multiply in the sibling sites' factors."""
        regional = quaternion.local_probability
        probed = 0
        for site in self.sites:
            if site.site_id == quaternion.site:
                continue
            self._lan(MessageKind.FEEDBACK, to_site=site)
            reply = site.probe_and_prune(quaternion.tuple)
            self._lan(MessageKind.PROBE_REPLY, from_site=site)
            regional *= reply.factor
            probed += 1
        self.local_stats.record_round(tuples_in_round=probed)
        return regional

    def _prune_regional_queue(self, feedback: UncertainTuple) -> int:
        """Apply a root feedback tuple to candidates already in the heap."""
        survivors = []
        pruned = 0
        for neg_prob, tick, quaternion, resolved, origin in self._heap:
            bound = -neg_prob
            if dominates(feedback, quaternion.tuple):
                bound = feedback_pruning_bound(bound, [feedback])
                if bound < (self.threshold or 0.0):
                    pruned += 1
                    # Its origin site deserves a fresh slot.
                    if origin not in self._exhausted:
                        self._pull_later.append(origin)
                    continue
            survivors.append((-bound, tick, quaternion, resolved, origin))
        heapq.heapify(survivors)
        self._heap = survivors
        pending, self._pull_later = self._pull_later, []
        for origin in pending:
            self._pull_from(self._site_by_id(origin))
        return pruned

    def _lan(
        self,
        kind: MessageKind,
        to_site: Optional[SiteEndpoint] = None,
        from_site: Optional[SiteEndpoint] = None,
    ) -> None:
        if to_site is not None:
            self.local_stats.record(
                Message.bearing(kind, f"region-{self.site_id}",
                                f"site-{to_site.site_id}", None)
            )
        else:
            self.local_stats.record(
                Message.bearing(kind, f"site-{from_site.site_id}",
                                f"region-{self.site_id}", None)
            )


def build_regions(
    partitions: Sequence[Sequence[UncertainTuple]],
    region_size: int,
    preference: Optional[Preference] = None,
    site_config: Optional["SiteConfig"] = None,
) -> List[RegionCoordinator]:
    """Group flat partitions into regions of ``region_size`` sites each."""
    from .query import build_sites

    if region_size < 1:
        raise ValueError("region_size must be positive")
    sites = build_sites(partitions, preference=preference, site_config=site_config)
    regions = []
    for start in range(0, len(sites), region_size):
        group = sites[start : start + region_size]
        regions.append(RegionCoordinator(region_id=1000 + len(regions), sites=group))
    return regions

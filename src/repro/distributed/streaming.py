"""Continuous probabilistic skylines over distributed sliding windows.

The paper's related work (§2.2, Zhang et al.) studies probabilistic
skylines over a *sliding window* of an uncertain stream, but leaves the
distributed case open; its own §5.4 maintenance machinery is exactly
the missing piece.  This module composes the two: every site observes
an uncertain stream and keeps only its ``window`` most recent tuples,
and the coordinator continuously maintains the global threshold
skyline over the union of all windows.

Each arrival is one insert plus (once the window is full) one expiry,
both handled by the replica-based
:class:`~repro.distributed.updates.IncrementalMaintainer` — so the
standing answer is always *exactly* the probabilistic skyline of the
currently live tuples (a tested invariant), most arrivals cost zero
wide-area tuples, and the bandwidth books stay exact.

Windows are count-based per site, the natural distributed reading of
"the last W readings of each sensor".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline
from ..core.tuples import UncertainTuple
from ..net.stats import LatencyModel
from .query import build_sites
from .site import SiteConfig
from .updates import IncrementalMaintainer

__all__ = ["StreamEvent", "DistributedStreamSkyline"]


@dataclass
class StreamEvent:
    """What one arrival did to the standing answer."""

    site_id: int
    arrived: int
    expired: Optional[int]
    added: List[int] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)
    tuples_transmitted: int = 0

    @property
    def changed_answer(self) -> bool:
        return bool(self.added or self.removed)


class DistributedStreamSkyline:
    """A standing threshold-skyline query over per-site sliding windows."""

    def __init__(
        self,
        sites: int,
        window: int,
        threshold: float,
        preference: Optional[Preference] = None,
        site_config: Optional[SiteConfig] = None,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        if sites < 1:
            raise ValueError("need at least one site")
        if window < 1:
            raise ValueError("window must hold at least one tuple")
        self.window = window
        self.threshold = threshold
        self.preference = preference
        self._windows: List[Deque[UncertainTuple]] = [deque() for _ in range(sites)]
        self._maintainer = IncrementalMaintainer(
            build_sites([[] for _ in range(sites)], preference=preference,
                        site_config=site_config),
            threshold,
            preference,
            latency_model,
        )
        self._seen_keys: set = set()
        self.events: List[StreamEvent] = []

    # ------------------------------------------------------------------

    @property
    def sites(self) -> int:
        return len(self._windows)

    @property
    def stats(self) -> NetworkStats:
        """Maintenance-traffic accounting (tuple-exact, like the paper's)."""
        return self._maintainer.stats

    def live_tuples(self, site_id: Optional[int] = None) -> List[UncertainTuple]:
        """The currently windowed tuples (of one site, or all)."""
        if site_id is not None:
            return list(self._windows[site_id])
        return [t for w in self._windows for t in w]

    def skyline(self) -> ProbabilisticSkyline:
        """The standing answer — always equal to a fresh recompute."""
        return self._maintainer.skyline()

    # ------------------------------------------------------------------

    def arrive(self, site_id: int, t: UncertainTuple) -> StreamEvent:
        """Feed one stream tuple to a site; returns the resulting event.

        If the site's window is full its oldest tuple expires first
        (delete), then the arrival is inserted — both through the
        incremental §5.4 protocol.
        """
        if not 0 <= site_id < self.sites:
            raise IndexError(f"no site {site_id} (have {self.sites})")
        if t.key in self._seen_keys:
            raise ValueError(
                f"stream key {t.key} already live or previously seen; "
                f"stream keys must be unique"
            )
        before = self._maintainer.stats.tuples_transmitted
        window = self._windows[site_id]
        expired_key: Optional[int] = None
        added: List[int] = []
        removed: List[int] = []

        if len(window) >= self.window:
            oldest = window.popleft()
            expired_key = oldest.key
            report = self._maintainer.delete(site_id, oldest.key)
            added.extend(report.added)
            removed.extend(report.removed)

        window.append(t)
        self._seen_keys.add(t.key)
        report = self._maintainer.insert(site_id, t)
        added.extend(report.added)
        removed.extend(report.removed)

        # An expiry can momentarily promote a tuple the insert then
        # disqualifies (or vice versa); collapse such churn so the
        # event describes the net effect of the arrival.
        net_added = [k for k in added if k not in removed]
        net_removed = [k for k in removed if k not in added]

        event = StreamEvent(
            site_id=site_id,
            arrived=t.key,
            expired=expired_key,
            added=net_added,
            removed=net_removed,
            tuples_transmitted=self._maintainer.stats.tuples_transmitted - before,
        )
        self.events.append(event)
        return event

    def drain(
        self, site_id: int, stream: Sequence[UncertainTuple]
    ) -> List[StreamEvent]:
        """Feed a whole sequence to one site; returns the events."""
        return [self.arrive(site_id, t) for t in stream]

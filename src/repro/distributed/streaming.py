"""Continuous probabilistic skylines over distributed sliding windows.

The paper's related work (§2.2, Zhang et al.) studies probabilistic
skylines over a *sliding window* of an uncertain stream, but leaves the
distributed case open.  This module keeps that original per-arrival API
— one :class:`StreamEvent` per arrival, a standing answer always exact
over the live windows — but is now a thin adapter over the
:mod:`repro.stream` continuous-query subsystem: each site is a
:class:`~repro.stream.site.StreamSite` with a count window, the answer
lives in a :class:`~repro.stream.coordinator.ContinuousCoordinator`
holding one registered :class:`~repro.stream.deltas.StandingQuery`, and
every arrival closes one epoch whose ENTER/EXIT deltas become the
event's ``added``/``removed``.

The edge pre-filter makes most arrivals free: a tuple whose local
skyline probability cannot reach the threshold never touches the wire,
and expiries of never-shipped tuples travel as nothing at all.  The
bandwidth books stay tuple-exact, billed under the stream protocol's
SUBSCRIBE/DELTA/NOTIFY/EXPIRE kinds.

Windows are count-based per site, the natural distributed reading of
"the last W readings of each sensor"; register standing queries on a
:class:`~repro.stream.coordinator.ContinuousCoordinator` directly for
time-based windows, multiple queries, or batched epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline
from ..core.tuples import UncertainTuple
from ..net.stats import LatencyModel, NetworkStats
from ..stream.coordinator import ContinuousCoordinator
from ..stream.deltas import DeltaKind, StandingQuery
from ..stream.site import StreamSite
from ..stream.windows import CountWindow
from .site import SiteConfig

__all__ = ["StreamEvent", "DistributedStreamSkyline"]


@dataclass
class StreamEvent:
    """What one arrival did to the standing answer."""

    site_id: int
    arrived: int
    expired: Optional[int]
    added: List[int] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)
    tuples_transmitted: int = 0

    @property
    def changed_answer(self) -> bool:
        return bool(self.added or self.removed)


class DistributedStreamSkyline:
    """A standing threshold-skyline query over per-site sliding windows."""

    def __init__(
        self,
        sites: int,
        window: int,
        threshold: float,
        preference: Optional[Preference] = None,
        site_config: Optional[SiteConfig] = None,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        if sites < 1:
            raise ValueError("need at least one site")
        if window < 1:
            raise ValueError("window must hold at least one tuple")
        self.window = window
        self.threshold = threshold
        self.preference = preference
        self._coordinator = ContinuousCoordinator(
            [
                StreamSite(i, CountWindow(window), site_config=site_config)
                for i in range(sites)
            ],
            latency_model=latency_model,
        )
        self._query_id = self._coordinator.register(
            StandingQuery(threshold=threshold, preference=preference)
        )
        self.events: List[StreamEvent] = []

    # ------------------------------------------------------------------

    @property
    def sites(self) -> int:
        return len(self._coordinator.sites)

    @property
    def stats(self) -> NetworkStats:
        """Maintenance-traffic accounting (tuple-exact, like the paper's)."""
        return self._coordinator.stats

    def live_tuples(self, site_id: Optional[int] = None) -> List[UncertainTuple]:
        """The currently windowed tuples (of one site, or all)."""
        if site_id is not None:
            return self._coordinator.sites[site_id].live_tuples()
        return [t for site in self._coordinator.sites for t in site.live_tuples()]

    def skyline(self) -> ProbabilisticSkyline:
        """The standing answer — always equal to a fresh recompute."""
        return self._coordinator.result(self._query_id)

    # ------------------------------------------------------------------

    def arrive(self, site_id: int, t: UncertainTuple) -> StreamEvent:
        """Feed one stream tuple to a site; returns the resulting event.

        If the site's window is full its oldest tuple expires first,
        then the arrival is inserted; the epoch closes immediately, so
        the standing answer is exact after every arrival.
        """
        if not 0 <= site_id < self.sites:
            raise IndexError(f"no site {site_id} (have {self.sites})")
        site = self._coordinator.sites[site_id]
        expired_key: Optional[int] = None
        if len(site.window) >= self.window:
            expired_key = site.live_tuples()[0].key
        before = self.stats.tuples_transmitted
        self._coordinator.ingest(site_id, t)
        deltas = self._coordinator.close_epoch()
        event = StreamEvent(
            site_id=site_id,
            arrived=t.key,
            expired=expired_key,
            added=[d.key for d in deltas if d.kind is DeltaKind.ENTER],
            removed=[d.key for d in deltas if d.kind is DeltaKind.EXIT],
            tuples_transmitted=self.stats.tuples_transmitted - before,
        )
        self.events.append(event)
        return event

    def drain(
        self, site_id: int, stream: Sequence[UncertainTuple]
    ) -> List[StreamEvent]:
        """Feed a whole sequence to one site; returns the events."""
        return [self.arrive(site_id, t) for t in stream]

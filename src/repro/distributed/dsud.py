"""The DSUD algorithm (§5.1).

The coordinator maintains the priority queue ``L`` of one
representative quaternion per site, ordered by descending *local*
skyline probability.  Each iteration pops the head, broadcasts it to
the other sites — simultaneously resolving its exact global skyline
probability (Lemma 1) and letting every site prune dominated
candidates (Local-Pruning phase) — reports it if qualified, and refills
``L`` from the head's origin site.

Corollary 1 justifies the order and the halt: the global probability of
anything still unfetched is bounded by the head's local probability, so
once every site is exhausted (each site's queue holds only candidates
above ``q``; anything below never leaves the site) no qualified tuple
can have been missed.

``limit=k`` turns the query into a *top-k probabilistic skyline*: the
same iteration stops as soon as the ``k`` globally most probable
qualified tuples are provably resolved — the head of ``L`` caps the
exact probability of everything unresolved, so emission order stays
correct while the tail of the queue is never transmitted.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Generator, List, Optional, Sequence

from ..core.dominance import Preference
from ..fault.liveness import LivenessBook
from ..fault.retry import RetryPolicy
from ..net.stats import LatencyModel
from ..net.transport import SiteEndpoint
from .coordinator import Coordinator, _Request

if TYPE_CHECKING:
    from ..replica.manager import ReplicaManager

__all__ = ["DSUD"]


class DSUD(Coordinator):
    """Distributed Skyline over Uncertain Data — the paper's base algorithm."""

    algorithm = "DSUD"

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        limit: Optional[int] = None,
        parallel_broadcast: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: int = 1,
        replica_manager: Optional["ReplicaManager"] = None,
        liveness_book: Optional[LivenessBook] = None,
    ) -> None:
        super().__init__(
            sites, threshold, preference, latency_model,
            parallel_broadcast=parallel_broadcast,
            retry_policy=retry_policy,
            batch_size=batch_size,
            limit=limit,
            replica_manager=replica_manager,
            liveness_book=liveness_book,
        )

    def _steps(self) -> Generator[Optional[_Request], Any, None]:
        yield from self._prepare_sites_script()
        counter = itertools.count()
        heap: List = []
        for quaternion in (yield from self._initial_fill_script()):
            heapq.heappush(
                heap, (-quaternion.local_probability, next(counter), quaternion)
            )
        exhausted = set()
        site_by_id = {site.site_id: site for site in self.sites}

        def reintegrate() -> Generator[Optional[_Request], Any, None]:
            # Reintegrate any crashed site that has come back: its
            # missed factors were already re-probed inside
            # poll_recoveries; here we resume draining its queue.
            for site in (yield from self._poll_recoveries_script()):
                exhausted.discard(site.site_id)
                refill = yield from self._fetch_representative_script(site)
                if refill is None:
                    exhausted.add(site.site_id)
                else:
                    heapq.heappush(
                        heap, (-refill.local_probability, next(counter), refill)
                    )
                    self.stats.record_round(tuples_in_round=1)

        while True:
            yield from reintegrate()
            if not heap:
                # L drained while a site was unreachable — one final
                # poll above was its last chance; terminate degraded.
                break
            # Collect up to batch_size heads by *peeking* before each
            # pop: a head below q must stay unbatched (Corollary 1 says
            # nothing below it can qualify), but heads already popped
            # into the batch remain sound — their origins hold only
            # smaller candidates.  With batch_size=1 this is exactly
            # the per-candidate loop: same pops, same iteration count.
            batch: List = []
            while heap and len(batch) < self.batch_size:
                if heap[0][2].local_probability < self.threshold:
                    break
                self.iterations += 1
                _, _, head = heapq.heappop(heap)
                batch.append(head)
            if not batch:
                # Corollary 1: nothing in L (or unfetched) can qualify.
                self.iterations += 1
                heapq.heappop(heap)
                break
            global_probabilities = yield from self._broadcast_batch_script(batch)
            for head, global_probability in zip(batch, global_probabilities):
                # The coverage-aware funnel: reports directly without a
                # limit, otherwise buffers with the live TupleCoverage.
                self.emit(head.tuple, global_probability)
            for head in batch:
                if head.site not in exhausted:
                    refill = yield from self._fetch_representative_script(
                        site_by_id[head.site]
                    )
                    if refill is None:
                        exhausted.add(head.site)
                    else:
                        heapq.heappush(
                            heap, (-refill.local_probability, next(counter), refill)
                        )
                        self.stats.record_round(tuples_in_round=1)
            if self.limit is not None:
                remaining_cap = -heap[0][0] if heap else 0.0
                if self.drain_topk(remaining_cap):
                    return
            # One iteration done — a scheduling point for the serving
            # layer to interleave other sessions.
            yield
        self.finish_topk()

"""Distributed query processing: sites, coordinator, DSUD, e-DSUD,
the comparison baselines, and §5.4 update maintenance."""

from .advisor import CostEstimates, estimate_costs, recommend_algorithm
from .baseline import ShipAllBaseline
from .coordinator import Coordinator
from .dsud import DSUD
from .edsud import EDSUD, EDSUDConfig
from .hierarchy import RegionCoordinator, build_regions
from .naive import NaiveLocalSkylines
from .query import (
    ALGORITHMS,
    adistributed_skyline,
    build_coordinator,
    build_sites,
    distributed_skyline,
)
from .runner import RunResult
from .site import LocalSite, ProbeReply, SiteConfig
from .streaming import DistributedStreamSkyline, StreamEvent
from .synopsis import GridSynopsis, SynopsisEDSUD, build_site_synopsis
from .updates import IncrementalMaintainer, MaintenanceReport, NaiveMaintainer
from .workers import TableWorkerPool
from .vertical import (
    VerticalRunStats,
    VerticalSite,
    VerticalSkylineCoordinator,
    vertical_partition,
    vertical_skyline,
)

__all__ = [
    "CostEstimates",
    "estimate_costs",
    "recommend_algorithm",
    "RegionCoordinator",
    "build_regions",
    "GridSynopsis",
    "SynopsisEDSUD",
    "build_site_synopsis",
    "DistributedStreamSkyline",
    "StreamEvent",
    "VerticalSite",
    "VerticalSkylineCoordinator",
    "VerticalRunStats",
    "vertical_partition",
    "vertical_skyline",
    "LocalSite",
    "SiteConfig",
    "ProbeReply",
    "Coordinator",
    "ShipAllBaseline",
    "NaiveLocalSkylines",
    "DSUD",
    "EDSUD",
    "EDSUDConfig",
    "RunResult",
    "ALGORITHMS",
    "build_sites",
    "build_coordinator",
    "distributed_skyline",
    "adistributed_skyline",
    "IncrementalMaintainer",
    "NaiveMaintainer",
    "MaintenanceReport",
    "TableWorkerPool",
]

"""The §3.2 baseline: ship every local database to the server.

Each site transmits its entire partition; the coordinator unions the
``m`` partitions and runs a centralized probabilistic skyline.  Total
bandwidth is ``|D| = Σ |D_i|`` tuples — the yardstick everything else
is measured against — and progressiveness is the worst possible: not a
single result can be reported before all data has arrived and the full
centralized computation has finished.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..core.prob_skyline import prob_skyline_sfs
from ..core.tuples import UncertainTuple
from ..net.message import Message, MessageKind
from .coordinator import Coordinator, _Request, _Rpc

__all__ = ["ShipAllBaseline"]


class ShipAllBaseline(Coordinator):
    """Transmit everything, compute centrally."""

    algorithm = "ship-all"

    def _steps(self) -> Generator[Optional[_Request], Any, None]:
        union: List[UncertainTuple] = []
        for site in self.sites:
            # The RPC funnel keeps even the strawman fault-tolerant: an
            # unreachable partition is simply absent from the union, and
            # the answer degrades to the reachable sites' data.
            ok, shipped = yield _Rpc(site, "ship_all")
            if not ok:
                continue
            for _ in shipped:
                self.stats.record(
                    Message.bearing(
                        MessageKind.DATA, self._name(site), "server", payload=None
                    )
                )
            self.stats.record_round(tuples_in_round=len(shipped))
            union.extend(shipped)
        self.iterations = 1
        answer = prob_skyline_sfs(union, self.threshold, self.preference)
        for member in answer:
            self.emit(member.tuple, member.probability)

"""The central server H: shared machinery of the §4 framework.

:class:`Coordinator` implements everything the four algorithms have in
common — preparing sites, fetching representatives (To-Server phase),
broadcasting feedback and combining the returned factors into exact
global probabilities (Server-Delivery phase, Lemma 1), reporting
qualified tuples progressively, and accounting every protocol message
against the paper's bandwidth metric.  The concrete algorithms
(:mod:`~repro.distributed.baseline`, :mod:`~repro.distributed.naive`,
:mod:`~repro.distributed.dsud`, :mod:`~repro.distributed.edsud`)
subclass it and supply only their iteration policy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from ..core.tuples import UncertainTuple
from ..net.message import Message, MessageKind, Quaternion
from ..net.stats import LatencyModel, NetworkStats, ProgressLog
from ..net.transport import SiteEndpoint
from .runner import RunResult

__all__ = ["Coordinator", "TopKBuffer"]

_SERVER = "server"


class TopKBuffer:
    """Order-correct top-k emission for progressive coordinators.

    The iteration policies resolve candidates in *bound* order, not in
    exact-probability order, so under a result limit a resolved tuple
    may only be emitted once nothing still unresolved could beat it.
    The buffer holds resolved qualified tuples and releases them while
    the best buffered exact probability is at least the caller-supplied
    cap on everything unresolved; k emitted results end the query —
    that early stop is the whole bandwidth win of ``limit=``.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit!r}")
        self.limit = limit
        self.emitted = 0
        self._heap: List = []

    def offer(self, t: UncertainTuple, probability: float) -> None:
        import heapq

        heapq.heappush(self._heap, (-probability, t.key, t))

    def drain(self, remaining_cap: float, report) -> bool:
        """Emit everything provably next-best; True once the limit is hit."""
        import heapq

        while self._heap and self.emitted < self.limit:
            probability = -self._heap[0][0]
            if probability < remaining_cap:
                break
            _, _, t = heapq.heappop(self._heap)
            report(t, probability)
            self.emitted += 1
        return self.emitted >= self.limit

    def flush(self, report) -> None:
        """Natural termination: nothing unresolved remains."""
        self.drain(remaining_cap=0.0, report=report)


class Coordinator:
    """Base class for the central server of a distributed skyline query."""

    algorithm = "abstract"

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        parallel_broadcast: bool = False,
    ) -> None:
        if not sites:
            raise ValueError("a distributed query needs at least one site")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
        self.sites = list(sites)
        self.threshold = threshold
        self.preference = preference
        self.stats = NetworkStats(latency_model=latency_model or LatencyModel())
        self.progress = ProgressLog()
        self.results: List[SkylineMember] = []
        self.iterations = 0
        #: Issue the per-broadcast probes concurrently (one thread per
        #: target site).  Pays off over real sockets, where each probe
        #: is a network round-trip; in-process sites gain nothing.
        #: Accounting is unaffected either way — the simulated clock
        #: already treats a broadcast as one parallel round.
        self.parallel_broadcast = parallel_broadcast

    # ------------------------------------------------------------------
    # protocol building blocks
    # ------------------------------------------------------------------

    def prepare_sites(self) -> List[int]:
        """Local computing phase on every site; returns |SKY(D_i)| sizes."""
        sizes = []
        for site in self.sites:
            self._account(MessageKind.PREPARE, _SERVER, self._name(site))
            sizes.append(site.prepare(self.threshold))
            self._account(MessageKind.PREPARE_REPLY, self._name(site), _SERVER)
        self.stats.record_round()
        return sizes

    def fetch_representative(
        self, site: SiteEndpoint, request: bool = True
    ) -> Optional[Quaternion]:
        """To-Server phase against one site.

        ``request=False`` models the initial fill, where every site
        pushes its head spontaneously and no NEXT_REQUEST is paid.
        """
        if request:
            self._account(MessageKind.NEXT_REQUEST, _SERVER, self._name(site))
        quaternion = site.pop_representative()
        if quaternion is None:
            self._account(MessageKind.EXHAUSTED, self._name(site), _SERVER)
            return None
        self._account(MessageKind.REPRESENTATIVE, self._name(site), _SERVER)
        return quaternion

    def initial_fill(self) -> List[Quaternion]:
        """First To-Server round: every site's head, in parallel."""
        out = []
        for site in self.sites:
            quaternion = self.fetch_representative(site, request=False)
            if quaternion is not None:
                out.append(quaternion)
        self.stats.record_round(tuples_in_round=len(out))
        return out

    def broadcast(self, quaternion: Quaternion) -> float:
        """Server-Delivery + Local-Pruning round for one candidate.

        Sends the tuple to every site except its origin, folds the
        returned Eq.-9 factors into the exact global probability via
        Lemma 1, and advances the simulated clock by one parallel
        round.
        """
        global_probability = quaternion.local_probability
        for _site_id, reply in self.broadcast_probes(quaternion):
            global_probability *= reply.factor
        return global_probability

    def broadcast_probes(self, quaternion: Quaternion):
        """Deliver one feedback tuple to every other site; yield replies.

        Returns ``(site_id, ProbeReply)`` pairs and does all the
        accounting; :meth:`broadcast` and e-DSUD's factor-tracking
        variant both build on it.  With ``parallel_broadcast`` the
        probes run concurrently — safe because each target site only
        ever receives its own call.
        """
        t = quaternion.tuple
        targets = [s for s in self.sites if s.site_id != quaternion.site]
        for site in targets:
            self._account(MessageKind.FEEDBACK, _SERVER, self._name(site))
        if self.parallel_broadcast and len(targets) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(targets)) as pool:
                replies = list(pool.map(lambda s: s.probe_and_prune(t), targets))
        else:
            replies = [site.probe_and_prune(t) for site in targets]
        for site in targets:
            self._account(MessageKind.PROBE_REPLY, self._name(site), _SERVER)
        self.stats.record_round(tuples_in_round=len(targets))
        return [(site.site_id, reply) for site, reply in zip(targets, replies)]

    def report(self, t: UncertainTuple, global_probability: float) -> bool:
        """Progressively emit a resolved candidate; True if it qualified."""
        if global_probability < self.threshold:
            return False
        self.results.append(SkylineMember(t, global_probability))
        self.progress.report(t.key, global_probability, self.stats)
        self._account(MessageKind.RESULT, _SERVER, "client")
        return True

    # ------------------------------------------------------------------
    # the run loop contract
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the query; subclasses implement :meth:`_execute`."""
        self.progress.restart_clock()
        self._execute()
        extra = self._extra()
        pruned = [
            getattr(site, "pruned_total", None) for site in self.sites
        ]
        if all(p is not None for p in pruned):
            # Local-pruning effectiveness; available for in-process
            # sites (TCP proxies do not expose internals).
            extra["site_pruned_total"] = float(sum(pruned))
        return RunResult(
            algorithm=self.algorithm,
            answer=ProbabilisticSkyline(self.threshold, list(self.results)),
            stats=self.stats,
            progress=self.progress,
            iterations=self.iterations,
            extra=extra,
        )

    def _execute(self) -> None:
        raise NotImplementedError

    def _extra(self) -> dict:
        return {}

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def _account(self, kind: MessageKind, sender: str, receiver: str) -> None:
        self.stats.record(Message.bearing(kind, sender, receiver, payload=None))

    @staticmethod
    def _name(site: SiteEndpoint) -> str:
        return f"site-{site.site_id}"

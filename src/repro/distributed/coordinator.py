"""The central server H: shared machinery of the §4 framework.

:class:`Coordinator` implements everything the four algorithms have in
common — preparing sites, fetching representatives (To-Server phase),
broadcasting feedback and combining the returned factors into exact
global probabilities (Server-Delivery phase, Lemma 1), reporting
qualified tuples progressively, and accounting every protocol message
against the paper's bandwidth metric.  The concrete algorithms
(:mod:`~repro.distributed.baseline`, :mod:`~repro.distributed.naive`,
:mod:`~repro.distributed.dsud`, :mod:`~repro.distributed.edsud`)
subclass it and supply only their iteration policy.

Fault tolerance
---------------
Every coordinator→site RPC goes through :meth:`_rpc`, which retries
transport faults under an optional :class:`~repro.fault.retry.RetryPolicy`
and, when retries are exhausted, escalates to the per-site lifecycle
FSM (:class:`~repro.fault.fsm.ClusterHealth`) instead of raising.  A
DOWN site is excluded from subsequent rounds; the factors it can no
longer contribute are tracked by a
:class:`~repro.fault.coverage.CoverageTracker`, so every affected
result carries its Corollary-1 upper bound and the set of sites that
did contribute.  Run loops call :meth:`poll_recoveries` once per
iteration: a DOWN site that answers a liveness probe is re-probed for
every factor it owes (tightening — possibly retracting — degraded
results) and handed back to the iteration policy via the sites list
the poll returns.  On a healthy run none of this machinery sends a
single extra message, so accounting stays bit-identical to the
fault-oblivious protocol.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from ..core.tuples import UncertainTuple
from ..fault.coverage import CoverageTracker
from ..fault.errors import RETRYABLE_FAULTS
from ..fault.fsm import ClusterHealth
from ..fault.retry import RetryPolicy, call_with_retry
from ..net.message import Message, MessageKind, Quaternion
from ..net.stats import LatencyModel, NetworkStats, ProgressLog
from ..net.transport import SiteEndpoint
from .runner import RunResult

__all__ = ["Coordinator", "TopKBuffer"]

_SERVER = "server"


class TopKBuffer:
    """Order-correct top-k emission for progressive coordinators.

    The iteration policies resolve candidates in *bound* order, not in
    exact-probability order, so under a result limit a resolved tuple
    may only be emitted once nothing still unresolved could beat it.
    The buffer holds resolved qualified tuples and releases them while
    the best buffered exact probability is at least the caller-supplied
    cap on everything unresolved; k emitted results end the query —
    that early stop is the whole bandwidth win of ``limit=``.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit!r}")
        self.limit = limit
        self.emitted = 0
        self._heap: List = []

    def offer(self, t: UncertainTuple, probability: float) -> None:
        heapq.heappush(self._heap, (-probability, t.key, t))

    def drain(self, remaining_cap: float, report) -> bool:
        """Emit everything provably next-best; True once the limit is hit."""
        while self._heap and self.emitted < self.limit:
            probability = -self._heap[0][0]
            if probability < remaining_cap:
                break
            _, _, t = heapq.heappop(self._heap)
            report(t, probability)
            self.emitted += 1
        return self.emitted >= self.limit

    def flush(self, report) -> None:
        """Natural termination: nothing unresolved remains."""
        self.drain(remaining_cap=0.0, report=report)


class Coordinator:
    """Base class for the central server of a distributed skyline query."""

    algorithm = "abstract"

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        parallel_broadcast: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if not sites:
            raise ValueError("a distributed query needs at least one site")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
        self.sites = list(sites)
        self.threshold = threshold
        self.preference = preference
        self.stats = NetworkStats(latency_model=latency_model or LatencyModel())
        self.progress = ProgressLog()
        self.results: List[SkylineMember] = []
        self.iterations = 0
        #: Issue the per-broadcast probes concurrently (one thread per
        #: target site).  Pays off over real sockets, where each probe
        #: is a network round-trip; in-process sites gain nothing.
        #: Accounting is unaffected either way — the simulated clock
        #: already treats a broadcast as one parallel round.
        self.parallel_broadcast = parallel_broadcast
        #: ``None`` keeps single-attempt semantics: the first transport
        #: fault marks the site DOWN.  A policy inserts retries (with
        #: backoff) between the fault and that escalation.
        self.retry_policy = retry_policy
        self.health = ClusterHealth(s.site_id for s in self.sites)
        self.coverage = CoverageTracker(s.site_id for s in self.sites)
        self._site_by_id = {s.site_id: s for s in self.sites}
        self._prepared: set = set()

    # ------------------------------------------------------------------
    # the fault-tolerant RPC funnel
    # ------------------------------------------------------------------

    def _rpc(
        self, site: SiteEndpoint, label: str, call: Callable[[], object]
    ) -> Tuple[bool, object]:
        """Invoke one site RPC; never raises transport faults.

        Returns ``(True, value)`` on success.  On a terminal transport
        fault the site is marked DOWN and ``(False, None)`` is returned
        — the caller degrades instead of unwinding.
        """
        site_id = site.site_id
        lifecycle = self.health.lifecycle(site_id)

        def on_retry(attempt: int, delay: float, exc: Exception) -> None:
            self.stats.record_retry(delay)
            lifecycle.record_failure()

        start = time.perf_counter()
        if self.retry_policy is None:
            try:
                value, error = call(), None
            except RETRYABLE_FAULTS as exc:
                value, error = None, exc
        else:
            value, error = call_with_retry(
                call, self.retry_policy, site_id=site_id, on_retry=on_retry
            )
        self.stats.record_rpc_time(time.perf_counter() - start)
        if error is not None:
            self.stats.record_failure()
            if not lifecycle.is_down:
                lifecycle.record_failure()
                self.health.mark_down(site_id, reason=f"{label}: {error!r}")
                self.stats.sites_lost += 1
            return False, None
        if not lifecycle.is_up:
            # A retry succeeded while SUSPECT, or a reintegration call
            # succeeded while RECOVERING: either way the site is back.
            self.health.mark_up(site_id, reason=f"{label} succeeded")
        return True, value

    # ------------------------------------------------------------------
    # protocol building blocks
    # ------------------------------------------------------------------

    def prepare_sites(self) -> List[int]:
        """Local computing phase on every site; returns |SKY(D_i)| sizes.

        A site that fails its PREPARE (after retries) is marked DOWN
        and simply contributes no size — the query proceeds over the
        reachable partitions.
        """
        sizes = []
        for site in self.sites:
            self._account(MessageKind.PREPARE, _SERVER, self._name(site))
            ok, size = self._rpc(
                site, "prepare", lambda site=site: site.prepare(self.threshold)
            )
            if not ok:
                continue
            self._prepared.add(site.site_id)
            sizes.append(size)
            self._account(MessageKind.PREPARE_REPLY, self._name(site), _SERVER)
        self.stats.record_round()
        return sizes

    def fetch_representative(
        self, site: SiteEndpoint, request: bool = True
    ) -> Optional[Quaternion]:
        """To-Server phase against one site.

        ``request=False`` models the initial fill, where every site
        pushes its head spontaneously and no NEXT_REQUEST is paid.
        Returns ``None`` both for a genuinely exhausted site and for an
        unreachable one — in the latter case the FSM records the loss
        and :meth:`poll_recoveries` can undo it later.
        """
        if self.health.is_down(site.site_id):
            return None
        if request:
            self._account(MessageKind.NEXT_REQUEST, _SERVER, self._name(site))
        ok, quaternion = self._rpc(
            site, "pop_representative", site.pop_representative
        )
        if not ok:
            return None
        if quaternion is None:
            self._account(MessageKind.EXHAUSTED, self._name(site), _SERVER)
            return None
        self._account(MessageKind.REPRESENTATIVE, self._name(site), _SERVER)
        return quaternion

    def initial_fill(self) -> List[Quaternion]:
        """First To-Server round: every site's head, in parallel."""
        out = []
        for site in self.sites:
            quaternion = self.fetch_representative(site, request=False)
            if quaternion is not None:
                out.append(quaternion)
        self.stats.record_round(tuples_in_round=len(out))
        return out

    def broadcast(self, quaternion: Quaternion) -> float:
        """Server-Delivery + Local-Pruning round for one candidate.

        Sends the tuple to every reachable site except its origin,
        folds the returned Eq.-9 factors into the global probability
        via Lemma 1, and advances the simulated clock by one parallel
        round.  With full coverage the product is exact; with sites
        down it is the Corollary-1 upper bound (each missing factor
        ≤ 1), and the coverage tracker knows which.
        """
        global_probability = quaternion.local_probability
        for _site_id, reply in self.broadcast_probes(quaternion):
            global_probability *= reply.factor
        return global_probability

    def broadcast_probes(self, quaternion: Quaternion):
        """Deliver one feedback tuple to every other live site; yield replies.

        Returns ``(site_id, ProbeReply)`` pairs and does all the
        accounting; :meth:`broadcast` and e-DSUD's factor-tracking
        variant both build on it.  With ``parallel_broadcast`` the
        probes run concurrently — safe because each target site only
        ever receives its own call.

        Accounting is per-reply: FEEDBACK is billed when the probe is
        *sent* (DOWN sites are never sent to, so never billed), but
        PROBE_REPLY only when the site actually answers — a site that
        dies mid-broadcast costs the attempt, not the reply.
        """
        t = quaternion.tuple
        targets = [
            s
            for s in self.sites
            if s.site_id != quaternion.site and not self.health.is_down(s.site_id)
        ]
        self.coverage.open(
            t.key, quaternion.site, t, quaternion.local_probability
        )
        for site in targets:
            self._account(MessageKind.FEEDBACK, _SERVER, self._name(site))
        probe = lambda s: self._rpc(  # noqa: E731 — bound per target below
            s, "probe_and_prune", lambda: s.probe_and_prune(t)
        )
        if self.parallel_broadcast and len(targets) > 1:
            with ThreadPoolExecutor(max_workers=len(targets)) as pool:
                attempts = list(pool.map(probe, targets))
        else:
            attempts = [probe(site) for site in targets]
        out = []
        for site, (ok, reply) in zip(targets, attempts):
            if not ok:
                continue  # factor stays missing in the coverage books
            self._account(MessageKind.PROBE_REPLY, self._name(site), _SERVER)
            self.coverage.contribute(t.key, site.site_id, reply.factor)
            out.append((site.site_id, reply))
        self.stats.record_round(tuples_in_round=len(targets))
        return out

    def report(self, t: UncertainTuple, global_probability: float) -> bool:
        """Progressively emit a resolved candidate; True if it qualified."""
        if global_probability < self.threshold:
            return False
        self.results.append(SkylineMember(t, global_probability))
        self.progress.report(t.key, global_probability, self.stats)
        self._account(MessageKind.RESULT, _SERVER, "client")
        return True

    # ------------------------------------------------------------------
    # recovery and reintegration
    # ------------------------------------------------------------------

    def poll_recoveries(self) -> List[SiteEndpoint]:
        """Give every DOWN site one chance to come back.

        Free while the cluster is healthy (a single flag check).  Each
        DOWN site gets one unretried liveness probe (a CONTROL
        message); if it answers, the site is re-probed for every Eq.-9
        factor it owes — tightening, and possibly retracting, degraded
        results — and returned so the iteration policy can resume
        fetching its candidates.
        """
        if not self.health.any_down:
            return []
        recovered: List[SiteEndpoint] = []
        for site_id in self.health.down_sites():
            site = self._site_by_id[site_id]
            self._account(MessageKind.CONTROL, _SERVER, self._name(site))
            try:
                site.queue_size()
            except RETRYABLE_FAULTS:
                continue
            self.health.mark_recovering(site_id, "liveness probe answered")
            if self._reintegrate(site):
                self.health.mark_up(site_id, "reintegration complete")
                self.stats.sites_recovered += 1
                recovered.append(site)
            else:
                self.health.mark_down(site_id, "reintegration failed")
        return recovered

    def _reintegrate(self, site: SiteEndpoint) -> bool:
        """Bring one RECOVERING site back into the query.

        Prepares it if it never completed PREPARE, then replays every
        broadcast it missed via probe_and_prune — collecting its exact
        factors (tightening the Corollary-1 bounds) *and* delivering
        the feedback its Local-Pruning phase never saw.
        """
        site_id = site.site_id
        if site_id not in self._prepared:
            self._account(MessageKind.PREPARE, _SERVER, self._name(site))
            ok, _size = self._rpc(
                site, "prepare", lambda: site.prepare(self.threshold)
            )
            if not ok:
                return False
            self._prepared.add(site_id)
            self._account(MessageKind.PREPARE_REPLY, self._name(site), _SERVER)
        owed = self.coverage.missing_from(site_id)
        for cov in owed:
            self._account(MessageKind.FEEDBACK, _SERVER, self._name(site))
            ok, reply = self._rpc(
                site, "probe_and_prune", lambda cov=cov: site.probe_and_prune(cov.tuple)
            )
            if not ok:
                return False
            self._account(MessageKind.PROBE_REPLY, self._name(site), _SERVER)
            bound = self.coverage.contribute(cov.key, site_id, reply.factor)
            self._tighten_result(cov.key, bound)
        if owed:
            self.stats.record_round(tuples_in_round=len(owed))
        return True

    def _tighten_result(self, key: int, bound: float) -> None:
        """Apply a re-probed, tighter bound to an already-reported tuple.

        Bounds only ever decrease, so tightening can demote a degraded
        result below ``q`` — in which case it is retracted: the
        degraded answer was a superset, and this is the shrink.
        """
        for i, member in enumerate(self.results):
            if member.tuple.key != key:
                continue
            if bound < self.threshold:
                del self.results[i]
            else:
                self.results[i] = SkylineMember(member.tuple, bound)
            return

    # ------------------------------------------------------------------
    # the run loop contract
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the query; subclasses implement :meth:`_execute`."""
        self.progress.restart_clock()
        self._execute()
        extra = self._extra()
        pruned = [
            getattr(site, "pruned_total", None) for site in self.sites
        ]
        if all(p is not None for p in pruned):
            # Local-pruning effectiveness; available for in-process
            # sites (TCP proxies do not expose internals).
            extra["site_pruned_total"] = float(sum(pruned))
        coverage = self.coverage.report(
            self.health.down_sites(),
            result_keys=[m.tuple.key for m in self.results],
            transitions=[
                f"site-{t.site_id}: {t.old.value} -> {t.new.value} ({t.reason})"
                for t in self.health.transitions()
            ],
        )
        return RunResult(
            algorithm=self.algorithm,
            answer=ProbabilisticSkyline(self.threshold, list(self.results)),
            stats=self.stats,
            progress=self.progress,
            iterations=self.iterations,
            extra=extra,
            coverage=coverage,
        )

    def _execute(self) -> None:
        raise NotImplementedError

    def _extra(self) -> dict:
        return {}

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def _account(self, kind: MessageKind, sender: str, receiver: str) -> None:
        self.stats.record(Message.bearing(kind, sender, receiver, payload=None))

    @staticmethod
    def _name(site: SiteEndpoint) -> str:
        return f"site-{site.site_id}"

"""The central server H: shared machinery of the §4 framework.

:class:`Coordinator` implements everything the four algorithms have in
common — preparing sites, fetching representatives (To-Server phase),
broadcasting feedback and combining the returned factors into exact
global probabilities (Server-Delivery phase, Lemma 1), reporting
qualified tuples progressively, and accounting every protocol message
against the paper's bandwidth metric.  The concrete algorithms
(:mod:`~repro.distributed.baseline`, :mod:`~repro.distributed.naive`,
:mod:`~repro.distributed.dsud`, :mod:`~repro.distributed.edsud`)
subclass it and supply only their iteration policy.

Fault tolerance
---------------
Every coordinator→site RPC goes through :meth:`_rpc`, which retries
transport faults under an optional :class:`~repro.fault.retry.RetryPolicy`
and, when retries are exhausted, escalates to the per-site lifecycle
FSM (:class:`~repro.fault.fsm.ClusterHealth`) instead of raising.  A
DOWN site is excluded from subsequent rounds; the factors it can no
longer contribute are tracked by a
:class:`~repro.fault.coverage.CoverageTracker`, so every affected
result carries its Corollary-1 upper bound and the set of sites that
did contribute.  Run loops call :meth:`poll_recoveries` once per
iteration: a DOWN site that answers a liveness probe is re-probed for
every factor it owes (tightening — possibly retracting — degraded
results) and handed back to the iteration policy via the sites list
the poll returns.  On a healthy run none of this machinery sends a
single extra message, so accounting stays bit-identical to the
fault-oblivious protocol.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    AsyncGenerator,
    Awaitable,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.dominance import Preference
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from ..core.tuples import UncertainTuple
from ..fault.coverage import CoverageTracker, TupleCoverage
from ..fault.errors import RETRYABLE_FAULTS
from ..fault.fsm import ClusterHealth, SiteLifecycle
from ..fault.liveness import LivenessBook
from ..fault.retry import RetryPolicy, acall_with_retry, call_with_retry
from ..net.message import Message, MessageKind, Quaternion
from ..net.stats import LatencyModel, NetworkStats, ProgressLog
from ..net.transport import SiteEndpoint
from .runner import RunResult
from .site import ProbeReply

if TYPE_CHECKING:  # imported lazily — replica builds on distributed.site
    from ..replica.manager import ReplicaManager

__all__ = ["Coordinator", "TopKBuffer", "BufferedResult"]

_SERVER = "server"

#: The emission callback drains hand results to (Coordinator.report).
ReportFn = Callable[[UncertainTuple, float], object]


@dataclass(frozen=True)
class _Rpc:
    """One site RPC a protocol script asks its driver to perform.

    The protocol building blocks are *sans-io* generators: instead of
    calling sites directly they yield ``_Rpc`` descriptors and receive
    the ``(ok, value)`` verdict back through ``send()``.  The sync
    driver executes the descriptor through :meth:`Coordinator._rpc`,
    the async driver through :meth:`Coordinator._arpc` — same retry,
    FSM, and accounting semantics, because the bookkeeping lives in the
    script and the settle path, not in the driver.

    ``raw=True`` requests a single unretried attempt with no stats or
    FSM side effects (the liveness-probe shape): the driver answers
    ``(alive, value)`` where a transport fault means ``(False, None)``.
    """

    site: SiteEndpoint
    method: str
    args: Tuple[Any, ...] = ()
    raw: bool = False


@dataclass(frozen=True)
class _Fanout:
    """A one-round broadcast: per-site RPC plans, executed concurrently.

    Each inner list is one site's sequential call plan (stop on the
    first failed call); plans for distinct sites may run concurrently —
    the sync driver maps them over the broadcast thread pool, the async
    driver gathers them — when ``parallel_broadcast`` is set, and run
    sequentially in plan order otherwise (preserving deterministic
    per-endpoint call order under chaos schedules).  The reply is a
    list of per-plan ``(ok, value)`` result lists, aligned with the
    input.
    """

    plans: Tuple[Tuple[_Rpc, ...], ...] = ()


#: What a protocol script may yield to its driver.
_Request = Union[_Rpc, _Fanout]


@dataclass
class BufferedResult:
    """One resolved, qualified tuple waiting inside a :class:`TopKBuffer`.

    ``coverage`` is the *live* :class:`TupleCoverage` the broadcast
    opened — shared with the coordinator's tracker, so a recovered
    site's re-probe tightens :attr:`effective` in place instead of the
    entry staying frozen at its offer-time probability.  ``origin`` and
    ``seq`` namespace the ordering tiebreak: two tuples that share a
    key across sites never fall through to comparing
    :class:`UncertainTuple` objects.
    """

    tuple: UncertainTuple
    probability: float                        # offer-time global probability
    coverage: Optional[TupleCoverage] = None  # live Corollary-1 books
    origin: int = -1
    seq: int = 0

    @property
    def effective(self) -> float:
        """The current probability: exact, or the live Corollary-1 bound."""
        if self.coverage is not None:
            return self.coverage.upper_bound
        return self.probability

    @property
    def exact(self) -> bool:
        """True when every site's Eq.-9 factor is folded in (Lemma 1)."""
        return self.coverage is None or self.coverage.exact

    def sort_key(self) -> Tuple[float, int, int, int]:
        """Deterministic total order: probability desc, then (key, origin)."""
        return (-self.effective, self.tuple.key, self.origin, self.seq)


class TopKBuffer:
    """Order-correct top-k emission for progressive coordinators.

    The iteration policies resolve candidates in *bound* order, not in
    exact-probability order, so under a result limit a resolved tuple
    may only be emitted once nothing still unresolved could beat it.
    The buffer holds resolved qualified tuples and releases one only
    when its probability is **exact** (all Eq.-9 factors present) and
    **strictly** greater than both the caller-supplied cap on
    everything unresolved and every other buffered entry's Corollary-1
    bound; k emitted results end the query — that early stop is the
    whole bandwidth win of ``limit=``.

    Emission rules, deterministic by construction:

    * **Tie rule** — a probability merely *equal* to the cap is held:
      an unresolved candidate could still tie, and with equal exact
      probabilities the ``(key, origin)`` order must decide.  Once the
      tied candidates are all buffered, ties emit in ascending
      ``(key, origin)`` order.
    * **Degraded entries** — an entry whose probability is a mere
      Corollary-1 upper bound (a site was DOWN during its broadcast)
      is never released by :meth:`drain`; it re-scores in place as
      recovered sites are re-probed, and is retracted silently if its
      bound sinks below ``threshold``.  Only :meth:`flush` (natural
      termination, nothing left to resolve or recover) emits inexact
      entries, in bound order — the coordinator then surfaces them via
      ``CoverageReport.degraded``.
    * **Bounded memory** — at most ``limit`` pending entries whenever
      everything buffered is exact; an entry is dropped only when
      ``limit - emitted`` *exact* entries provably outrank it forever
      (exact values are final and a bound only ever decreases, so the
      order cannot invert).
    """

    def __init__(self, limit: int, threshold: float = 0.0) -> None:
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit!r}")
        self.limit = limit
        self.threshold = threshold
        self.emitted = 0
        self._entries: List[BufferedResult] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        """Pending entries that could still be emitted."""
        return self.limit - self.emitted

    def offer(
        self,
        t: UncertainTuple,
        probability: float,
        coverage: Optional[TupleCoverage] = None,
    ) -> None:
        """Buffer one resolved qualified tuple (with its live coverage)."""
        self._entries.append(
            BufferedResult(
                tuple=t,
                probability=probability,
                coverage=coverage,
                origin=coverage.origin if coverage is not None else -1,
                seq=next(self._seq),
            )
        )
        self._entries.sort(key=BufferedResult.sort_key)
        self._trim()

    def _trim(self) -> None:
        """Drop tail entries provably outside the remaining capacity.

        Sound only when the ``capacity`` best entries are all exact:
        their values are final, and the tail's bound can only decrease,
        so the tail can never climb back in.  While any leading entry
        is inexact everything is kept — its bound may tighten below the
        tail.
        """
        while len(self._entries) > self.capacity and all(
            entry.exact for entry in self._entries[: self.capacity]
        ):
            self._entries.pop()

    def _prune_retracted(self) -> None:
        """Drop entries a re-probe has pushed below the threshold.

        They were never emitted, so the progressive guarantee holds:
        tightening retracts *buffered* state, never a reported tuple.
        """
        if self.threshold > 0.0:
            self._entries = [
                e for e in self._entries if e.effective >= self.threshold
            ]

    def inexact_entries(self) -> List[BufferedResult]:
        """Pending entries whose probability is still a mere upper bound."""
        return [e for e in self._entries if not e.exact]

    def inexact_cap(self) -> float:
        """The largest Corollary-1 bound among pending inexact entries."""
        return max(
            (e.effective for e in self._entries if not e.exact), default=0.0
        )

    def drain(self, remaining_cap: float, report: ReportFn) -> bool:
        """Emit everything provably next-best; True once the limit is hit.

        An entry is emittable only when it is exact and its probability
        strictly beats ``remaining_cap`` *and* every other pending
        entry's bound — see the class docstring for the tie and
        degraded-entry rules.
        """
        self._prune_retracted()
        self._entries.sort(key=BufferedResult.sort_key)
        while self._entries and self.emitted < self.limit:
            head = self._entries[0]
            if not head.exact:
                break
            if head.effective <= max(remaining_cap, self.inexact_cap()):
                break
            self._entries.pop(0)
            report(head.tuple, head.effective)
            self.emitted += 1
        self._trim()
        return self.emitted >= self.limit

    def flush(self, report: ReportFn) -> bool:
        """Natural termination: nothing unresolved (or recoverable) remains.

        Exact entries emit at their exact probability; entries still
        inexact — their sites stayed DOWN to the end — emit at their
        Corollary-1 upper bound, in bound order, and the coordinator
        annotates them through ``CoverageReport.degraded``.  Entries
        beyond the limit stay pending for that same disclosure.
        """
        self._prune_retracted()
        self._entries.sort(key=BufferedResult.sort_key)
        while self._entries and self.emitted < self.limit:
            head = self._entries.pop(0)
            report(head.tuple, head.effective)
            self.emitted += 1
        return self.emitted >= self.limit


class Coordinator:
    """Base class for the central server of a distributed skyline query."""

    algorithm = "abstract"

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        parallel_broadcast: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: int = 1,
        limit: Optional[int] = None,
        replica_manager: Optional["ReplicaManager"] = None,
        liveness_book: Optional[LivenessBook] = None,
    ) -> None:
        if not sites:
            raise ValueError("a distributed query needs at least one site")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size!r}")
        self.sites = list(sites)
        self.threshold = threshold
        self.preference = preference
        self.stats = NetworkStats(latency_model=latency_model or LatencyModel())
        self.progress = ProgressLog()
        self.results: List[SkylineMember] = []
        self.iterations = 0
        #: Issue the per-broadcast probes concurrently (one thread per
        #: target site).  Pays off over real sockets, where each probe
        #: is a network round-trip; in-process sites gain nothing.
        #: Accounting is unaffected either way — the simulated clock
        #: already treats a broadcast as one parallel round.
        self.parallel_broadcast = parallel_broadcast
        #: ``None`` keeps single-attempt semantics: the first transport
        #: fault marks the site DOWN.  A policy inserts retries (with
        #: backoff) between the fault and that escalation.
        self.retry_policy = retry_policy
        #: Feedback quaternions shipped per FEEDBACK message.  1 keeps
        #: every message, round, and floating-point product bit-identical
        #: to the paper's per-candidate protocol; k > 1 trades strictly
        #: fewer coordination rounds for slightly staler Local-Pruning
        #: feedback within a round (see docs/performance.md).
        self.batch_size = batch_size
        #: Coordinator-lifetime broadcast pool, created lazily on the
        #: first parallel broadcast and shut down in :meth:`run`'s
        #: finally path (or :meth:`close`).
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Serialises the shared-state mutations inside :meth:`_rpc`
        #: (stats counters, lifecycle FSM) — under ``parallel_broadcast``
        #: several probe threads finish their RPCs concurrently.
        self._state_lock = threading.Lock()
        self.health = ClusterHealth(s.site_id for s in self.sites)
        self.coverage = CoverageTracker(s.site_id for s in self.sites)
        self.coverage.add_tighten_hook(self._tighten_result)
        self._site_by_id = {s.site_id: s for s in self.sites}
        self._prepared: set = set()
        #: ``limit=k`` makes the query a top-k probabilistic skyline:
        #: the buffer below holds resolved qualified tuples until they
        #: are provably next-best (see :class:`TopKBuffer`); ``None``
        #: reports every resolved candidate straight through.
        self.limit = limit
        self._topk: Optional[TopKBuffer] = (
            TopKBuffer(limit, threshold=threshold) if limit is not None else None
        )
        #: Per-site cap on the local skyline probability of anything
        #: the site has *not yet delivered*: its queue pops in
        #: descending order, so the next candidate is bounded by the
        #: last one fetched (1.0 before the first fetch, 0.0 once
        #: exhausted).  :meth:`_down_sites_cap` reads this for DOWN
        #: sites so a top-k early stop cannot cut off a recovery that
        #: might still surface a better tuple.
        self._site_tail_cap: Dict[int, float] = {
            s.site_id: 1.0 for s in self.sites
        }
        #: Optional replication subsystem: with buddy replicas a
        #: primary that goes DOWN is *failed over* (a replica is
        #: promoted as the logical site's endpoint, the in-flight round
        #: replayed) instead of degrading the query to Corollary-1
        #: bounds.  Provisioning happens before the query books are
        #: bound, so a healthy replicated run bills exactly like an
        #: unreplicated one.
        self.replica_manager = replica_manager
        if replica_manager is not None:
            replica_manager.ensure_provisioned()
            replica_manager.bind_stats(self.stats)
        #: Representative keys each logical site already surrendered —
        #: the catch-up list a promoted replacement fast-forwards over
        #: so it never re-serves a delivered candidate.
        self._delivered_keys: Dict[int, List[int]] = {
            s.site_id: [] for s in self.sites
        }
        #: Logical sites currently served by a promoted replica, mapped
        #: to their original primary endpoint (the failback probe
        #: target).
        self._failed_over: Dict[int, SiteEndpoint] = {}
        #: Optional shared liveness snapshot (the serving layer hands
        #: the same book to every in-flight query so a dead shared site
        #: is probed once per epoch, not once per query).  ``None`` —
        #: the solo default — probes in-band exactly as before.
        self.liveness_book = liveness_book

    # ------------------------------------------------------------------
    # the fault-tolerant RPC funnel
    # ------------------------------------------------------------------

    def _retry_recorder(
        self, lifecycle: SiteLifecycle
    ) -> Callable[[int, float, Exception], None]:
        """The shared per-retry bookkeeping hook for both RPC funnels."""

        def on_retry(attempt: int, delay: float, exc: Exception) -> None:
            with self._state_lock:
                self.stats.record_retry(delay)
                lifecycle.record_failure()

        return on_retry

    def _settle_rpc(
        self,
        site_id: int,
        lifecycle: SiteLifecycle,
        label: str,
        elapsed: float,
        value: object,
        error: Optional[Exception],
    ) -> Tuple[bool, object]:
        """Post-call bookkeeping shared by :meth:`_rpc` and :meth:`_arpc`.

        The call itself ran unlocked; only the bookkeeping is
        serialised, so parallel probes still overlap on the wire.
        """
        with self._state_lock:
            self.stats.record_rpc_time(elapsed)
            if error is not None:
                self.stats.record_failure()
                if not lifecycle.is_down:
                    lifecycle.record_failure()
                    self.health.mark_down(site_id, reason=f"{label}: {error!r}")
                    self.stats.sites_lost += 1
                return False, None
            if not lifecycle.is_up:
                # A retry succeeded while SUSPECT, or a reintegration call
                # succeeded while RECOVERING: either way the site is back.
                self.health.mark_up(site_id, reason=f"{label} succeeded")
        return True, value

    def _rpc(
        self, site: SiteEndpoint, label: str, call: Callable[[], object]
    ) -> Tuple[bool, object]:
        """Invoke one site RPC; never raises transport faults.

        Returns ``(True, value)`` on success.  On a terminal transport
        fault the site is marked DOWN and ``(False, None)`` is returned
        — the caller degrades instead of unwinding.
        """
        site_id = site.site_id
        lifecycle = self.health.lifecycle(site_id)
        start = time.perf_counter()
        if self.retry_policy is None:
            try:
                value, error = call(), None
            except RETRYABLE_FAULTS as exc:
                value, error = None, exc
        else:
            value, error = call_with_retry(
                call,
                self.retry_policy,
                site_id=site_id,
                on_retry=self._retry_recorder(lifecycle),
            )
        elapsed = time.perf_counter() - start
        return self._settle_rpc(site_id, lifecycle, label, elapsed, value, error)

    async def _arpc(
        self,
        site: SiteEndpoint,
        label: str,
        call: Callable[[], "Awaitable[Any]"],
    ) -> Tuple[bool, object]:
        """Awaitable twin of :meth:`_rpc` — same verdicts, same books.

        Retries go through :func:`acall_with_retry` (identical
        deterministic backoff, non-blocking sleeps) and land in the
        same :meth:`_settle_rpc` bookkeeping, so a chaos schedule's
        FSM transitions and retry accounting replay bit-for-bit
        whichever funnel carried the call.
        """
        site_id = site.site_id
        lifecycle = self.health.lifecycle(site_id)
        start = time.perf_counter()
        if self.retry_policy is None:
            try:
                value, error = await call(), None
            except RETRYABLE_FAULTS as exc:
                value, error = None, exc
        else:
            value, error = await acall_with_retry(
                call,
                self.retry_policy,
                site_id=site_id,
                on_retry=self._retry_recorder(lifecycle),
            )
        elapsed = time.perf_counter() - start
        return self._settle_rpc(site_id, lifecycle, label, elapsed, value, error)

    # ------------------------------------------------------------------
    # the script drivers: sync and async execution of _Rpc/_Fanout
    # ------------------------------------------------------------------

    def _perform_rpc(self, request: _Rpc) -> Tuple[bool, object]:
        """Execute one descriptor synchronously through the RPC funnel."""
        site, method, args = request.site, request.method, request.args
        if request.raw:
            try:
                return True, getattr(site, method)(*args)
            except RETRYABLE_FAULTS:
                return False, None
        return self._rpc(site, method, lambda: getattr(site, method)(*args))

    def _run_plan(self, plan: Sequence[_Rpc]) -> List[Tuple[bool, object]]:
        """One site's sequential fanout plan: stop at the first failure."""
        out: List[Tuple[bool, object]] = []
        for rpc in plan:
            verdict = self._perform_rpc(rpc)
            out.append(verdict)
            if not verdict[0]:
                break
        return out

    def _perform(self, request: _Request) -> object:
        """Synchronous driver for one script-yielded request."""
        if isinstance(request, _Rpc):
            return self._perform_rpc(request)
        plans = request.plans
        if self.parallel_broadcast and len(plans) > 1:
            return list(self._broadcast_pool().map(self._run_plan, plans))
        return [self._run_plan(plan) for plan in plans]

    async def _aperform_rpc(self, request: _Rpc) -> Tuple[bool, object]:
        """Execute one descriptor through the awaitable funnel.

        Endpoints may be sync (in-process :class:`LocalSite` forks,
        chaos wrappers, promoted replicas) or async
        (:class:`~repro.net.aio.AsyncSiteEndpoint` proxies); the driver
        awaits whatever the method returns when it is awaitable, so one
        coordinator can mix both behind identical accounting.
        """
        site, method, args = request.site, request.method, request.args
        if request.raw:
            try:
                value = getattr(site, method)(*args)
                if inspect.isawaitable(value):
                    value = await value
                return True, value
            except RETRYABLE_FAULTS:
                return False, None

        async def call() -> object:
            value = getattr(site, method)(*args)
            if inspect.isawaitable(value):
                value = await value
            return value

        return await self._arpc(site, method, call)

    async def _arun_plan(self, plan: Sequence[_Rpc]) -> List[Tuple[bool, object]]:
        out: List[Tuple[bool, object]] = []
        for rpc in plan:
            verdict = await self._aperform_rpc(rpc)
            out.append(verdict)
            if not verdict[0]:
                break
        return out

    async def _aperform(self, request: _Request) -> object:
        """Awaitable driver: fanouts become ``asyncio.gather`` rounds."""
        if isinstance(request, _Rpc):
            return await self._aperform_rpc(request)
        plans = request.plans
        if self.parallel_broadcast and len(plans) > 1:
            return list(await asyncio.gather(*(self._arun_plan(p) for p in plans)))
        return [await self._arun_plan(plan) for plan in plans]

    def _drive(self, script: Generator[Optional[_Request], Any, Any]) -> Any:
        """Run a protocol script to completion synchronously.

        The public building-block methods stay plain calls by pumping
        their script through this loop; :meth:`steps` and
        :meth:`asteps` pump the same scripts one request at a time.
        """
        to_send: object = None
        while True:
            try:
                request = script.send(to_send)
            except StopIteration as stop:
                return stop.value
            to_send = None if request is None else self._perform(request)

    # ------------------------------------------------------------------
    # protocol building blocks
    # ------------------------------------------------------------------

    def prepare_sites(self) -> List[int]:
        """Local computing phase on every site; returns |SKY(D_i)| sizes.

        A site that fails its PREPARE (after retries) is marked DOWN
        and simply contributes no size — the query proceeds over the
        reachable partitions.
        """
        sizes: List[int] = self._drive(self._prepare_sites_script())
        return sizes

    def _prepare_sites_script(
        self,
    ) -> Generator[Optional[_Request], Any, List[int]]:
        sizes = []
        for site in self.sites:
            self._account(MessageKind.PREPARE, _SERVER, self._name(site))
            ok, size = yield _Rpc(site, "prepare", (self.threshold,))
            if not ok:
                # A buddy replica (if any) can take over from the very
                # first round — its prepare is billed inside _promote.
                promoted = yield from self._failover_script(site.site_id)
                if promoted is None:
                    continue
                _endpoint, size, _factors = promoted
            else:
                self._prepared.add(site.site_id)
                self._account(MessageKind.PREPARE_REPLY, self._name(site), _SERVER)
            sizes.append(size)
        self.stats.record_round()
        return sizes

    def fetch_representative(
        self, site: SiteEndpoint, request: bool = True
    ) -> Optional[Quaternion]:
        """To-Server phase against one site.

        ``request=False`` models the initial fill, where every site
        pushes its head spontaneously and no NEXT_REQUEST is paid.
        Returns ``None`` both for a genuinely exhausted site and for an
        unreachable one — in the latter case the FSM records the loss
        and :meth:`poll_recoveries` can undo it later.
        """
        quaternion: Optional[Quaternion] = self._drive(
            self._fetch_representative_script(site, request=request)
        )
        return quaternion

    def _fetch_representative_script(
        self, site: SiteEndpoint, request: bool = True
    ) -> Generator[Optional[_Request], Any, Optional[Quaternion]]:
        # Re-resolve through the live endpoint table: run loops hold
        # references from query start, which go stale after a failover
        # or failback swaps the logical site's serving endpoint.
        site = self._site_by_id.get(site.site_id, site)
        if self.health.is_down(site.site_id):
            promoted = yield from self._failover_script(site.site_id)
            if promoted is None:
                return None
            site = promoted[0]
        if request:
            self._account(MessageKind.NEXT_REQUEST, _SERVER, self._name(site))
        ok, quaternion = yield _Rpc(site, "pop_representative")
        if not ok:
            # Died on the pop: promote a replica (which fast-forwards
            # past everything already delivered) and re-issue the pop
            # against it — the To-Server phase continues exactly.
            promoted = yield from self._failover_script(site.site_id)
            if promoted is None:
                return None
            site = promoted[0]
            ok, quaternion = yield _Rpc(site, "pop_representative")
            if not ok:
                return None
        if quaternion is None:
            self._site_tail_cap[site.site_id] = 0.0
            self._account(MessageKind.EXHAUSTED, self._name(site), _SERVER)
            return None
        # The queue pops in descending order: whatever the site still
        # holds is bounded by what it just delivered.
        self._site_tail_cap[site.site_id] = quaternion.local_probability
        self._account(MessageKind.REPRESENTATIVE, self._name(site), _SERVER)
        self._delivered_keys[site.site_id].append(quaternion.key)
        return quaternion

    def initial_fill(self) -> List[Quaternion]:
        """First To-Server round: every site's head, in parallel."""
        out: List[Quaternion] = self._drive(self._initial_fill_script())
        return out

    def _initial_fill_script(
        self,
    ) -> Generator[Optional[_Request], Any, List[Quaternion]]:
        out = []
        for site in self.sites:
            quaternion = yield from self._fetch_representative_script(
                site, request=False
            )
            if quaternion is not None:
                out.append(quaternion)
        self.stats.record_round(tuples_in_round=len(out))
        return out

    def broadcast(self, quaternion: Quaternion) -> float:
        """Server-Delivery + Local-Pruning round for one candidate.

        Sends the tuple to every reachable site except its origin,
        folds the returned Eq.-9 factors into the global probability
        via Lemma 1, and advances the simulated clock by one parallel
        round.  With full coverage the product is exact; with sites
        down it is the Corollary-1 upper bound (each missing factor
        ≤ 1), and the coverage tracker knows which.
        """
        probability: float = self._drive(self._broadcast_script(quaternion))
        return probability

    def _broadcast_script(
        self, quaternion: Quaternion
    ) -> Generator[Optional[_Request], Any, float]:
        global_probability = quaternion.local_probability
        replies = yield from self._broadcast_probes_script(quaternion)
        for _site_id, reply in replies:
            global_probability *= reply.factor
        return global_probability

    def broadcast_probes(
        self, quaternion: Quaternion
    ) -> List[Tuple[int, ProbeReply]]:
        """Deliver one feedback tuple to every other live site; yield replies.

        Returns ``(site_id, ProbeReply)`` pairs and does all the
        accounting; :meth:`broadcast` and e-DSUD's factor-tracking
        variant both build on it.  With ``parallel_broadcast`` the
        probes run concurrently — safe because each target site only
        ever receives its own call.

        Accounting is per-reply: FEEDBACK is billed when the probe is
        *sent* (DOWN sites are never sent to, so never billed), but
        PROBE_REPLY only when the site actually answers — a site that
        dies mid-broadcast costs the attempt, not the reply.
        """
        replies: List[Tuple[int, ProbeReply]] = self._drive(
            self._broadcast_probes_script(quaternion)
        )
        return replies

    def _broadcast_probes_script(
        self, quaternion: Quaternion
    ) -> Generator[Optional[_Request], Any, List[Tuple[int, ProbeReply]]]:
        t = quaternion.tuple
        targets = [
            s
            for s in self.sites
            if s.site_id != quaternion.site and not self.health.is_down(s.site_id)
        ]
        self.coverage.open(
            t.key, quaternion.site, t, quaternion.local_probability
        )
        for site in targets:
            self._account(MessageKind.FEEDBACK, _SERVER, self._name(site))
        attempts = yield _Fanout(
            tuple((_Rpc(s, "probe_and_prune", (t,)),) for s in targets)
        )
        out = []
        for site, plan_result in zip(targets, attempts):
            ok, reply = plan_result[0]
            if not ok:
                # Mid-broadcast casualty: promote a replica and recover
                # this round's factor from the replay (billed as
                # FAILOVER_PROBE/PROBE_REPLY inside _promote, and
                # already contributed to the coverage books there).
                factor = yield from self._failover_factor_script(
                    site.site_id, t.key
                )
                if factor is None:
                    continue  # factor stays missing in the coverage books
                out.append(
                    (site.site_id, ProbeReply(factor=factor, pruned=0, queue_remaining=0))
                )
                continue
            self._account(MessageKind.PROBE_REPLY, self._name(site), _SERVER)
            self.coverage.contribute(t.key, site.site_id, reply.factor)
            out.append((site.site_id, reply))
        self.stats.record_round(tuples_in_round=len(targets))
        return out

    def broadcast_batch(self, quaternions: Sequence[Quaternion]) -> List[float]:
        """Server-Delivery round for up to ``batch_size`` candidates at once.

        Returns one exact (or Corollary-1 bounded, under failures)
        global probability per quaternion, aligned with the input.  For
        a single-element batch this is byte-for-byte :meth:`broadcast`
        — same messages, same rounds, same multiplication order.
        """
        probabilities: List[float] = self._drive(
            self._broadcast_batch_script(quaternions)
        )
        return probabilities

    def _broadcast_batch_script(
        self, quaternions: Sequence[Quaternion]
    ) -> Generator[Optional[_Request], Any, List[float]]:
        quaternions = list(quaternions)
        probabilities = [q.local_probability for q in quaternions]
        triples = yield from self._broadcast_probes_batch_script(quaternions)
        for _site_id, index, factor in triples:
            probabilities[index] *= factor
        return probabilities

    def broadcast_probes_batch(
        self, quaternions: Sequence[Quaternion]
    ) -> List[Tuple[int, int, float]]:
        """Deliver a batch of feedback tuples; yield per-tuple factors.

        Returns ``(site_id, batch_index, factor)`` triples.  Each live
        site receives *one* FEEDBACK message carrying every batch tuple
        it did not originate (billed at k tuples — the paper's metric
        counts tuples, not envelopes) and answers with one PROBE_REPLY
        carrying k scalars.  The whole batch costs a single parallel
        round.  A single-element batch routes through
        :meth:`broadcast_probes` so traces, accounting, and arithmetic
        stay bit-identical to the unbatched protocol.

        Endpoints without :meth:`probe_and_prune_batch` (e.g. region
        aggregators) degrade to per-tuple probe_and_prune RPCs behind
        the same batched accounting.
        """
        triples: List[Tuple[int, int, float]] = self._drive(
            self._broadcast_probes_batch_script(quaternions)
        )
        return triples

    def _broadcast_probes_batch_script(
        self, quaternions: Sequence[Quaternion]
    ) -> Generator[Optional[_Request], Any, List[Tuple[int, int, float]]]:
        quaternions = list(quaternions)
        if not quaternions:
            return []
        if len(quaternions) == 1:
            replies = yield from self._broadcast_probes_script(quaternions[0])
            return [(site_id, 0, reply.factor) for site_id, reply in replies]
        for q in quaternions:
            self.coverage.open(q.tuple.key, q.site, q.tuple, q.local_probability)
        plan = []  # (site, indices of batch tuples it must probe)
        total_tuples = 0
        for site in self.sites:
            if self.health.is_down(site.site_id):
                continue
            indices = [
                i for i, q in enumerate(quaternions) if q.site != site.site_id
            ]
            if not indices:
                continue
            plan.append((site, indices))
            self._account(
                MessageKind.FEEDBACK, _SERVER, self._name(site), tuples=len(indices)
            )
            total_tuples += len(indices)

        # Three per-site call shapes, mirrored when decoding replies:
        # a single-tuple probe, one batched RPC, or (for endpoints
        # without probe_and_prune_batch) sequential per-tuple probes
        # whose partial factors still tighten coverage.
        shapes = []
        fanout_plans = []
        for site, indices in plan:
            ts = [quaternions[i].tuple for i in indices]
            if len(ts) == 1:
                shapes.append("single")
                fanout_plans.append((_Rpc(site, "probe_and_prune", (ts[0],)),))
            elif getattr(site, "probe_and_prune_batch", None) is not None:
                shapes.append("batch")
                fanout_plans.append((_Rpc(site, "probe_and_prune_batch", (ts,)),))
            else:
                shapes.append("sequential")
                fanout_plans.append(
                    tuple(_Rpc(site, "probe_and_prune", (t,)) for t in ts)
                )
        attempts = yield _Fanout(tuple(fanout_plans))
        out = []
        for (site, indices), shape, results in zip(plan, shapes, attempts):
            if shape == "single":
                ok, reply = results[0]
                factors = [reply.factor] if ok else []
            elif shape == "batch":
                ok, reply = results[0]
                factors = list(reply.factors) if ok else []
            else:
                factors = [reply.factor for ok, reply in results if ok]
            if not factors:
                # Mid-round casualty: a promoted replica supplies the
                # whole batch's factors through the replay inside
                # _promote (billed and contributed there).
                replayed = yield from self._failover_factors_script(site.site_id)
                if replayed is None:
                    continue  # factors stay missing in the coverage books
                for index in indices:
                    factor = replayed.get(quaternions[index].tuple.key)
                    if factor is not None:
                        out.append((site.site_id, index, factor))
                continue
            self._account(MessageKind.PROBE_REPLY, self._name(site), _SERVER)
            for index, factor in zip(indices, factors):
                self.coverage.contribute(
                    quaternions[index].tuple.key, site.site_id, factor
                )
                out.append((site.site_id, index, factor))
        self.stats.record_round(tuples_in_round=total_tuples)
        return out

    def report(self, t: UncertainTuple, global_probability: float) -> bool:
        """Progressively emit a resolved candidate; True if it qualified.

        Run loops must not call this directly — route emission through
        :meth:`emit` (skylint SKY102), which composes the ``limit=``
        buffer with the coverage books.  ``report`` is the terminal
        client-facing step the buffer drains into.
        """
        if global_probability < self.threshold:
            return False
        self.coverage.watch(t.key)
        self.results.append(SkylineMember(t, global_probability))
        self.progress.report(t.key, global_probability, self.stats)
        self._account(MessageKind.RESULT, _SERVER, "client")
        return True

    # ------------------------------------------------------------------
    # the coverage-aware emission funnel
    # ------------------------------------------------------------------

    def emit(self, t: UncertainTuple, global_probability: float) -> None:
        """Route one resolved candidate through the emission funnel.

        Unlimited queries report straight through.  Under ``limit=``
        the qualified tuple is buffered together with its **live**
        :class:`~repro.fault.coverage.TupleCoverage`, so a probability
        that is only a Corollary-1 upper bound (a site was DOWN during
        the broadcast) is re-scored in place when the recovered site is
        re-probed — never emitted frozen at offer time.
        """
        if self._topk is None:
            self.report(t, global_probability)
            return
        if global_probability < self.threshold:
            return
        coverage = self.coverage.get(t.key)
        if coverage is not None:
            self.coverage.watch(t.key)
        self._topk.offer(t, global_probability, coverage=coverage)

    def drain_topk(self, remaining_cap: float) -> bool:
        """Release provably next-best buffered results; True at k emitted.

        ``remaining_cap`` is the caller's bound on everything still
        unresolved *on reachable sites*; the buffer additionally sees
        the cap on anything a DOWN site might yet surface, so the
        emitted-count early stop cannot terminate the query while a
        recovery could still promote a cheaper tuple above a buffered
        one.  No-op (False) without a ``limit=``.
        """
        if self._topk is None:
            return False
        cap = max(remaining_cap, self._down_sites_cap())
        return self._topk.drain(cap, self.report)

    def finish_topk(self) -> None:
        """Flush the top-k buffer at natural termination.

        Entries still inexact at this point belong to sites that never
        recovered; they emit at their Corollary-1 bound and are
        disclosed via ``CoverageReport.degraded`` by :meth:`run`.
        """
        if self._topk is not None:
            self._topk.flush(self.report)

    def _down_sites_cap(self) -> float:
        """Bound on the global probability of anything a DOWN site holds.

        A site's undelivered candidates are capped by its last
        delivered local probability (descending queue order); before
        any delivery the cap is 1.0.  Healthy clusters pay a single
        flag check.
        """
        if not self.health.any_down:
            return 0.0
        return max(
            self._site_tail_cap[site_id] for site_id in self.health.down_sites()
        )

    # ------------------------------------------------------------------
    # recovery and reintegration
    # ------------------------------------------------------------------

    def poll_recoveries(self) -> List[SiteEndpoint]:
        """Give every DOWN site one chance to come back; drive failback.

        Free while the cluster is healthy (a single flag check).  Each
        DOWN site gets one unretried liveness probe (a CONTROL
        message); if it answers, the site is re-probed for every Eq.-9
        factor it owes — tightening, and possibly retracting, degraded
        results — and returned so the iteration policy can resume
        fetching its candidates.  A site that stays dead *and* has a
        buddy replica is failed over instead: the replica is promoted
        as the logical site's endpoint and likewise returned.  (Most
        failovers happen earlier, inline at the faulting RPC; this path
        catches sites whose reintegration attempt failed.)  Finally,
        each failed-over primary gets its own liveness probe — on an
        answer it is re-synced and promoted back (failback).
        """
        recovered: List[SiteEndpoint] = self._drive(self._poll_recoveries_script())
        return recovered

    def _poll_recoveries_script(
        self,
    ) -> Generator[Optional[_Request], Any, List[SiteEndpoint]]:
        if not self.health.any_down and not self._failed_over:
            return []
        recovered: List[SiteEndpoint] = []
        for site_id in self.health.down_sites():
            site = self._site_by_id[site_id]
            alive = yield from self._probe_liveness_script(site)
            if not alive:
                promoted = yield from self._failover_script(site_id)
                if promoted is not None:
                    recovered.append(promoted[0])
                continue
            self.health.mark_recovering(site_id, "liveness probe answered")
            reintegrated = yield from self._reintegrate_script(site)
            if reintegrated:
                self.health.mark_up(site_id, "reintegration complete")
                self.stats.sites_recovered += 1
                recovered.append(site)
            else:
                self.health.mark_down(site_id, "reintegration failed")
        yield from self._poll_failbacks_script()
        return recovered

    def _probe_liveness(self, endpoint: SiteEndpoint, kind: str = "site") -> bool:
        """One unretried liveness probe, shared through the book if any.

        Solo (``liveness_book is None``) this is exactly the historical
        in-band probe: one CONTROL message answered by ``queue_size()``.
        With a book, a verdict already recorded this epoch is reused —
        no message is accounted — so many concurrent queries sharing a
        site collapse their probes into one per epoch.  ``kind`` keeps
        the probe of a failed-over *primary* from shadowing the probe
        of the logical site's serving endpoint.
        """
        alive: bool = self._drive(self._probe_liveness_script(endpoint, kind=kind))
        return alive

    def _probe_liveness_script(
        self, endpoint: SiteEndpoint, kind: str = "site"
    ) -> Generator[Optional[_Request], Any, bool]:
        book = self.liveness_book
        key = (kind, endpoint.site_id)
        if book is not None:
            cached = book.lookup(key)
            if cached is not None:
                return cached
        self._account(MessageKind.CONTROL, _SERVER, self._name(endpoint))
        alive, _size = yield _Rpc(endpoint, "queue_size", raw=True)
        if book is not None:
            book.record(key, alive)
        return alive

    def _reintegrate_script(
        self, site: SiteEndpoint
    ) -> Generator[Optional[_Request], Any, bool]:
        """Bring one RECOVERING site back into the query.

        Prepares it if it never completed PREPARE, then replays every
        broadcast it missed via probe_and_prune — collecting its exact
        factors (tightening the Corollary-1 bounds) *and* delivering
        the feedback its Local-Pruning phase never saw.
        """
        site_id = site.site_id
        if site_id not in self._prepared:
            self._account(MessageKind.PREPARE, _SERVER, self._name(site))
            ok, _size = yield _Rpc(site, "prepare", (self.threshold,))
            if not ok:
                return False
            self._prepared.add(site_id)
            self._account(MessageKind.PREPARE_REPLY, self._name(site), _SERVER)
        owed = self.coverage.missing_from(site_id)
        for cov in owed:
            self._account(MessageKind.FEEDBACK, _SERVER, self._name(site))
            ok, reply = yield _Rpc(site, "probe_and_prune", (cov.tuple,))
            if not ok:
                return False
            self._account(MessageKind.PROBE_REPLY, self._name(site), _SERVER)
            # contribute() notifies the tighten hooks for watched keys:
            # reported results re-score (possibly retract) and buffered
            # top-k entries re-score through their shared TupleCoverage.
            self.coverage.contribute(cov.key, site_id, reply.factor)
        if owed:
            self.stats.record_round(tuples_in_round=len(owed))
        return True

    # ------------------------------------------------------------------
    # replica failover and failback
    # ------------------------------------------------------------------

    def _failover(
        self, site_id: int
    ) -> Optional[Tuple[SiteEndpoint, int, Dict[int, float]]]:
        """Re-target a DOWN logical site at its buddy replica.

        Returns ``(endpoint, |SKY(D_i)|, replayed factors by key)`` on
        success — the logical site is UP again, served by the replica,
        and every Eq.-9 factor the dead primary owed has been recovered
        (so ``coverage`` is exact again and the top-k drain stops
        holding tuples back).  ``None`` when no replication is
        configured, the site already failed over once (the replica
        itself died — with one buddy there is no second failover), or
        promotion failed.
        """
        promoted: Optional[Tuple[SiteEndpoint, int, Dict[int, float]]] = (
            self._drive(self._failover_script(site_id))
        )
        return promoted

    def _failover_script(
        self, site_id: int
    ) -> Generator[
        Optional[_Request], Any, Optional[Tuple[SiteEndpoint, int, Dict[int, float]]]
    ]:
        if self.replica_manager is None or site_id in self._failed_over:
            return None
        if not self.health.is_down(site_id):
            return None
        replica = self.replica_manager.replica_for(site_id)
        if replica is None:
            return None
        primary = self._site_by_id[site_id]
        self.health.mark_recovering(site_id, "failover: promoting buddy replica")
        promoted = yield from self._promote_script(site_id, replica)
        if promoted is None:
            # _promote's failing _rpc already journalled the fault and
            # marked the site DOWN again; the query stays degraded.
            return None
        size, factors = promoted
        self._failed_over[site_id] = primary
        self.stats.failovers += 1
        return replica, size, factors

    def _failover_factor(self, site_id: int, key: int) -> Optional[float]:
        """One broadcast tuple's Eq.-9 factor, recovered via failover."""
        factor: Optional[float] = self._drive(
            self._failover_factor_script(site_id, key)
        )
        return factor

    def _failover_factor_script(
        self, site_id: int, key: int
    ) -> Generator[Optional[_Request], Any, Optional[float]]:
        factors = yield from self._failover_factors_script(site_id)
        if factors is None:
            return None
        return factors.get(key)

    def _failover_factors(self, site_id: int) -> Optional[Dict[int, float]]:
        """Fail over and return every factor the promotion replayed."""
        factors: Optional[Dict[int, float]] = self._drive(
            self._failover_factors_script(site_id)
        )
        return factors

    def _failover_factors_script(
        self, site_id: int
    ) -> Generator[Optional[_Request], Any, Optional[Dict[int, float]]]:
        promoted = yield from self._failover_script(site_id)
        if promoted is None:
            return None
        return promoted[2]

    def _promote(
        self, site_id: int, endpoint: SiteEndpoint
    ) -> Optional[Tuple[int, Dict[int, float]]]:
        """Converge a replacement endpoint onto the serving state and swap it in.

        Shared by failover (a replica replaces its dead primary) and
        failback (the re-synced primary replaces the replica).  Three
        steps, each billed:

        1. ``prepare(q)`` rebuilds the candidate queue from the
           replacement's (identical) partition copy — deterministic, so
           the queue matches the twin's initial queue exactly.
        2. Every broadcast the query ever sent to this logical site is
           replayed, in broadcast order, as a tuple-bearing
           ``FAILOVER_PROBE``: the ``probe_and_prune`` replies rebuild
           the Local-Pruning state bit-for-bit (same factors, same
           multiplication order as a never-failed twin) and — via
           ``coverage.contribute`` — recover any Eq.-9 factor still
           owed, firing the tighten hooks that re-score reported
           results and buffered top-k entries back to exactness.
        3. ``fast_forward`` over the representatives already
           surrendered (keys only: one zero-tuple CONTROL message, the
           §3.2 metric counts tuples) so the replacement never
           re-serves a delivered candidate.

        Returns ``(|SKY(D_i)|, replayed factors by key)``; ``None`` if
        the replacement itself faulted (the site is then DOWN again).
        """
        promoted: Optional[Tuple[int, Dict[int, float]]] = self._drive(
            self._promote_script(site_id, endpoint)
        )
        return promoted

    def _promote_script(
        self, site_id: int, endpoint: SiteEndpoint
    ) -> Generator[Optional[_Request], Any, Optional[Tuple[int, Dict[int, float]]]]:
        name = self._name(endpoint)
        self._account(MessageKind.PREPARE, _SERVER, name)
        ok, size = yield _Rpc(endpoint, "prepare", (self.threshold,))
        if not ok:
            return None
        self._prepared.add(site_id)
        self._account(MessageKind.PREPARE_REPLY, name, _SERVER)
        factors: Dict[int, float] = {}
        replayed = [cov for cov in self.coverage.entries() if cov.origin != site_id]
        for cov in replayed:
            self._account(MessageKind.FAILOVER_PROBE, _SERVER, name)
            ok, reply = yield _Rpc(endpoint, "probe_and_prune", (cov.tuple,))
            if not ok:
                return None
            self._account(MessageKind.PROBE_REPLY, name, _SERVER)
            factors[cov.key] = reply.factor
            # contribute() is a no-op for factors the dead twin already
            # supplied, and restores exactness for the owed ones.
            self.coverage.contribute(cov.key, site_id, reply.factor)
        delivered = self._delivered_keys[site_id]
        if delivered:
            self._account(MessageKind.CONTROL, _SERVER, name)
            ok, _skipped = yield _Rpc(endpoint, "fast_forward", (delivered,))
            if not ok:
                return None
        self._site_by_id[site_id] = endpoint
        for i, s in enumerate(self.sites):
            if s.site_id == site_id:
                self.sites[i] = endpoint
                break
        if replayed:
            self.stats.record_round(tuples_in_round=len(replayed))
        return int(size), factors

    def _poll_failbacks_script(self) -> Generator[Optional[_Request], Any, None]:
        """Probe each failed-over primary; re-sync and re-target on answer.

        The replica keeps serving until its primary both answers a
        liveness probe (one CONTROL message per iteration, mirroring
        the DOWN-site cadence) and survives a full promotion: an
        anti-entropy re-sync of its partition (digest exchange — writes
        may have been forwarded while it was away) followed by the same
        prepare/replay/fast-forward convergence a failover runs.
        Failback is invisible to the run loops — the logical site was
        never out of rotation — so nothing is returned.
        """
        if not self._failed_over or self.replica_manager is None:
            return
        for site_id in sorted(self._failed_over):
            primary = self._failed_over[site_id]
            alive = yield from self._probe_liveness_script(primary, kind="primary")
            if not alive:
                continue
            # Partition re-sync runs in-process against replica state —
            # replicas are always local endpoints, never remote proxies.
            self.replica_manager.resync_primary(site_id)
            promoted = yield from self._promote_script(site_id, primary)
            if promoted is None:
                # The primary died again mid-promotion: _rpc marked the
                # logical site DOWN, but the replica is still serving —
                # restore UP through the legal RECOVERING hop.
                if self.health.is_down(site_id):
                    self.health.mark_recovering(site_id, "failback aborted")
                    self.health.mark_up(site_id, "buddy replica still serving")
                continue
            del self._failed_over[site_id]
            self.stats.failbacks += 1
            self.stats.sites_recovered += 1

    def _tighten_result(self, key: int, bound: float) -> None:
        """Apply a re-probed, tighter bound to an already-reported tuple.

        Registered as a :class:`CoverageTracker` tighten hook, so every
        re-probe of a watched key lands here.  Bounds only ever
        decrease, so tightening can demote a degraded result below
        ``q`` — in which case it is retracted: the degraded answer was
        a superset, and this is the shrink.  Buffered (never reported)
        top-k entries are not in ``results``; they re-score through the
        shared ``TupleCoverage`` and the buffer retracts them lazily on
        its next drain.
        """
        for i, member in enumerate(self.results):
            if member.tuple.key != key:
                continue
            if bound < self.threshold:
                del self.results[i]
            else:
                self.results[i] = SkylineMember(member.tuple, bound)
            return

    # ------------------------------------------------------------------
    # the run loop contract
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the query; subclasses implement :meth:`_steps`."""
        for _ in self.steps():
            pass
        return self.finish()

    def steps(self) -> Iterator[None]:
        """Drive the query one scheduling point at a time.

        Progressive coordinators yield once per iteration of their run
        loop; the serving layer interleaves many queries by drawing one
        step from each session per scheduler turn.  The generator owns
        the whole query lifecycle — clock restart on first draw, pool
        shutdown on exhaustion *or* early ``close()`` of the generator
        — so abandoning a session cannot leak threads.  Exhaust the
        generator, then read :meth:`finish` for the RunResult.
        """
        self.progress.restart_clock()
        script = self._steps()
        try:
            to_send: object = None
            while True:
                try:
                    request = script.send(to_send)
                except StopIteration:
                    break
                if request is None:
                    to_send = None
                    yield
                else:
                    to_send = self._perform(request)
        finally:
            script.close()
            self.close()

    async def asteps(self) -> AsyncGenerator[None, None]:
        """Awaitable twin of :meth:`steps` — same script, async driver.

        Pumps the *same* ``_steps`` protocol script, but executes every
        yielded RPC through :meth:`_arpc` and every fanout through
        ``asyncio.gather``, so a session awaiting a socket reply hands
        the event loop to other sessions instead of blocking the
        scheduler thread.  Scheduling points surface as async-iterator
        items, exactly one per sync ``steps()`` item — drive with
        ``async for`` and read :meth:`afinish` afterwards.  Teardown
        uses :meth:`close_nowait` (never joins pool threads on the
        event loop); a cancelled or abandoned iteration still closes
        the script, leaving sites and accounting books consistent at
        the last completed request boundary.
        """
        self.progress.restart_clock()
        script = self._steps()
        try:
            to_send: object = None
            while True:
                try:
                    request = script.send(to_send)
                except StopIteration:
                    break
                if request is None:
                    to_send = None
                    yield
                else:
                    to_send = await self._aperform(request)
        finally:
            script.close()
            self.close_nowait()

    async def afinish(self) -> RunResult:
        """Assemble the RunResult once :meth:`asteps` is exhausted.

        Pure in-memory bookkeeping (no site RPCs), so awaiting it never
        blocks the loop; it exists so async callers never touch the
        sync surface.
        """
        return self.finish()

    def finish(self) -> RunResult:
        """Assemble the RunResult once :meth:`steps` is exhausted."""
        extra = self._extra()
        pruned = [
            getattr(site, "pruned_total", None) for site in self.sites
        ]
        if all(p is not None for p in pruned):
            # Local-pruning effectiveness; available for in-process
            # sites (TCP proxies do not expose internals).
            extra["site_pruned_total"] = float(sum(pruned))
        coverage = self.coverage.report(
            self.health.down_sites(),
            result_keys=[m.tuple.key for m in self.results],
            transitions=[
                f"site-{t.site_id}: {t.old.value} -> {t.new.value} ({t.reason})"
                for t in self.health.transitions()
            ],
            buffered_keys=(
                [e.tuple.key for e in self._topk.inexact_entries()]
                if self._topk is not None
                else ()
            ),
        )
        return RunResult(
            algorithm=self.algorithm,
            answer=ProbabilisticSkyline(self.threshold, list(self.results)),
            stats=self.stats,
            progress=self.progress,
            iterations=self.iterations,
            extra=extra,
            coverage=coverage,
        )

    def _steps(self) -> Generator[Optional[_Request], Any, None]:
        """Subclass hook: the iteration policy as a *sans-io* script.

        The script yields two things: ``None`` for a scheduling point
        (one per run-loop iteration — :meth:`steps`/:meth:`asteps`
        surface these to the caller) and :class:`_Rpc`/:class:`_Fanout`
        request descriptors, whose ``(ok, value)`` results come back
        through ``send()``.  Protocol building blocks compose via
        ``yield from self._*_script(...)``, so one iteration policy
        drives both the sync and the awaitable funnel unchanged.  The
        default adapts a legacy :meth:`_execute` override, which runs
        to completion in a single step.
        """
        self._execute()
        yield from ()

    def _execute(self) -> None:
        raise NotImplementedError

    def _extra(self) -> dict:
        return {}

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Release coordinator-owned resources (the broadcast pool).

        Idempotent; :meth:`run` calls it on every exit path, but a
        caller driving the protocol building blocks directly should
        close explicitly (or rely on GC of the daemonless pool).
        Joins the pool's worker threads — event-loop code must use
        :meth:`close_nowait` instead.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def close_nowait(self) -> None:
        """Detach the broadcast pool without joining its threads.

        The event-loop-safe close: an aborted serving-layer session
        lets in-flight broadcasts drain in the background instead of
        stalling every other session on the loop.  A later
        :meth:`close` then no-ops.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _broadcast_pool(self) -> ThreadPoolExecutor:
        """The lazily created coordinator-lifetime broadcast pool."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=max(2, len(self.sites)),
                thread_name_prefix="broadcast",
            )
        return self._pool

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def _account(
        self,
        kind: MessageKind,
        sender: str,
        receiver: str,
        tuples: Optional[int] = None,
    ) -> None:
        self.stats.record(
            Message.bearing(kind, sender, receiver, payload=None, tuple_count=tuples)
        )

    @staticmethod
    def _name(site: SiteEndpoint) -> str:
        return f"site-{site.site_id}"

"""The enhanced DSUD algorithm, e-DSUD (§5.2).

e-DSUD keeps DSUD's protocol but changes *which* tuple the server
broadcasts: instead of the largest local skyline probability (head of
``L``), it maintains a second ordering ``G`` keyed by the Corollary-2
approximate global bound ``P*_g-sky`` — computable from information the
server already holds, at zero extra bandwidth — and broadcasts its
head.  A candidate with the largest *achievable* global probability is
simultaneously the most likely qualified result and the strongest
pruner for the Local-Pruning phase.

Two further consequences of the bound:

* **Server-side expunge** — a resident whose bound sinks below ``q``
  can never qualify; it is dropped without being broadcast and its
  origin site is immediately asked for its next candidate.  (The
  paper's §5.2 prescribes this eagerly; its §5.3 worked example keeps
  dead residents around until the end — both behaviours are available
  via ``EDSUDConfig.server_expunge``, and both are correct because
  bounds only ever decrease.)
* **Sound termination** — the query is complete when every site is
  exhausted and every remaining resident's bound is below ``q``.

``EDSUDConfig.reuse_probe_factors`` adds an optimization beyond the
paper: the exact Eq.-9 factors returned by a broadcast are remembered
and reused as per-site bounds for residents the broadcast tuple
dominates (always at least as tight as the Observation-2 estimate).
It defaults off to stay faithful; the ablation benchmark measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence

from ..core.dominance import Preference, dominates
from ..core.probability import observation2_bound
from ..fault.liveness import LivenessBook
from ..fault.retry import RetryPolicy
from ..net.message import Quaternion
from ..net.stats import LatencyModel
from ..net.transport import SiteEndpoint
from .coordinator import Coordinator, _Request

if TYPE_CHECKING:
    from ..replica.manager import ReplicaManager

__all__ = ["EDSUDConfig", "EDSUD"]


@dataclass(frozen=True)
class EDSUDConfig:
    """Feedback-selection policy knobs (ablation switches).

    ``server_expunge``      — eagerly drop residents whose bound falls
                              below ``q`` (paper §5.2); if False they
                              linger until termination needs progress
                              (paper §5.3 example behaviour).
    ``eager_bound_refresh`` — tighten existing residents' bounds with
                              every newly arrived quaternion; if False
                              bounds are only computed on arrival.
    ``reuse_probe_factors`` — fold exact broadcast factors back into
                              resident bounds (beyond-paper
                              optimization).
    """

    server_expunge: bool = True
    eager_bound_refresh: bool = True
    reuse_probe_factors: bool = False


@dataclass
class _Resident:
    """A server-resident candidate with its per-site bound factors."""

    quaternion: Quaternion
    factors: Dict[int, float] = field(default_factory=dict)

    @property
    def bound(self) -> float:
        b = self.quaternion.local_probability
        for f in self.factors.values():
            b *= f
        return b


@dataclass
class _SeenTuple:
    """Everything ever shipped to the server (the paper's 'tuples in L')."""

    quaternion: Quaternion
    exact_factors: Dict[int, float] = field(default_factory=dict)


class EDSUD(Coordinator):
    """Enhanced DSUD with Corollary-2 feedback selection."""

    algorithm = "e-DSUD"

    def __init__(
        self,
        sites: Sequence[SiteEndpoint],
        threshold: float,
        preference: Optional[Preference] = None,
        latency_model: Optional[LatencyModel] = None,
        config: Optional[EDSUDConfig] = None,
        limit: Optional[int] = None,
        parallel_broadcast: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: int = 1,
        replica_manager: Optional["ReplicaManager"] = None,
        liveness_book: Optional[LivenessBook] = None,
    ) -> None:
        super().__init__(
            sites, threshold, preference, latency_model,
            parallel_broadcast=parallel_broadcast,
            retry_policy=retry_policy,
            batch_size=batch_size,
            limit=limit,
            replica_manager=replica_manager,
            liveness_book=liveness_book,
        )
        self.config = config or EDSUDConfig()
        self.expunged_total = 0
        self._seen: List[_SeenTuple] = []
        self._residents: Dict[int, _Resident] = {}
        self._exhausted: set = set()

    # ------------------------------------------------------------------
    # bound bookkeeping
    # ------------------------------------------------------------------

    def _apply_seen_to(self, resident: _Resident, seen: _SeenTuple) -> None:
        """Tighten one resident's factors with one seen tuple, if it dominates."""
        q = seen.quaternion
        r = resident.quaternion
        if q.tuple.key == r.tuple.key:
            return
        if not dominates(q.tuple, r.tuple, self.preference):
            return
        if q.site != r.site:
            factor = observation2_bound(q.local_probability, q.tuple.probability)
            prev = resident.factors.get(q.site)
            if prev is None or factor < prev:
                resident.factors[q.site] = factor
        if self.config.reuse_probe_factors:
            for site_id, exact in seen.exact_factors.items():
                if site_id == r.site:
                    continue
                prev = resident.factors.get(site_id)
                if prev is None or exact < prev:
                    resident.factors[site_id] = exact

    def _admit(self, quaternion: Quaternion) -> None:
        """Install a freshly fetched quaternion as its site's resident."""
        resident = _Resident(quaternion=quaternion)
        for seen in self._seen:
            self._apply_seen_to(resident, seen)
        entry = _SeenTuple(quaternion=quaternion)
        if self.config.eager_bound_refresh:
            for other in self._residents.values():
                self._apply_seen_to(other, entry)
        self._seen.append(entry)
        self._residents[quaternion.site] = resident

    # ------------------------------------------------------------------
    # the iteration policy
    # ------------------------------------------------------------------

    def _steps(self) -> Generator[Optional[_Request], Any, None]:
        yield from self._prepare_sites_script()
        site_by_id = {site.site_id: site for site in self.sites}
        for quaternion in (yield from self._initial_fill_script()):
            self._admit(quaternion)
        for site in self.sites:
            if site.site_id not in self._residents:
                self._exhausted.add(site.site_id)

        while True:
            # Reintegrate recovered sites: their missed factors were
            # re-probed inside poll_recoveries; resume their queues.  A
            # site that died *after* delivering its representative still
            # has a live resident at the server — fetching another here
            # would overwrite (and silently lose) it, so only sites
            # whose resident was consumed are refilled.
            for site in (yield from self._poll_recoveries_script()):
                self._exhausted.discard(site.site_id)
                if site.site_id not in self._residents:
                    yield from self._refill_script(site_by_id, site.site_id)
            if self.config.server_expunge:
                yield from self._expunge_dead_script(site_by_id)
            heads = self._top_residents()
            if not heads:
                if self._all_sites_drained():
                    break
                # Lazy mode: dead residents block non-exhausted sites;
                # drop them so those sites can surface fresh candidates.
                yield from self._expunge_dead_script(site_by_id)
                continue
            self.iterations += len(heads)
            quaternions = [resident.quaternion for resident in heads]
            for quaternion in quaternions:
                del self._residents[quaternion.site]
            global_probabilities = yield from self._broadcast_batch_tracking_script(
                quaternions
            )
            for quaternion, global_probability in zip(
                quaternions, global_probabilities
            ):
                # The coverage-aware funnel: reports directly without a
                # limit, otherwise buffers with the live TupleCoverage.
                self.emit(quaternion.tuple, global_probability)
            for quaternion in quaternions:
                yield from self._refill_script(site_by_id, quaternion.site)
            if self.limit is not None:
                # Everything unresolved — residents and their sites'
                # unfetched tails alike — is capped by the residents'
                # local skyline probabilities (Corollary 1 plus the
                # per-site descending queue order); drain_topk adds the
                # cap on whatever a DOWN site might still surface.
                remaining_cap = max(
                    (
                        r.quaternion.local_probability
                        for r in self._residents.values()
                    ),
                    default=0.0,
                )
                if self.drain_topk(remaining_cap):
                    return
            # One iteration done — a scheduling point for the serving
            # layer to interleave other sessions.
            yield
        self.finish_topk()

    def _broadcast_tracking_factors(self, quaternion: Quaternion) -> float:
        """Broadcast like the base class, but remember exact factors."""
        probabilities: List[float] = self._drive(
            self._broadcast_batch_tracking_script([quaternion])
        )
        return probabilities[0]

    def _broadcast_batch_tracking(
        self, quaternions: Sequence[Quaternion]
    ) -> List[float]:
        """Batched broadcast that records each tuple's exact factors.

        A single-element batch routes through the unbatched protocol
        inside :meth:`Coordinator.broadcast_probes_batch`, so factors,
        messages, and multiplication order match the per-candidate
        e-DSUD exactly.
        """
        probabilities: List[float] = self._drive(
            self._broadcast_batch_tracking_script(quaternions)
        )
        return probabilities

    def _broadcast_batch_tracking_script(
        self, quaternions: Sequence[Quaternion]
    ) -> Generator[Optional[_Request], Any, List[float]]:
        quaternions = list(quaternions)
        global_probabilities = [q.local_probability for q in quaternions]
        exacts: List[Dict[int, float]] = [{} for _ in quaternions]
        triples = yield from self._broadcast_probes_batch_script(quaternions)
        for site_id, index, factor in triples:
            global_probabilities[index] *= factor
            exacts[index][site_id] = factor
        for quaternion, exact in zip(quaternions, exacts):
            for seen in self._seen:
                if seen.quaternion.tuple.key == quaternion.tuple.key:
                    seen.exact_factors = exact
                    break
            if self.config.reuse_probe_factors and self.config.eager_bound_refresh:
                entry = _SeenTuple(quaternion=quaternion, exact_factors=exact)
                for other in self._residents.values():
                    self._apply_seen_to(other, entry)
        return global_probabilities

    def _refill_script(
        self, site_by_id: Dict[int, SiteEndpoint], site_id: int
    ) -> Generator[Optional[_Request], Any, None]:
        """Ask a site whose resident was consumed for its next candidate."""
        if site_id in self._exhausted:
            return
        quaternion = yield from self._fetch_representative_script(
            site_by_id[site_id]
        )
        if quaternion is None:
            self._exhausted.add(site_id)
            return
        self.stats.record_round(tuples_in_round=1)
        self._admit(quaternion)

    def _expunge_dead_script(
        self, site_by_id: Dict[int, SiteEndpoint]
    ) -> Generator[Optional[_Request], Any, None]:
        """Drop every resident whose bound proves it unqualified.

        Each drop frees its site, which is immediately asked for the
        next candidate; the loop runs until every resident is live or
        every queue is exhausted.
        """
        while True:
            dead = [
                site_id
                for site_id, resident in self._residents.items()
                if resident.bound < self.threshold
            ]
            if not dead:
                return
            for site_id in dead:
                del self._residents[site_id]
                self.expunged_total += 1
                yield from self._refill_script(site_by_id, site_id)

    def _max_bound_resident(self) -> Optional[_Resident]:
        best = None
        for resident in self._residents.values():
            if best is None or resident.bound > best.bound:
                best = resident
        return best

    def _top_residents(self) -> List[_Resident]:
        """Up to ``batch_size`` qualified residents, best bound first.

        Empty exactly when :meth:`_max_bound_resident` is ``None`` or
        below ``q`` — the termination test.  The stable sort keeps
        first-admitted order on ties, matching the single-head max
        scan.
        """
        live = [
            resident
            for resident in self._residents.values()
            if resident.bound >= self.threshold
        ]
        live.sort(key=lambda resident: resident.bound, reverse=True)
        return live[: self.batch_size]

    def _all_sites_drained(self) -> bool:
        return len(self._exhausted) == len(self.sites)

    def _extra(self) -> dict:
        return {"expunged": float(self.expunged_total)}

"""The local-site runtime (§4's participant S_i, §6's implementation).

A :class:`LocalSite` owns one horizontal partition ``D_i`` of the
global uncertain database and implements every per-site obligation of
the DSUD/e-DSUD protocol:

* **Local computing phase** — compute the qualified local skyline
  ``SKY(D_i) = { t : P_sky(t, D_i) ≥ q }`` (BBS over the PR-tree, §6.2,
  or the sort-based fallback) and keep it sorted by descending local
  skyline probability as the *candidate queue*.
* **To-Server phase** — surrender the queue head as a
  :class:`~repro.net.message.Quaternion` on request.
* **Server-Delivery phase** — answer a probe for a foreign tuple ``t``
  with the factor ``P_sky(t, D_i) = ∏_{t'∈D_i, t'≺t}(1 − P(t'))``
  (Eq. 9) through the §6.3 window query.
* **Local-Pruning phase** — fold each received feedback tuple into the
  pruning set and expunge queue candidates whose global-probability
  upper bound ``P_sky(s, D_i) × ∏_{f ≺ s}(1 − P(f))`` sinks below the
  threshold.  Pruned tuples stay in ``D_i`` (they still dominate) —
  only their candidacy dies.
* **§5.4 maintenance** — apply inserts/deletes to the PR-tree, the
  candidate queue, and the replicated copy of ``SKY(H)``.

Sites never talk to each other; everything flows through the
coordinator, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dominance import Preference, dominates
from ..core.prob_skyline import ProbabilisticSkyline, prob_skyline_sfs
from ..core.probability import skyline_probability
from ..core.tuples import UncertainTuple, validate_database
from ..index.bbs import bbs_prob_skyline
from ..index.prtree import PRTree
from ..net.message import Quaternion

__all__ = ["SiteConfig", "ProbeReply", "LocalSite"]


@dataclass(frozen=True)
class SiteConfig:
    """Per-site execution knobs.

    ``use_index``        — build an index (§6) or fall back to scans.
    ``index_kind``       — "prtree" (the paper's §6.1 structure) or
                           "grid" (the uniform-grid rival; probes only,
                           local skylines fall back to sorting).
    ``feedback_pruning`` — enable the Local-Pruning phase (ablation
                           switch; disabling it never affects the
                           answer, only bandwidth).
    ``max_entries``      — PR-tree node capacity.
    ``store_products``   — keep non-occurrence products in the tree
                           (the §6.3 probe optimization; ablation
                           switch).
    """

    use_index: bool = True
    index_kind: str = "prtree"
    feedback_pruning: bool = True
    max_entries: int = 16
    store_products: bool = True


@dataclass(frozen=True)
class ProbeReply:
    """Answer to a feedback/probe broadcast."""

    factor: float
    pruned: int
    queue_remaining: int


@dataclass
class _Candidate:
    tuple: UncertainTuple
    local_probability: float
    bound: float  # local probability × accumulated feedback factors


class LocalSite:
    """One participant S_i holding partition D_i."""

    def __init__(
        self,
        site_id: int,
        database: Sequence[UncertainTuple],
        preference: Optional[Preference] = None,
        config: Optional[SiteConfig] = None,
    ) -> None:
        self.site_id = site_id
        self.preference = preference
        self.config = config or SiteConfig()
        validate_database(list(database))  # unique keys, consistent d
        self.database: Dict[int, UncertainTuple] = {t.key: t for t in database}
        self.tree = None
        if self.config.use_index:
            if self.config.index_kind == "prtree":
                self.tree = PRTree.build(
                    database,
                    preference=preference,
                    max_entries=self.config.max_entries,
                    store_products=self.config.store_products,
                )
            elif self.config.index_kind == "grid":
                from ..index.grid import GridIndex

                self.tree = GridIndex.build(database, preference=preference)
            else:
                raise ValueError(
                    f"unknown index kind {self.config.index_kind!r}; "
                    f"expected 'prtree' or 'grid'"
                )
        self.threshold: Optional[float] = None
        self._queue: List[_Candidate] = []
        self._feedback: List[UncertainTuple] = []
        self._popped_keys: set = set()
        self.pruned_total = 0
        #: Replica of the global result set for §5.4 updates: key →
        #: (tuple, global skyline probability).  Replicating SKY(H) at
        #: every participant is what lets most updates resolve without
        #: touching the network.
        self.sky_h_replica: Dict[int, "tuple[UncertainTuple, float]"] = {}

    # ------------------------------------------------------------------
    # local computing phase
    # ------------------------------------------------------------------

    def prepare(self, threshold: float) -> int:
        """Compute and enqueue ``SKY(D_i)``; returns its size.

        Idempotent per threshold: calling again resets the queue and
        clears accumulated feedback, which is what a fresh query run
        needs.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
        self.threshold = threshold
        answer = self._local_skyline(threshold)
        self._queue = [
            _Candidate(tuple=m.tuple, local_probability=m.probability, bound=m.probability)
            for m in answer  # ProbabilisticSkyline iterates descending
        ]
        self._feedback = []
        self._popped_keys = set()
        self.pruned_total = 0
        return len(self._queue)

    def _local_skyline(self, threshold: float) -> ProbabilisticSkyline:
        if isinstance(self.tree, PRTree):
            return bbs_prob_skyline(self.tree, threshold)
        return prob_skyline_sfs(list(self.database.values()), threshold, self.preference)

    # ------------------------------------------------------------------
    # to-server phase
    # ------------------------------------------------------------------

    def pop_representative(self) -> Optional[Quaternion]:
        """Hand the most promising remaining candidate to the server.

        Candidates whose feedback-tightened bound has already fallen
        below the threshold are silently skipped (they were pruned
        lazily); ``None`` signals exhaustion.
        """
        self._require_prepared()
        while self._queue:
            cand = self._queue.pop(0)
            if cand.bound < self.threshold:
                self.pruned_total += 1
                continue
            self._popped_keys.add(cand.tuple.key)
            return Quaternion(
                site=self.site_id,
                tuple=cand.tuple,
                local_probability=cand.local_probability,
            )
        return None

    def queue_size(self) -> int:
        return len(self._queue)

    def ship_all(self) -> List[UncertainTuple]:
        """Surrender the whole partition (the §3.2 ship-all baseline)."""
        return list(self.database.values())

    def ship_local_skyline(self, threshold: float) -> List[Quaternion]:
        """Surrender the entire qualified local skyline in one burst.

        The §5.1 'important improvement' strawman: compute ``SKY(D_i)``
        and transmit all of it, ordered by descending local skyline
        probability.
        """
        answer = self._local_skyline(threshold)
        return [
            Quaternion(site=self.site_id, tuple=m.tuple, local_probability=m.probability)
            for m in answer
        ]

    # ------------------------------------------------------------------
    # server-delivery + local-pruning phases
    # ------------------------------------------------------------------

    def probe(self, t: UncertainTuple) -> float:
        """Eq. 9: the exact factor this site contributes for foreign ``t``."""
        if self.tree is not None:
            return self.tree.dominators_product(t)
        product = 1.0
        for other in self.database.values():
            if other.key != t.key and dominates(other, t, self.preference):
                product *= 1.0 - other.probability
        return product

    def apply_feedback(self, t: UncertainTuple) -> int:
        """Local-Pruning phase: expunge candidates the feedback disqualifies.

        Tightens every queued candidate dominated by ``t`` with the
        factor ``(1 − P(t))`` and drops those whose bound sinks below
        ``q``.  Returns the number dropped.  With pruning disabled the
        feedback is recorded (for update maintenance) but nothing is
        dropped.
        """
        self._require_prepared()
        self._feedback.append(t)
        if not self.config.feedback_pruning:
            return 0
        survivors: List[_Candidate] = []
        pruned = 0
        for cand in self._queue:
            if dominates(t, cand.tuple, self.preference):
                cand.bound *= 1.0 - t.probability
                if cand.bound < self.threshold:
                    pruned += 1
                    continue
            survivors.append(cand)
        self._queue = survivors
        self.pruned_total += pruned
        return pruned

    def probe_and_prune(self, t: UncertainTuple) -> ProbeReply:
        """The combined Server-Delivery message handler."""
        factor = self.probe(t)
        pruned = self.apply_feedback(t)
        return ProbeReply(factor=factor, pruned=pruned, queue_remaining=len(self._queue))

    # ------------------------------------------------------------------
    # §5.4 update maintenance hooks
    # ------------------------------------------------------------------

    def contains(self, key: int) -> bool:
        return key in self.database

    def insert_tuple(self, t: UncertainTuple) -> None:
        """Add ``t`` to ``D_i`` (index included); candidacy is handled
        by the maintenance protocol, not here."""
        if t.key in self.database:
            raise ValueError(f"tuple {t.key} already stored at site {self.site_id}")
        self.database[t.key] = t
        if self.tree is not None:
            self.tree.add(t)

    def delete_tuple(self, key: int) -> UncertainTuple:
        """Remove the tuple with ``key`` from ``D_i`` (index included)."""
        t = self.database.pop(key, None)
        if t is None:
            raise KeyError(f"tuple {key} not stored at site {self.site_id}")
        if self.tree is not None:
            self.tree.remove(t)
        self._queue = [c for c in self._queue if c.tuple.key != key]
        return t

    def local_skyline_probability(self, t: UncertainTuple, floor: float = 0.0) -> float:
        """Eq. 3 for a tuple of this site (includes its own P(t)).

        With a nonzero ``floor`` the value is exact whenever it is ≥
        ``floor`` and otherwise merely guaranteed below it — the usual
        threshold-test contract.
        """
        if t.probability <= 0.0:
            return 0.0
        inner_floor = floor / t.probability if floor > 0.0 else 0.0
        if self.tree is not None:
            return t.probability * self.tree.dominators_product(t, floor=inner_floor)
        return skyline_probability(
            t, self.database.values(), self.preference, floor=floor
        )

    def dominated_local_candidates(
        self,
        t: UncertainTuple,
        threshold: float,
        pruners: Optional[List[UncertainTuple]] = None,
    ) -> List["tuple[UncertainTuple, float]"]:
        """Local tuples dominated by ``t`` whose local probability reaches ``q``.

        The §5.4 delete path needs exactly these: when a dominating
        tuple disappears somewhere, only locally-qualified tuples it
        dominated can newly qualify globally.  Returns ``(tuple,
        local_probability)`` pairs.

        ``pruners`` (typically the current SKY(H) replica contents)
        cheapen the scan enormously: any tuple whose existential
        probability, multiplied by the non-occurrence of the pruners
        dominating it, already misses ``q`` can be skipped before the
        exact (and comparatively expensive) index probe — each pruner
        is a real stored tuple somewhere, so the product is a sound
        upper bound on the global probability.  On uniform data a
        random deleted tuple dominates ``N/2^d`` others; without the
        precheck every one of them would be probed.
        """
        out = []
        for s in self.database.values():
            if s.key == t.key or s.probability < threshold:
                continue
            if not dominates(t, s, self.preference):
                continue
            if pruners is not None:
                bound = s.probability
                for f in pruners:
                    if f.key != s.key and dominates(f, s, self.preference):
                        bound *= 1.0 - f.probability
                        if bound < threshold:
                            break
                if bound < threshold:
                    continue
            p = self.local_skyline_probability(s, floor=threshold)
            if p >= threshold:
                out.append((s, p))
        return out

    def set_replica(self, entries: Dict[int, "tuple[UncertainTuple, float]"]) -> None:
        """Install the coordinator's SKY(H) replica (§5.4 bootstrap)."""
        self.sky_h_replica = dict(entries)

    def replica_dominators(self, t: UncertainTuple) -> List[UncertainTuple]:
        """Replicated global results dominating ``t`` (§5.4 insert check)."""
        return [
            other
            for other, _prob in self.sky_h_replica.values()
            if other.key != t.key and dominates(other, t, self.preference)
        ]

    def _require_prepared(self) -> None:
        if self.threshold is None:
            raise RuntimeError(
                f"site {self.site_id} used before prepare(); call prepare(q) first"
            )

"""The local-site runtime (§4's participant S_i, §6's implementation).

A :class:`LocalSite` owns one horizontal partition ``D_i`` of the
global uncertain database and implements every per-site obligation of
the DSUD/e-DSUD protocol:

* **Local computing phase** — compute the qualified local skyline
  ``SKY(D_i) = { t : P_sky(t, D_i) ≥ q }`` (BBS over the PR-tree, §6.2,
  or the sort-based fallback) and keep it sorted by descending local
  skyline probability as the *candidate queue*.
* **To-Server phase** — surrender the queue head as a
  :class:`~repro.net.message.Quaternion` on request.
* **Server-Delivery phase** — answer a probe for a foreign tuple ``t``
  with the factor ``P_sky(t, D_i) = ∏_{t'∈D_i, t'≺t}(1 − P(t'))``
  (Eq. 9) through the §6.3 window query, one tuple at a time or as a
  batch (:meth:`probe_and_prune_batch`) when the coordinator ships
  several feedback quaternions per round.
* **Local-Pruning phase** — fold each received feedback tuple into the
  pruning set and expunge queue candidates whose global-probability
  upper bound ``P_sky(s, D_i) × ∏_{f ≺ s}(1 − P(f))`` sinks below the
  threshold.  Pruned tuples stay in ``D_i`` (they still dominate) —
  only their candidacy dies.
* **§5.4 maintenance** — apply inserts/deletes to the PR-tree, the
  candidate queue, and the replicated copy of ``SKY(H)``.

Hot paths run on the columnar kernels of :mod:`repro.core.kernels` by
default: the candidate queue is kept as a small column store (values
matrix + bound vector + alive mask), so one feedback broadcast tightens
*every* candidate's bound in a single masked multiply, and un-indexed
probes and local skylines use the vectorized Eq. 9 / SFS kernels.
``SiteConfig.vectorized=False`` selects the scalar reference path —
same queue discipline, same accounting, pure-Python arithmetic — which
the exactness tests diff against the kernels.

Sites never talk to each other; everything flows through the
coordinator, exactly as in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..core.dominance import Preference, dominates
from ..core.kernels import ColumnStore, _project_matrix
from ..core.kernels import prob_skyline_sfs as columnar_prob_skyline_sfs
from ..core.partition_index import PartitionIndex
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember, prob_skyline_sfs
from ..core.probability import (
    feedback_pruning_bound,
    foreign_skyline_probability,
    skyline_probability,
)
from ..core.tuples import UncertainTuple, validate_database
from ..index.bbs import bbs_prob_skyline
from ..index.prtree import PRTree
from ..net.message import Quaternion

if TYPE_CHECKING:
    from .workers import TableWorkerPool

__all__ = ["SiteConfig", "ProbeReply", "BatchProbeReply", "LocalSite"]


@dataclass(frozen=True)
class SiteConfig:
    """Per-site execution knobs.

    ``use_index``        — build an index (§6) or fall back to scans.
    ``index_kind``       — "prtree" (the paper's §6.1 structure) or
                           "grid" (the uniform-grid rival; probes only,
                           local skylines fall back to sorting).
    ``feedback_pruning`` — enable the Local-Pruning phase (ablation
                           switch; disabling it never affects the
                           answer, only bandwidth).
    ``max_entries``      — PR-tree node capacity.
    ``store_products``   — keep non-occurrence products in the tree
                           (the §6.3 probe optimization; ablation
                           switch).
    ``vectorized``       — run the un-indexed probe/skyline kernels and
                           the Local-Pruning scan on the columnar numpy
                           layer (:mod:`repro.core.kernels`).  False
                           selects the scalar reference path, which the
                           exactness suite diffs against the kernels.
    ``all_probs_table``  — precompute the full P_sky table with the
                           output-sensitive partition index
                           (:mod:`repro.core.partition_index`).  Local
                           skylines become a table filter, probes and
                           §5.4 maintenance read/invalidate cells, and
                           :meth:`LocalSite.fork` shares the table
                           zero-copy.  Supersedes the PR-tree (no tree
                           is built).  Off by default: the table's
                           cell-aggregated products match the flat
                           kernels to ~1e-12, not bit-for-bit, so the
                           historical paths stay byte-stable unless a
                           deployment opts in.
    ``table_occupancy``  — target rows per grid cell for the table
                           build (``None`` = kernel default).
    """

    use_index: bool = True
    index_kind: str = "prtree"
    feedback_pruning: bool = True
    max_entries: int = 16
    store_products: bool = True
    vectorized: bool = True
    all_probs_table: bool = False
    table_occupancy: Optional[int] = None


@dataclass(frozen=True)
class ProbeReply:
    """Answer to a feedback/probe broadcast."""

    factor: float
    pruned: int
    queue_remaining: int


@dataclass(frozen=True)
class BatchProbeReply:
    """Answer to a batched feedback broadcast: one factor per probe tuple.

    ``factors`` aligns with the request order; ``pruned`` totals the
    Local-Pruning drops across the whole batch.
    """

    factors: List[float]
    pruned: int
    queue_remaining: int


@dataclass
class _Candidate:
    tuple: UncertainTuple
    local_probability: float
    bound: float  # local probability × accumulated feedback factors


class LocalSite:
    """One participant S_i holding partition D_i."""

    def __init__(
        self,
        site_id: int,
        database: Sequence[UncertainTuple],
        preference: Optional[Preference] = None,
        config: Optional[SiteConfig] = None,
    ) -> None:
        self.site_id = site_id
        self.preference = preference
        self.config = config or SiteConfig()
        validate_database(list(database))  # unique keys, consistent d
        self.database: Dict[int, UncertainTuple] = {t.key: t for t in database}
        self.tree = None
        #: Shared box holding the all-probabilities partition index.
        #: A dict (not a bare attribute) for the same reason as
        #: ``_skyline_cache``: :meth:`fork` shares it by reference, so
        #: a template's lazily-built table — and every §5.4 cell
        #: invalidation applied to it — is observed by all forks.
        self._table_box: Dict[str, PartitionIndex] = {}
        if self.config.use_index and not self.config.all_probs_table:
            if self.config.index_kind == "prtree":
                self.tree = PRTree.build(
                    database,
                    preference=preference,
                    max_entries=self.config.max_entries,
                    store_products=self.config.store_products,
                )
            elif self.config.index_kind == "grid":
                from ..index.grid import GridIndex

                self.tree = GridIndex.build(database, preference=preference)
            else:
                raise ValueError(
                    f"unknown index kind {self.config.index_kind!r}; "
                    f"expected 'prtree' or 'grid'"
                )
        self.threshold: Optional[float] = None
        self._popped_keys: set = set()
        self.pruned_total = 0
        # The candidate queue: parallel to ``_cands`` run a cursor
        # (``_q_head``), an alive mask, a bound vector, and — on the
        # vectorized path — the candidates' min-space coordinate matrix.
        # Front-pops advance the cursor in O(1); feedback pruning flips
        # alive bits instead of rebuilding lists.
        self._cands: List[_Candidate] = []
        self._q_head = 0
        self._q_alive = np.zeros(0, dtype=bool)
        self._q_bounds = np.zeros(0, dtype=np.float64)
        self._q_values: Optional[np.ndarray] = None
        # Columnar view of the whole partition for un-indexed probes;
        # rebuilt lazily after §5.4 updates.
        self._columns: Optional[ColumnStore] = None
        self._feedback: List[UncertainTuple] = []
        #: Replica of the global result set for §5.4 updates: key →
        #: (tuple, global skyline probability).  Replicating SKY(H) at
        #: every participant is what lets most updates resolve without
        #: touching the network.
        self.sky_h_replica: Dict[int, "tuple[UncertainTuple, float]"] = {}
        #: Optional shared ``threshold → ProbabilisticSkyline`` cache.
        #: ``None`` (the solo default) recomputes on every ``prepare``
        #: — bit-identical to the historical behaviour.  The serving
        #: layer installs one dict on a template site and every
        #: :meth:`fork` shares it, so repeated ``prepare(q)`` across
        #: sessions costs one local-skyline computation per distinct
        #: threshold.  §5.4 updates clear it (in place, so every fork
        #: sees the invalidation).
        self._skyline_cache: Optional[Dict[float, ProbabilisticSkyline]] = None

    # ------------------------------------------------------------------
    # local computing phase
    # ------------------------------------------------------------------

    def prepare(self, threshold: float) -> int:
        """Compute and enqueue ``SKY(D_i)``; returns its size.

        Idempotent per threshold: calling again resets the queue and
        clears accumulated feedback, which is what a fresh query run
        needs.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
        self.threshold = threshold
        answer = self._local_skyline(threshold)
        self._cands = [
            _Candidate(tuple=m.tuple, local_probability=m.probability, bound=m.probability)
            for m in answer  # ProbabilisticSkyline iterates descending
        ]
        k = len(self._cands)
        self._q_head = 0
        self._q_alive = np.ones(k, dtype=bool)
        self._q_bounds = np.array(
            [c.local_probability for c in self._cands], dtype=np.float64
        )
        if self.config.vectorized and k:
            store = ColumnStore.from_tuples(
                [c.tuple for c in self._cands], self.preference
            )
            self._q_values = store.values
        else:
            self._q_values = None
        self._feedback = []
        self._popped_keys = set()
        self.pruned_total = 0
        return k

    def _local_skyline(self, threshold: float) -> ProbabilisticSkyline:
        cache = self._skyline_cache
        if cache is not None:
            hit = cache.get(threshold)
            if hit is not None:
                return hit
        if self.config.all_probs_table:
            answer = self._table_skyline(threshold)
        elif isinstance(self.tree, PRTree):
            answer = bbs_prob_skyline(self.tree, threshold)
        elif self.config.vectorized:
            answer = columnar_prob_skyline_sfs(
                list(self.database.values()), threshold, self.preference
            )
        else:
            answer = prob_skyline_sfs(
                list(self.database.values()), threshold, self.preference
            )
        if cache is not None:
            cache[threshold] = answer
        return answer

    # ------------------------------------------------------------------
    # the all-probabilities table (output-sensitive kernel)
    # ------------------------------------------------------------------

    def _table_point(self, t: UncertainTuple) -> np.ndarray:
        """One tuple's canonical min-space coordinates for table probes."""
        return _project_matrix(
            np.asarray(t.values, dtype=np.float64).reshape(1, -1), self.preference
        )[0]

    def _ensure_table(self) -> PartitionIndex:
        """The shared partition index, building it inline if absent."""
        index = self._table_box.get("index")
        if index is None:
            index = PartitionIndex.build(
                self._partition_columns(), occupancy=self.config.table_occupancy
            )
            self._table_box["index"] = index
        return index

    def build_all_probs_table(self, pool: Optional["TableWorkerPool"] = None) -> PartitionIndex:
        """Precompute the full P_sky table (idempotent; returns the index).

        Without a pool the build runs inline.  With a
        :class:`~repro.distributed.workers.TableWorkerPool` the
        expensive product pass runs in a worker process and only the
        result arrays come back — bit-identical to the inline build,
        verified by the payload's grid-parameter check.
        """
        index = self._table_box.get("index")
        if index is None:
            store = self._partition_columns()
            if pool is not None:
                payload = pool.build_payload(
                    store, occupancy=self.config.table_occupancy
                )
                index = PartitionIndex.from_payload(store, payload)
            else:
                index = PartitionIndex.build(
                    store, occupancy=self.config.table_occupancy
                )
                index.refresh()
            self._table_box["index"] = index
        else:
            index.refresh()
        return index

    async def build_all_probs_table_async(self, pool: "TableWorkerPool") -> PartitionIndex:
        """Worker-process table build that never blocks the event loop.

        The serving layer's prewarm path: the asyncio loop stays free
        to multiplex other sessions while a real core burns on the
        product pass.
        """
        index = self._table_box.get("index")
        if index is None:
            store = self._partition_columns()
            payload = await pool.build_payload_async(
                store, occupancy=self.config.table_occupancy
            )
            index = PartitionIndex.from_payload(store, payload)
            self._table_box["index"] = index
        return index

    def _table_skyline(self, threshold: float) -> ProbabilisticSkyline:
        """``SKY(D_i)`` as a table filter: one vector compare + gather."""
        index = self._ensure_table()
        psky = index.p_sky()
        rows = np.nonzero(index.alive & (psky >= threshold))[0]
        members = [
            SkylineMember(self.database[int(index.keys[r])], float(psky[r]))
            for r in rows
        ]
        return ProbabilisticSkyline(threshold, members)

    def enable_skyline_cache(self) -> None:
        """Memoize ``prepare``'s local skyline per threshold.

        Meant for standing sites serving many queries; forks created
        afterwards share the cache, so one computation serves every
        session at the same threshold.
        """
        if self._skyline_cache is None:
            self._skyline_cache = {}

    def fork(self) -> "LocalSite":
        """A per-session view over this site's partition.

        The fork shares everything a query only *reads* — the database
        dict, the PR-tree/grid index, the columnar partition view, and
        the skyline cache — and owns everything a query *mutates*: the
        candidate queue (cursor, alive mask, bounds, values), feedback
        history, and pop/prune accounting.  Two forks therefore run
        concurrent queries over one stored partition without observing
        each other, and each is bit-identical to a fresh
        :class:`LocalSite` over the same data.  Forks are for serving
        reads: §5.4 updates must go to the template site, never a fork.
        """
        clone = object.__new__(LocalSite)
        clone.site_id = self.site_id
        clone.preference = self.preference
        clone.config = self.config
        clone.database = self.database
        clone.tree = self.tree
        clone.threshold = None
        clone._popped_keys = set()
        clone.pruned_total = 0
        clone._cands = []
        clone._q_head = 0
        clone._q_alive = np.zeros(0, dtype=bool)
        clone._q_bounds = np.zeros(0, dtype=np.float64)
        clone._q_values = None
        clone._columns = self._columns
        clone._table_box = self._table_box
        clone._feedback = []
        clone.sky_h_replica = {}
        clone._skyline_cache = self._skyline_cache
        return clone

    # ------------------------------------------------------------------
    # to-server phase
    # ------------------------------------------------------------------

    @property
    def _queue(self) -> List[_Candidate]:
        """The live candidates, in queue order, with current bounds.

        A materialised read-only view — synopsis building and tests
        iterate it; the mutable state lives in the cursor/mask/bound
        arrays.
        """
        return [
            _Candidate(
                tuple=self._cands[i].tuple,
                local_probability=self._cands[i].local_probability,
                bound=float(self._q_bounds[i]),
            )
            for i in range(self._q_head, len(self._cands))
            if self._q_alive[i]
        ]

    def pop_representative(self) -> Optional[Quaternion]:
        """Hand the most promising remaining candidate to the server.

        Candidates whose feedback-tightened bound has already fallen
        below the threshold are silently skipped (they were pruned
        lazily); ``None`` signals exhaustion.
        """
        self._require_prepared()
        while self._q_head < len(self._cands):
            idx = self._q_head
            self._q_head += 1
            if not self._q_alive[idx]:
                continue  # pruned or deleted earlier; already accounted
            self._q_alive[idx] = False  # consumed either way
            cand = self._cands[idx]
            if float(self._q_bounds[idx]) < self.threshold:
                self.pruned_total += 1
                continue
            self._popped_keys.add(cand.tuple.key)
            return Quaternion(
                site=self.site_id,
                tuple=cand.tuple,
                local_probability=cand.local_probability,
            )
        return None

    def queue_size(self) -> int:
        return int(self._q_alive.sum())

    def fast_forward(self, keys: Sequence[int]) -> int:
        """Mark candidates as already delivered (failover catch-up).

        After a failover the promoted replica re-runs ``prepare`` and
        holds a fresh, deterministic copy of the failed twin's queue;
        the coordinator then replays *which* representatives were
        already surrendered so the replacement never re-serves them.
        Marked candidates count as consumed, not pruned.  Returns the
        number skipped.
        """
        self._require_prepared()
        wanted = set(keys)
        skipped = 0
        for idx in range(self._q_head, len(self._cands)):
            if self._q_alive[idx] and self._cands[idx].tuple.key in wanted:
                self._q_alive[idx] = False
                self._popped_keys.add(self._cands[idx].tuple.key)
                skipped += 1
        return skipped

    def ship_all(self) -> List[UncertainTuple]:
        """Surrender the whole partition (the §3.2 ship-all baseline)."""
        return list(self.database.values())

    def partition_digest(self) -> str:
        """A deterministic fingerprint of ``D_i`` for anti-entropy checks.

        Computed site-side; only the hex digest travels the wire, so a
        digest exchange costs zero tuples under the §3.2 metric.
        """
        h = hashlib.sha256()
        for key in sorted(self.database):
            t = self.database[key]
            h.update(repr((t.key, t.values, t.probability)).encode("utf-8"))
        return h.hexdigest()

    def ship_local_skyline(self, threshold: float) -> List[Quaternion]:
        """Surrender the entire qualified local skyline in one burst.

        The §5.1 'important improvement' strawman: compute ``SKY(D_i)``
        and transmit all of it, ordered by descending local skyline
        probability.
        """
        answer = self._local_skyline(threshold)
        return [
            Quaternion(site=self.site_id, tuple=m.tuple, local_probability=m.probability)
            for m in answer
        ]

    # ------------------------------------------------------------------
    # server-delivery + local-pruning phases
    # ------------------------------------------------------------------

    def _partition_columns(self) -> ColumnStore:
        if self._columns is None:
            self._columns = ColumnStore.from_tuples(
                list(self.database.values()), self.preference
            )
        return self._columns

    def probe(self, t: UncertainTuple) -> float:
        """Eq. 9: the exact factor this site contributes for foreign ``t``."""
        if self.config.all_probs_table:
            return float(
                self._ensure_table().dominator_product(
                    self._table_point(t), exclude_key=t.key
                )
            )
        if self.tree is not None:
            return self.tree.dominators_product(t)
        if self.config.vectorized:
            store = self._partition_columns()
            return store.dominator_product(
                store.project_point(t, self.preference), exclude_key=t.key
            )
        return foreign_skyline_probability(t, self.database.values(), self.preference)

    def probe_batch(self, ts: Sequence[UncertainTuple]) -> List[float]:
        """Eq. 9 for many foreign tuples at once (one kernel dispatch)."""
        ts = list(ts)
        if self.config.all_probs_table and ts:
            index = self._ensure_table()
            points = np.stack([self._table_point(t) for t in ts])
            factors = index.dominator_products(
                points, exclude_keys=[t.key for t in ts]
            )
            return [float(f) for f in factors]
        if self.tree is not None:
            batch = getattr(self.tree, "dominators_products", None)
            if batch is not None:
                return [float(f) for f in batch(ts)]
            return [self.tree.dominators_product(t) for t in ts]
        if self.config.vectorized and ts:
            store = self._partition_columns()
            points = np.stack(
                [store.project_point(t, self.preference) for t in ts]
            )
            factors = store.dominator_products(
                points, exclude_keys=[t.key for t in ts]
            )
            return [float(f) for f in factors]
        return [self.probe(t) for t in ts]

    def apply_feedback(self, t: UncertainTuple) -> int:
        """Local-Pruning phase: expunge candidates the feedback disqualifies.

        Tightens every queued candidate dominated by ``t`` with the
        factor ``(1 − P(t))`` and drops those whose bound sinks below
        ``q``.  Returns the number dropped.  On the vectorized path the
        whole queue tightens in one masked multiply; the scalar path
        walks it candidate by candidate.  With pruning disabled the
        feedback is recorded (for update maintenance) but nothing is
        dropped.
        """
        self._require_prepared()
        self._feedback.append(t)
        if not self.config.feedback_pruning:
            return 0
        if not self._q_alive.any():
            return 0
        if self.config.vectorized and self._q_values is not None:
            return self._apply_feedback_columnar(t)
        pruned = 0
        factor = 1.0 - t.probability
        for idx in range(self._q_head, len(self._cands)):
            if not self._q_alive[idx]:
                continue
            if dominates(t, self._cands[idx].tuple, self.preference):
                self._q_bounds[idx] *= factor
                if float(self._q_bounds[idx]) < self.threshold:
                    self._q_alive[idx] = False
                    pruned += 1
        self.pruned_total += pruned
        return pruned

    def _apply_feedback_columnar(self, t: UncertainTuple) -> int:
        """One broadcast → one masked multiply over the candidate columns."""
        point = np.asarray(t.values, dtype=np.float64).reshape(1, -1)
        if self.preference is not None:
            from ..core.kernels import _project_matrix

            point = _project_matrix(point, self.preference)
        point = point[0]
        dominated = (
            self._q_alive
            & (self._q_values >= point).all(axis=1)
            & (self._q_values > point).any(axis=1)
        )
        if not dominated.any():
            return 0
        self._q_bounds[dominated] *= 1.0 - t.probability
        dead = dominated & (self._q_bounds < self.threshold)
        pruned = int(dead.sum())
        if pruned:
            self._q_alive[dead] = False
            self.pruned_total += pruned
        return pruned

    def probe_and_prune(self, t: UncertainTuple) -> ProbeReply:
        """The combined Server-Delivery message handler."""
        factor = self.probe(t)
        pruned = self.apply_feedback(t)
        return ProbeReply(
            factor=factor, pruned=pruned, queue_remaining=self.queue_size()
        )

    def probe_and_prune_batch(self, ts: Sequence[UncertainTuple]) -> BatchProbeReply:
        """Batched Server-Delivery: k feedback tuples in, k factors out.

        Factors are Eq. 9 against the stored partition, which feedback
        never mutates — so probing everything first and pruning after is
        exactly equivalent to k sequential :meth:`probe_and_prune`
        calls.
        """
        ts = list(ts)
        factors = self.probe_batch(ts)
        pruned = 0
        for t in ts:
            pruned += self.apply_feedback(t)
        return BatchProbeReply(
            factors=factors, pruned=pruned, queue_remaining=self.queue_size()
        )

    # ------------------------------------------------------------------
    # §5.4 update maintenance hooks
    # ------------------------------------------------------------------

    def contains(self, key: int) -> bool:
        return key in self.database

    def insert_tuple(self, t: UncertainTuple) -> None:
        """Add ``t`` to ``D_i`` (index included); candidacy is handled
        by the maintenance protocol, not here."""
        if t.key in self.database:
            raise ValueError(f"tuple {t.key} already stored at site {self.site_id}")
        self.database[t.key] = t
        self._columns = None
        if self._skyline_cache is not None:
            self._skyline_cache.clear()
        index = self._table_box.get("index")
        if index is not None:
            if len(index) == 0 or index.dimensionality != len(t.values):
                # Degenerate geometry (table built over an empty or
                # mismatched partition): drop it and rebuild lazily.
                self._table_box.pop("index", None)
            else:
                index.apply_insert(self._table_point(t), t.probability, t.key)
        if self.tree is not None:
            self.tree.add(t)

    def delete_tuple(self, key: int) -> UncertainTuple:
        """Remove the tuple with ``key`` from ``D_i`` (index included)."""
        t = self.database.pop(key, None)
        if t is None:
            raise KeyError(f"tuple {key} not stored at site {self.site_id}")
        self._columns = None
        if self._skyline_cache is not None:
            self._skyline_cache.clear()
        index = self._table_box.get("index")
        if index is not None:
            index.apply_delete(key)
        if self.tree is not None:
            self.tree.remove(t)
        for idx in range(self._q_head, len(self._cands)):
            if self._q_alive[idx] and self._cands[idx].tuple.key == key:
                self._q_alive[idx] = False
        return t

    def local_skyline_probability(self, t: UncertainTuple, floor: float = 0.0) -> float:
        """Eq. 3 for a tuple of this site (includes its own P(t)).

        With a nonzero ``floor`` the value is exact whenever it is ≥
        ``floor`` and otherwise merely guaranteed below it — the usual
        threshold-test contract.
        """
        if t.probability <= 0.0:
            return 0.0
        inner_floor = floor / t.probability if floor > 0.0 else 0.0
        if self.config.all_probs_table:
            return t.probability * float(
                self._ensure_table().dominator_product(
                    self._table_point(t), exclude_key=t.key
                )
            )
        if self.tree is not None:
            return t.probability * self.tree.dominators_product(t, floor=inner_floor)
        if self.config.vectorized:
            store = self._partition_columns()
            return t.probability * store.dominator_product(
                store.project_point(t, self.preference),
                exclude_key=t.key,
                floor=inner_floor,
            )
        return skyline_probability(
            t, self.database.values(), self.preference, floor=floor
        )

    def dominated_local_candidates(
        self,
        t: UncertainTuple,
        threshold: float,
        pruners: Optional[List[UncertainTuple]] = None,
    ) -> List["tuple[UncertainTuple, float]"]:
        """Local tuples dominated by ``t`` whose local probability reaches ``q``.

        The §5.4 delete path needs exactly these: when a dominating
        tuple disappears somewhere, only locally-qualified tuples it
        dominated can newly qualify globally.  Returns ``(tuple,
        local_probability)`` pairs.

        ``pruners`` (typically the current SKY(H) replica contents)
        cheapen the scan enormously: any tuple whose existential
        probability, multiplied by the non-occurrence of the pruners
        dominating it, already misses ``q`` can be skipped before the
        exact (and comparatively expensive) index probe — each pruner
        is a real stored tuple somewhere, so the product is a sound
        upper bound on the global probability.  On uniform data a
        random deleted tuple dominates ``N/2^d`` others; without the
        precheck every one of them would be probed.
        """
        out = []
        for s in self.database.values():
            if s.key == t.key or s.probability < threshold:
                continue
            if not dominates(t, s, self.preference):
                continue
            if pruners is not None:
                bound = feedback_pruning_bound(
                    s.probability,
                    (
                        f
                        for f in pruners
                        if f.key != s.key and dominates(f, s, self.preference)
                    ),
                    floor=threshold,
                )
                if bound < threshold:
                    continue
            p = self.local_skyline_probability(s, floor=threshold)
            if p >= threshold:
                out.append((s, p))
        return out

    def set_replica(self, entries: Dict[int, "tuple[UncertainTuple, float]"]) -> None:
        """Install the coordinator's SKY(H) replica (§5.4 bootstrap)."""
        self.sky_h_replica = dict(entries)

    def replica_dominators(self, t: UncertainTuple) -> List[UncertainTuple]:
        """Replicated global results dominating ``t`` (§5.4 insert check)."""
        return [
            other
            for other, _prob in self.sky_h_replica.values()
            if other.key != t.key and dominates(other, t, self.preference)
        ]

    def _require_prepared(self) -> None:
        if self.threshold is None:
            raise RuntimeError(
                f"site {self.site_id} used before prepare(); call prepare(q) first"
            )

"""Per-site worker processes for all-probabilities table builds.

A standing site that flips ``SiteConfig.all_probs_table`` on still has
to *build* the table once per partition — seconds of pure numpy at
n=10⁵..10⁶.  Doing that on the serving thread stalls the asyncio loop
(every other session's RPCs wait); doing it on a thread shares the
single GIL-free numpy window with the serving kernels.  This module
runs the build in a separate **process** and ships only the result
arrays back.

Process discipline (enforced by skylint SKY501/SKY503):

* Nothing mutable crosses the boundary.  The parent serialises the
  partition to plain contiguous arrays (:func:`TableWorkerPool.build_payload`),
  the child rebuilds a private :class:`~repro.core.kernels.ColumnStore`
  + :class:`~repro.core.partition_index.PartitionIndex` from them, and
  returns :meth:`~repro.core.partition_index.PartitionIndex.to_payload`
  — plain arrays again.  The worker function is a module-level pure
  function; it never touches shared state, so fork/spawn start methods
  behave identically.
* Async callers await :meth:`TableWorkerPool.build_payload_async`,
  which wraps the executor future with :func:`asyncio.wrap_future` —
  the event loop never blocks on a pool join.  Blocking calls
  (:meth:`TableWorkerPool.close`, the context-manager exit) are
  synchronous-only by construction.

Determinism: the child rebuilds the grid from the same ``(store,
occupancy, cells_per_dim)`` inputs the parent would use, and
:meth:`PartitionIndex.from_payload` verifies the returned grid
parameters match before adopting the products — a worker build is
bit-identical to an inline build.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional

import numpy as np

from ..core.kernels import ColumnStore
from ..core.partition_index import PartitionIndex

__all__ = ["TableWorkerPool", "build_table_payload"]


def build_table_payload(
    values: np.ndarray,
    probabilities: np.ndarray,
    keys: np.ndarray,
    occupancy: Optional[int],
    cells_per_dim: Optional[int],
) -> Dict[str, object]:
    """Build one partition's P_sky table; runs inside a worker process.

    Pure function of its (pickled) arguments: constructs a private
    store + index and returns the product table as plain arrays.  No
    state outlives the call.
    """
    store = ColumnStore.from_arrays(values, probabilities, keys=keys)
    index = PartitionIndex.build(
        store, occupancy=occupancy, cells_per_dim=cells_per_dim
    )
    return index.to_payload()


class TableWorkerPool:
    """A process pool dedicated to table builds.

    One pool serves any number of sites; builds queue up behind
    ``max_workers`` processes.  Use as a context manager, or call
    :meth:`close` from synchronous code when done — never from a
    coroutine (it joins the pool).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._executor = ProcessPoolExecutor(max_workers=max_workers)

    @staticmethod
    def _serialize(store: ColumnStore) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Explicitly copy the partition into plain picklable arrays.

        Memory-mapped or shared columns must not leak across the
        process boundary as live references; the copy is the
        serialization point.
        """
        return (
            np.ascontiguousarray(store.values),
            np.ascontiguousarray(store.probabilities),
            np.ascontiguousarray(store.keys),
        )

    def build_payload(
        self,
        store: ColumnStore,
        occupancy: Optional[int] = None,
        cells_per_dim: Optional[int] = None,
    ) -> Dict[str, object]:
        """Build a table in a worker and block for the result arrays."""
        values, probabilities, keys = self._serialize(store)
        future = self._executor.submit(
            build_table_payload, values, probabilities, keys, occupancy, cells_per_dim
        )
        return future.result()

    async def build_payload_async(
        self,
        store: ColumnStore,
        occupancy: Optional[int] = None,
        cells_per_dim: Optional[int] = None,
    ) -> Dict[str, object]:
        """Build a table in a worker without blocking the event loop."""
        values, probabilities, keys = self._serialize(store)
        future = self._executor.submit(
            build_table_payload, values, probabilities, keys, occupancy, cells_per_dim
        )
        result: Dict[str, object] = await asyncio.wrap_future(future)
        return result

    def close(self) -> None:
        """Join the pool (synchronous callers only)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "TableWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

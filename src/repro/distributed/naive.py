"""The §5.1 strawman: ship all local skylines, broadcast all of them.

The "important improvement" over ship-all that motivates DSUD: every
site computes its qualified local skyline ``SKY(D_i)`` and transmits
the whole set; the server then broadcasts every received candidate to
the other sites to resolve its exact global probability.  Bandwidth is

    Σ |SKY(D_i)|  +  Σ |SKY(D_i)| × (m − 1)

— the §4 cost analysis's ``N_local + N_back`` — because without
iteration there is no feedback pruning: nothing ever stops a site from
shipping candidates that the first broadcast would have disqualified.
Candidates are broadcast in descending local-probability order, so
this algorithm is progressive too, just wasteful.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..net.message import Message, MessageKind, Quaternion
from .coordinator import Coordinator, _Request, _Rpc

__all__ = ["NaiveLocalSkylines"]


class NaiveLocalSkylines(Coordinator):
    """Ship every local skyline, broadcast every candidate."""

    algorithm = "naive-local-skylines"

    def _steps(self) -> Generator[Optional[_Request], Any, None]:
        yield from self._prepare_sites_script()
        gathered: List[Quaternion] = []
        for site in self.sites:
            ok, burst = yield _Rpc(site, "ship_local_skyline", (self.threshold,))
            if not ok:
                continue
            for _ in burst:
                self.stats.record(
                    Message.bearing(
                        MessageKind.REPRESENTATIVE, self._name(site), "server", payload=None
                    )
                )
            self.stats.record_round(tuples_in_round=len(burst))
            gathered.extend(burst)
        gathered.sort(key=lambda q: -q.local_probability)
        for quaternion in gathered:
            self.iterations += 1
            global_probability = yield from self._broadcast_script(quaternion)
            self.emit(quaternion.tuple, global_probability)
            # Each candidate costs one broadcast round — a scheduling
            # point, so served naive sessions interleave per round
            # instead of monopolising the scheduler for the whole query.
            yield

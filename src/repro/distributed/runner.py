"""Run-result container and the shared reporting surface.

Every distributed algorithm in this package returns a
:class:`RunResult`: the qualified answer, the exact bandwidth books,
and the progressiveness timeline — everything Figs. 8–14 plot, from a
single run object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.prob_skyline import ProbabilisticSkyline
from ..fault.coverage import CoverageReport
from ..net.stats import NetworkStats, ProgressLog

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """The complete outcome of one distributed skyline run."""

    algorithm: str
    answer: ProbabilisticSkyline
    stats: NetworkStats
    progress: ProgressLog
    iterations: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Degraded-mode annotations: ``None`` only for legacy callers that
    #: build results by hand; coordinators always fill it in.  When
    #: ``coverage.complete`` the answer is exact; otherwise each
    #: affected tuple's probability is a Corollary-1 upper bound over
    #: the contributing sites listed in ``coverage.degraded``.  Under
    #: ``limit=`` the keys in ``coverage.buffered`` were qualified but
    #: held back unemitted — their rank could not be proven without the
    #: DOWN sites — and carry their bounds in ``coverage.degraded``.
    coverage: Optional[CoverageReport] = None

    @property
    def bandwidth(self) -> int:
        """Total tuples transmitted — the paper's headline metric."""
        return self.stats.tuples_transmitted

    @property
    def result_count(self) -> int:
        return len(self.answer)

    def ceiling(self, sites: int) -> int:
        """The unachievable optimum of Fig. 8's *Ceiling* line.

        Every qualified tuple must at minimum travel to the server once
        and be checked against the other ``m − 1`` sites, so no correct
        algorithm transmits fewer than ``|SKY(H)| × m`` tuples.
        """
        return self.result_count * sites

    def summary(self) -> str:
        line = (
            f"{self.algorithm}: |SKY(H)|={self.result_count} "
            f"bandwidth={self.bandwidth} tuples "
            f"(up={self.stats.tuples_to_server}, down={self.stats.tuples_from_server}) "
            f"rounds={self.stats.rounds} iterations={self.iterations}"
        )
        if self.coverage is not None and not self.coverage.complete:
            line += f"\n{self.coverage.describe()}"
        return line

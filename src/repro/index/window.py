"""Window-query helpers (§6.3) and their linear-scan references.

The probability probe itself lives on :class:`~repro.index.prtree.PRTree`
(:meth:`~repro.index.prtree.PRTree.dominators_product`); this module
adds the plain dominance-window search the paper describes — the box
between the space origin and the query tuple — plus index-free
reference implementations that the property tests compare the tree
against.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.dominance import Preference
from ..core.probability import non_occurrence_product
from ..core.tuples import UncertainTuple
from .geometry import Rect
from .prtree import PRTree, _point_dominates

__all__ = [
    "dominance_window",
    "window_tuples",
    "linear_dominators_product",
    "linear_dominators",
]


def dominance_window(tree: PRTree, target: UncertainTuple) -> Rect:
    """The §6.3 query window: origin-to-target box in min-space.

    The "origin" corner is the tree's own lower data bound (the paper
    assumes a non-negative domain; using the data bound generalises to
    preference-negated coordinates).  On an empty tree the degenerate
    box at the target is returned.
    """
    point = _project(tree, target)
    if tree.root.rect is None:
        return Rect.from_point(point)
    lower = tuple(min(lo, v) for lo, v in zip(tree.root.rect.lower, point))
    return Rect(lower, point)


def window_tuples(tree: PRTree, target: UncertainTuple) -> List[UncertainTuple]:
    """Stored tuples inside the dominance window that truly dominate ``target``.

    The rectangular window over-approximates the dominance region (it
    includes ties on every dimension), so each hit is re-checked with
    the exact dominance test — precisely the refinement step of the
    paper's Fig. 6 procedure.
    """
    point = _project(tree, target)
    window = dominance_window(tree, target)
    out = []
    for item in tree.search_window(window):
        if item.key != target.key and _point_dominates(item.values, point):
            out.append(item.payload)
    return out


def linear_dominators_product(
    database: Iterable[UncertainTuple],
    target: UncertainTuple,
    preference: Optional[Preference] = None,
) -> float:
    """Index-free reference for :meth:`PRTree.dominators_product`."""
    return non_occurrence_product(target, database, preference)


def linear_dominators(
    database: Iterable[UncertainTuple],
    target: UncertainTuple,
    preference: Optional[Preference] = None,
) -> List[UncertainTuple]:
    """Index-free reference for :func:`window_tuples`."""
    from ..core.dominance import dominates

    return [
        t for t in database if t.key != target.key and dominates(t, target, preference)
    ]


def _project(tree: PRTree, target: UncertainTuple):
    if tree.preference is not None:
        return tuple(tree.preference.project(target.values))
    return tuple(target.values)

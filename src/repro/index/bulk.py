"""Sort-Tile-Recursive (STR) bulk loading for the R-tree family.

Local sites index tens of thousands of tuples before the first query
runs, and one-at-a-time insertion is both slow and produces poorly
packed nodes.  STR packs near-full leaves tile by tile — sort on the
first dimension, slice into slabs, recurse on the next dimension inside
each slab — then packs each level of internal nodes the same way using
MBR centers, giving a tree with excellent query locality in ``O(n log
n)``.

The loader works *through* the tree instance's ``_refresh`` hook, so a
:class:`~repro.index.prtree.PRTree` bulk-loaded here gets its
probability aggregates for free, and the resulting structure satisfies
the exact invariants :meth:`RTree.check_invariants` verifies (every
chunking step distributes items evenly, so no node falls below the
minimum fill).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from .rtree import IndexedItem, Node, RTree

__all__ = ["str_bulk_load", "curve_bulk_load", "even_chunks"]


def even_chunks(items: List, n_chunks: int) -> List[List]:
    """Split ``items`` into ``n_chunks`` contiguous chunks of near-equal size.

    Sizes differ by at most one, so for ``n_chunks = ceil(n /
    capacity)`` every chunk holds at least ``capacity / 2`` items —
    which is what keeps bulk-loaded nodes above the R-tree minimum
    fill.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    n = len(items)
    base, extra = divmod(n, n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return [c for c in chunks if c]


def _str_partition(
    items: List,
    capacity: int,
    dim: int,
    dimensionality: int,
    sort_key: Callable,
) -> List[List]:
    """Recursively tile ``items`` into groups of at most ``capacity``."""
    n_groups = math.ceil(len(items) / capacity)
    if n_groups <= 1:
        return [items]
    items = sorted(items, key=lambda it: sort_key(it)[dim])
    if dim >= dimensionality - 1:
        return even_chunks(items, n_groups)
    dims_left = dimensionality - dim
    n_slabs = math.ceil(n_groups ** (1.0 / dims_left))
    groups: List[List] = []
    for slab in even_chunks(items, n_slabs):
        groups.extend(_str_partition(slab, capacity, dim + 1, dimensionality, sort_key))
    return groups


def _pack_levels(tree: RTree, leaf_groups: List[List[IndexedItem]], n_items: int,
                 dimensionality: int) -> RTree:
    """Build the tree bottom-up from pre-partitioned leaf runs."""
    capacity = tree.max_entries
    level: List[Node] = []
    for group in leaf_groups:
        node = Node(is_leaf=True)
        node.entries = list(group)
        tree._refresh(node)
        level.append(node)

    def node_center(node: Node):
        return tuple(
            (lo + up) / 2.0 for lo, up in zip(node.rect.lower, node.rect.upper)
        )

    while len(level) > 1:
        groups = _str_partition(
            level, capacity, 0, dimensionality, sort_key=node_center
        )
        parents: List[Node] = []
        for group in groups:
            node = Node(is_leaf=False)
            node.entries = list(group)
            tree._refresh(node)
            parents.append(node)
        level = parents

    tree.root = level[0]
    tree._size = n_items
    return tree


def str_bulk_load(tree: RTree, items: Sequence[IndexedItem]) -> RTree:
    """Populate an *empty* ``tree`` with ``items`` using STR packing.

    Mutates and returns ``tree``.  The tree instance supplies node
    capacity and the aggregate hooks; any :class:`RTree` subclass
    works.
    """
    if len(tree) != 0:
        raise ValueError("str_bulk_load requires an empty tree")
    items = list(items)
    if not items:
        return tree
    dimensionality = len(items[0].values)
    leaf_groups = _str_partition(
        items, tree.max_entries, 0, dimensionality, sort_key=lambda it: it.values
    )
    return _pack_levels(tree, leaf_groups, len(items), dimensionality)


def curve_bulk_load(
    tree: RTree,
    items: Sequence[IndexedItem],
    curve: str = "hilbert",
    bits: int = 10,
) -> RTree:
    """Populate an *empty* ``tree`` by space-filling-curve packing.

    Points are quantized onto a ``2^bits`` grid, sorted along the
    chosen curve (``"hilbert"`` or ``"morton"``), and cut into
    even-size leaf runs.  Hilbert ordering keeps runs spatially compact
    (consecutive cells are always adjacent), which is what gives this
    packer its query quality; Morton is cheaper to compute but jumps.
    See ``benchmarks/test_bulk_loading.py`` for the comparison against
    STR.
    """
    from .space_filling import hilbert_index, morton_index, quantize

    if len(tree) != 0:
        raise ValueError("curve_bulk_load requires an empty tree")
    if curve not in ("hilbert", "morton"):
        raise ValueError(f"unknown curve {curve!r}; expected hilbert or morton")
    items = list(items)
    if not items:
        return tree
    dimensionality = len(items[0].values)
    lower = tuple(
        min(it.values[j] for it in items) for j in range(dimensionality)
    )
    upper = tuple(
        max(it.values[j] for it in items) for j in range(dimensionality)
    )
    key_fn = hilbert_index if curve == "hilbert" else morton_index
    ordered = sorted(
        items, key=lambda it: key_fn(quantize(it.values, lower, upper, bits), bits)
    )
    n_leaves = math.ceil(len(ordered) / tree.max_entries)
    leaf_groups = even_chunks(ordered, n_leaves)
    return _pack_levels(tree, leaf_groups, len(items), dimensionality)

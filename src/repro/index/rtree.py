"""A Guttman R-tree with pluggable per-node aggregates.

This is the spatial substrate underneath the paper's Probabilistic
R-tree (§6.1): dynamic insertion with quadratic split, deletion with
subtree condensation and reinsertion, window search, and — the part
the PR-tree builds on — an *aggregate* computed for every node from
its children and kept consistent through every structural change.

The base tree's aggregate is a plain item count.  Subclasses override
:meth:`RTree._aggregate_items` / :meth:`RTree._aggregate_children`
to fold in whatever summary they need (the PR-tree adds the min/max
existential probabilities ``P1``/``P2`` and a non-occurrence product).
Aggregates are recomputed bottom-up along exactly the paths a mutation
touches, so they are always exact — :meth:`RTree.check_invariants`
re-derives everything from scratch and is run by the test suite after
randomized workloads.

Items are anything exposing ``.values`` (a point in canonical
min-space) and ``.key`` (unique id); the library uses
:class:`IndexedItem`, which also carries the existential probability
and the original :class:`~repro.core.tuples.UncertainTuple`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .geometry import Rect

__all__ = ["IndexedItem", "Node", "RTree", "NodeAggregate"]


@dataclass(frozen=True)
class IndexedItem:
    """A point entry stored in the tree.

    ``values`` are canonical min-space coordinates (preference already
    applied); ``payload`` keeps the original tuple so query answers can
    be mapped back without a side lookup.
    """

    key: int
    values: Tuple[float, ...]
    probability: float
    payload: Any = None

    def rect(self) -> Rect:
        return Rect.from_point(self.values)


@dataclass
class NodeAggregate:
    """The base aggregate: how many items live under a node."""

    count: int = 0


class Node:
    """One R-tree node; a leaf holds items, an internal node holds nodes."""

    __slots__ = ("is_leaf", "entries", "rect", "aggregate")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: List[Any] = []
        self.rect: Optional[Rect] = None
        self.aggregate: Any = None

    def entry_rect(self, entry: Any) -> Rect:
        return entry.rect() if self.is_leaf else entry.rect

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"<Node {kind} fanout={len(self.entries)} rect={self.rect}>"


class RTree:
    """Dynamic R-tree (Guttman, quadratic split) with exact aggregates."""

    def __init__(self, max_entries: int = 16, min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries * 2 // 5)
        if self.min_entries * 2 > self.max_entries:
            raise ValueError(
                f"min_entries={self.min_entries} too large for max_entries={max_entries}"
            )
        self.root = Node(is_leaf=True)
        self._refresh(self.root)
        self._size = 0

    # ------------------------------------------------------------------
    # aggregate hooks
    # ------------------------------------------------------------------

    def _aggregate_items(self, items: Sequence[IndexedItem]) -> Any:
        return NodeAggregate(count=len(items))

    def _aggregate_children(self, children: Sequence[Node]) -> Any:
        return NodeAggregate(count=sum(c.aggregate.count for c in children))

    def _refresh(self, node: Node) -> None:
        """Recompute ``rect`` and ``aggregate`` of ``node`` from its entries."""
        if node.entries:
            node.rect = Rect.union_of(node.entry_rect(e) for e in node.entries)
        else:
            node.rect = None
        if node.is_leaf:
            node.aggregate = self._aggregate_items(node.entries)
        else:
            node.aggregate = self._aggregate_children(node.entries)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels; 1 for a lone leaf root."""
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0]
            h += 1
        return h

    def items(self) -> Iterator[IndexedItem]:
        """Iterate every stored item (no particular order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.entries)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, item: IndexedItem) -> None:
        split = self._insert(self.root, item)
        if split is not None:
            old_root = self.root
            self.root = Node(is_leaf=False)
            self.root.entries = [old_root, split]
            self._refresh(self.root)
        self._size += 1

    def _insert(self, node: Node, item: IndexedItem) -> Optional[Node]:
        """Insert into the subtree; return a new sibling if ``node`` split."""
        if node.is_leaf:
            node.entries.append(item)
        else:
            child = self._choose_subtree(node, item.rect())
            split = self._insert(child, item)
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > self.max_entries:
            sibling = self._split(node)
            self._refresh(node)
            return sibling
        self._refresh(node)
        return None

    def _choose_subtree(self, node: Node, rect: Rect) -> Node:
        """Guttman's ChooseLeaf step: least enlargement, ties by least area."""
        best = None
        best_key = None
        for child in node.entries:
            enlargement = child.rect.enlargement(rect)
            key = (enlargement, child.rect.area())
            if best_key is None or key < best_key:
                best = child
                best_key = key
        return best

    def _split(self, node: Node) -> Node:
        """Quadratic split; mutates ``node`` in place and returns the sibling."""
        entries = node.entries
        rects = [node.entry_rect(e) for e in entries]
        seed_a, seed_b = self._pick_seeds(rects)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = rects[seed_a]
        rect_b = rects[seed_b]
        remaining = [i for i in range(len(entries)) if i not in (seed_a, seed_b)]
        while remaining:
            # Force-assign once a group must absorb everything left to
            # reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                for i in remaining:
                    group_a.append(entries[i])
                    rect_a = rect_a.union(rects[i])
                break
            if len(group_b) + len(remaining) == self.min_entries:
                for i in remaining:
                    group_b.append(entries[i])
                    rect_b = rect_b.union(rects[i])
                break
            idx, prefer_a = self._pick_next(rects, remaining, rect_a, rect_b)
            remaining.remove(idx)
            if prefer_a:
                group_a.append(entries[idx])
                rect_a = rect_a.union(rects[idx])
            else:
                group_b.append(entries[idx])
                rect_b = rect_b.union(rects[idx])
        node.entries = group_a
        sibling = Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        self._refresh(sibling)
        return sibling

    @staticmethod
    def _pick_seeds(rects: Sequence[Rect]) -> Tuple[int, int]:
        """The pair wasting the most area if grouped together."""
        best = (0, 1)
        best_waste = float("-inf")
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
                if waste > best_waste:
                    best_waste = waste
                    best = (i, j)
        return best

    @staticmethod
    def _pick_next(
        rects: Sequence[Rect], remaining: Sequence[int], rect_a: Rect, rect_b: Rect
    ) -> Tuple[int, bool]:
        """The entry with the strongest group preference, and that group."""
        best_idx = remaining[0]
        best_diff = -1.0
        best_prefer_a = True
        for i in remaining:
            grow_a = rect_a.enlargement(rects[i])
            grow_b = rect_b.enlargement(rects[i])
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best_diff = diff
                best_idx = i
                best_prefer_a = grow_a < grow_b or (
                    grow_a == grow_b and rect_a.area() <= rect_b.area()
                )
        return best_idx, best_prefer_a

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, key: int, values: Sequence[float]) -> bool:
        """Remove the item with ``key`` located at ``values``.

        Returns True if the item was found.  Underfull nodes along the
        path are dissolved and their items reinserted (Guttman's
        CondenseTree), after which the root is collapsed if it has a
        single internal child.
        """
        values = tuple(float(v) for v in values)
        orphans: List[IndexedItem] = []
        found = self._delete(self.root, key, values, orphans, is_root=True)
        if not found:
            return False
        self._size -= 1
        if not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0]
        if not self.root.entries and not self.root.is_leaf:
            self.root = Node(is_leaf=True)
            self._refresh(self.root)
        for item in orphans:
            split = self._insert(self.root, item)
            if split is not None:
                old_root = self.root
                self.root = Node(is_leaf=False)
                self.root.entries = [old_root, split]
                self._refresh(self.root)
        return True

    def _delete(
        self,
        node: Node,
        key: int,
        values: Tuple[float, ...],
        orphans: List[IndexedItem],
        is_root: bool,
    ) -> bool:
        if node.is_leaf:
            for i, item in enumerate(node.entries):
                if item.key == key and item.values == values:
                    del node.entries[i]
                    self._refresh(node)
                    return True
            return False
        for child in node.entries:
            if child.rect is not None and child.rect.contains_point(values):
                if self._delete(child, key, values, orphans, is_root=False):
                    if self._count_entries(child) < self.min_entries:
                        node.entries.remove(child)
                        orphans.extend(self._collect_items(child))
                    self._refresh(node)
                    return True
        return False

    @staticmethod
    def _count_entries(node: Node) -> int:
        return len(node.entries)

    @staticmethod
    def _collect_items(node: Node) -> List[IndexedItem]:
        out: List[IndexedItem] = []
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                out.extend(n.entries)
            else:
                stack.extend(n.entries)
        return out

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search_window(self, window: Rect) -> Iterator[IndexedItem]:
        """Yield every item whose point falls inside ``window``."""
        if self.root.rect is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.rect is None or not node.rect.intersects(window):
                continue
            if node.is_leaf:
                for item in node.entries:
                    if window.contains_point(item.values):
                        yield item
            else:
                stack.extend(node.entries)

    def find(self, key: int, values: Sequence[float]) -> Optional[IndexedItem]:
        """Locate a specific item, or None."""
        point = Rect.from_point(values)
        for item in self.search_window(point):
            if item.key == key:
                return item
        return None

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Re-derive every structural property; raise AssertionError on drift.

        Checks: uniform leaf depth, fan-out bounds (root exempt), MBR
        exactness, aggregate exactness, and that the advertised size
        matches the stored item count.
        """
        leaf_depths: List[int] = []
        total = self._check_node(self.root, depth=0, leaf_depths=leaf_depths, is_root=True)
        assert total == self._size, f"size drift: counted {total}, recorded {self._size}"
        assert len(set(leaf_depths)) <= 1, f"leaves at different depths: {set(leaf_depths)}"

    def _check_node(
        self, node: Node, depth: int, leaf_depths: List[int], is_root: bool
    ) -> int:
        if not is_root:
            assert len(node.entries) >= self.min_entries, (
                f"underfull non-root node: {len(node.entries)} < {self.min_entries}"
            )
        assert len(node.entries) <= self.max_entries, "overfull node"
        if node.entries:
            expected_rect = Rect.union_of(node.entry_rect(e) for e in node.entries)
            assert node.rect == expected_rect, f"stale MBR on {node!r}"
        else:
            assert node.rect is None and is_root, "empty non-root node"
        if node.is_leaf:
            leaf_depths.append(depth)
            expected = self._aggregate_items(node.entries)
            self._assert_aggregate(node.aggregate, expected)
            return len(node.entries)
        total = 0
        for child in node.entries:
            total += self._check_node(child, depth + 1, leaf_depths, is_root=False)
        expected = self._aggregate_children(node.entries)
        self._assert_aggregate(node.aggregate, expected)
        return total

    @staticmethod
    def _assert_aggregate(actual: Any, expected: Any) -> None:
        assert actual.count == expected.count, (
            f"stale aggregate count: {actual.count} != {expected.count}"
        )

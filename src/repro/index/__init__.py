"""Spatial indexing substrate: R-tree, STR bulk loading, and the PR-tree.

The Probabilistic R-tree (§6.1) keeps per-node existential-probability
summaries that power the BBS-style local skyline (§6.2) and the
window-query probability probe (§6.3).
"""

from .bbs import bbs_prob_skyline, bbs_prob_skyline_progressive
from .bulk import curve_bulk_load, str_bulk_load
from .geometry import Rect
from .grid import GridIndex
from .prtree import PRTree, ProbAggregate
from .space_filling import hilbert_coords, hilbert_index, morton_index, quantize
from .rtree import IndexedItem, Node, RTree
from .window import (
    dominance_window,
    linear_dominators,
    linear_dominators_product,
    window_tuples,
)

__all__ = [
    "Rect",
    "GridIndex",
    "RTree",
    "Node",
    "IndexedItem",
    "PRTree",
    "ProbAggregate",
    "str_bulk_load",
    "curve_bulk_load",
    "hilbert_index",
    "hilbert_coords",
    "morton_index",
    "quantize",
    "bbs_prob_skyline",
    "bbs_prob_skyline_progressive",
    "dominance_window",
    "window_tuples",
    "linear_dominators",
    "linear_dominators_product",
]

"""A uniform grid index — the PR-tree's simpler rival.

For the low dimensionalities the paper evaluates (d ≤ 5), a fixed
uniform grid with per-cell probability aggregates answers the §6.3
dominator-product probe with the same two-tier logic as the PR-tree —
consume cells entirely inside the dominance region via their aggregated
``∏(1−P)``, skip cells entirely outside, refine boundary cells point by
point — at a fraction of the structural complexity (no splits, no
rebalancing).  Its weaknesses are the classic ones: fixed resolution,
poor behaviour under skew, and cell bounds that must be tracked as
*actual* per-cell bounding boxes to stay tight.

:class:`GridIndex` implements the same probe/mutation surface as
:class:`~repro.index.prtree.PRTree` (``add``/``remove``/
``dominators_product``/``items``/``node_accesses``), so
:class:`~repro.distributed.site.LocalSite` accepts either via
``SiteConfig.index_kind`` — and the ablation benchmark can price the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from .prtree import _point_dominates
from .rtree import IndexedItem

__all__ = ["GridIndex"]


@dataclass
class _Cell:
    """Items of one grid cell plus their exact summary."""

    items: List[IndexedItem]
    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    non_occurrence: float

    @classmethod
    def of(cls, items: List[IndexedItem]) -> "_Cell":
        d = len(items[0].values)
        lower = tuple(min(it.values[j] for it in items) for j in range(d))
        upper = tuple(max(it.values[j] for it in items) for j in range(d))
        product = 1.0
        for it in items:
            product *= 1.0 - it.probability
        return cls(items=items, lower=lower, upper=upper, non_occurrence=product)


class GridIndex:
    """Uniform grid over canonical min-space with per-cell aggregates."""

    #: Target average cell occupancy used by the auto-sizing rule.
    TARGET_CELL_OCCUPANCY = 4

    def __init__(
        self,
        preference: Optional[Preference] = None,
        cells_per_dim: int = 16,
    ) -> None:
        if cells_per_dim < 1:
            raise ValueError("need at least one cell per dimension")
        self.preference = preference
        self.cells_per_dim = cells_per_dim
        self.node_accesses = 0
        self._cells: Dict[Tuple[int, ...], _Cell] = {}
        self._domain_lower: Optional[Tuple[float, ...]] = None
        self._domain_upper: Optional[Tuple[float, ...]] = None
        self._size = 0

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        tuples: Iterable[UncertainTuple],
        preference: Optional[Preference] = None,
        cells_per_dim: Optional[int] = None,
        **_ignored,
    ) -> "GridIndex":
        """Bulk-build; ``cells_per_dim=None`` auto-sizes the grid.

        The auto rule aims at ~:data:`TARGET_CELL_OCCUPANCY` items per
        cell, i.e. ``(n / occupancy)^(1/d)`` cells per dimension — too
        fine a grid makes the probe walk thousands of near-empty cells
        and loses to a plain scan.
        """
        tuples = list(tuples)
        if cells_per_dim is None:
            if tuples:
                d = tuples[0].dimensionality
                cells_per_dim = max(
                    1,
                    round((len(tuples) / cls.TARGET_CELL_OCCUPANCY) ** (1.0 / d)),
                )
            else:
                cells_per_dim = 1
        index = cls(preference=preference, cells_per_dim=cells_per_dim)
        items = [index._item_for(t) for t in tuples]
        if items:
            d = len(items[0].values)
            index._domain_lower = tuple(
                min(it.values[j] for it in items) for j in range(d)
            )
            index._domain_upper = tuple(
                max(it.values[j] for it in items) for j in range(d)
            )
            for item in items:
                index._insert(item)
        return index

    def _item_for(self, t: UncertainTuple) -> IndexedItem:
        values = (
            self.preference.project(t.values)
            if self.preference is not None
            else tuple(t.values)
        )
        return IndexedItem(
            key=t.key, values=tuple(values), probability=t.probability, payload=t
        )

    def _cell_of(self, values: Tuple[float, ...]) -> Tuple[int, ...]:
        # Outliers beyond the build-time domain clamp into edge cells —
        # correctness is unaffected because every cell keeps its actual
        # bounding box.
        if self._domain_lower is None:
            return tuple(0 for _ in values)
        out = []
        for v, lo, up in zip(values, self._domain_lower, self._domain_upper):
            width = (up - lo) / self.cells_per_dim if up > lo else 1.0
            idx = int((v - lo) / width) if width > 0 else 0
            out.append(max(0, min(self.cells_per_dim - 1, idx)))
        return tuple(out)

    def _insert(self, item: IndexedItem) -> None:
        key = self._cell_of(item.values)
        cell = self._cells.get(key)
        if cell is None:
            self._cells[key] = _Cell.of([item])
        else:
            self._cells[key] = _Cell.of(cell.items + [item])
        self._size += 1

    def add(self, t: UncertainTuple) -> None:
        if self._domain_lower is None:
            item = self._item_for(t)
            self._domain_lower = item.values
            self._domain_upper = item.values
            self._insert(item)
            return
        self._insert(self._item_for(t))

    def remove(self, t: UncertainTuple) -> bool:
        item = self._item_for(t)
        key = self._cell_of(item.values)
        cell = self._cells.get(key)
        if cell is None:
            return False
        remaining = [it for it in cell.items if it.key != item.key]
        if len(remaining) == len(cell.items):
            return False
        if remaining:
            self._cells[key] = _Cell.of(remaining)
        else:
            del self._cells[key]
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[IndexedItem]:
        for cell in self._cells.values():
            yield from cell.items

    def tuples(self) -> Iterator[UncertainTuple]:
        for item in self.items():
            yield item.payload

    # ------------------------------------------------------------------
    # the §6.3 probe
    # ------------------------------------------------------------------

    def dominators_product(
        self,
        target: UncertainTuple,
        floor: float = 0.0,
        exclude_key: Optional[int] = None,
    ) -> float:
        """``∏(1−P)`` over stored tuples dominating ``target``.

        Same contract as :meth:`PRTree.dominators_product`, including
        the early-exit ``floor``.
        """
        if exclude_key is None:
            exclude_key = target.key
        point = (
            tuple(self.preference.project(target.values))
            if self.preference is not None
            else tuple(target.values)
        )
        target_cell = self._cell_of(point)
        product = 1.0
        for cell_key, cell in self._candidate_cells(target_cell):
            self.node_accesses += 1
            # Entirely outside the dominance region?
            if any(lo > p for lo, p in zip(cell.lower, point)):
                continue
            fully_inside = all(up <= p for up, p in zip(cell.upper, point)) and any(
                up < p for up, p in zip(cell.upper, point)
            )
            point_in_bbox = all(
                lo <= p <= up for lo, p, up in zip(cell.lower, point, cell.upper)
            )
            if fully_inside and not (
                point_in_bbox and self._contains_key(cell, exclude_key)
            ):
                product *= cell.non_occurrence
            else:
                for item in cell.items:
                    if item.key == exclude_key:
                        continue
                    if _point_dominates(item.values, point):
                        product *= 1.0 - item.probability
                        if product < floor:
                            return product
            if product < floor:
                return product
        return product

    def dominators_products(
        self, targets: Iterable[UncertainTuple], floor: float = 0.0
    ) -> List[float]:
        """Batched probe: one Eq.-9 product per target.

        Mirrors :meth:`PRTree.dominators_products` so either index can
        back the coordinator's batched FEEDBACK rounds.
        """
        return [self.dominators_product(t, floor=floor) for t in targets]

    def _candidate_cells(self, target_cell: Tuple[int, ...]):
        """Cells that can hold dominators: index ≤ target on every dim.

        Monotonicity of the cell function (including edge clamping)
        guarantees soundness.  When the dominance sub-grid is smaller
        than the populated cell set — the common case for near-origin
        skyline candidates — its keys are enumerated directly and
        looked up; otherwise the populated cells are filtered.
        """
        import itertools

        region = 1
        for tk in target_cell:
            region *= tk + 1
        if region <= len(self._cells):
            for cell_key in itertools.product(
                *(range(tk + 1) for tk in target_cell)
            ):
                cell = self._cells.get(cell_key)
                if cell is not None:
                    yield cell_key, cell
        else:
            for cell_key, cell in self._cells.items():
                if all(ck <= tk for ck, tk in zip(cell_key, target_cell)):
                    yield cell_key, cell

    @staticmethod
    def _contains_key(cell: _Cell, key: Optional[int]) -> bool:
        if key is None:
            return False
        return any(it.key == key for it in cell.items)

    def check_invariants(self) -> None:
        """Re-derive every cell summary; raise AssertionError on drift."""
        total = 0
        for cell_key, cell in self._cells.items():
            assert cell.items, f"empty cell {cell_key} retained"
            fresh = _Cell.of(cell.items)
            assert cell.lower == fresh.lower and cell.upper == fresh.upper, (
                f"stale bbox in cell {cell_key}"
            )
            assert abs(cell.non_occurrence - fresh.non_occurrence) < 1e-9, (
                f"stale product in cell {cell_key}"
            )
            total += len(cell.items)
        assert total == self._size, f"size drift: {total} != {self._size}"

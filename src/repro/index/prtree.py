"""The Probabilistic R-tree (PR-tree) of §6.1.

A PR-tree is an R-tree whose every entry additionally summarises the
existential probabilities beneath it: the paper stores ``P1`` (the
minimum occurrence probability in the subtree) and ``P2`` (the
maximum).  ``P2`` powers the BBS pruning rule of §6.2 — a subtree whose
most-probable tuple cannot reach the threshold holds no qualified
skyline — while the window query of §6.3 turns dominator sets into
probability products.

On top of the paper's ``(P1, P2)`` we optionally aggregate the
*non-occurrence product* ``∏ (1 − P)`` of each subtree.  A window query
for "product of non-occurrence over all tuples dominating ``b``" can
then consume whole subtrees that sit entirely inside the dominance
region in O(1) instead of walking their leaves — a strict optimization
of the paper's §6.3 procedure (toggleable via ``store_products`` and
ablated in ``benchmarks/test_ablation_prtree.py``).

All coordinates inside the tree are canonical min-space values; the
constructor takes the :class:`~repro.core.dominance.Preference` once
and projects every tuple on the way in, so MAX-direction and subspace
queries need no special handling anywhere in the index code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.dominance import Preference
from ..core.tuples import UncertainTuple
from .bulk import str_bulk_load
from .rtree import IndexedItem, Node, RTree

__all__ = ["ProbAggregate", "PRTree"]


@dataclass
class ProbAggregate:
    """Per-node probability summary.

    ``p_min``/``p_max`` are the paper's ``P1``/``P2``.
    ``non_occurrence`` is ``∏ (1 − P(t))`` over the subtree (1.0 when
    product storage is disabled; consumers must then walk leaves).
    """

    count: int
    p_min: float
    p_max: float
    non_occurrence: float


class PRTree(RTree):
    """Probabilistic R-tree over uncertain tuples."""

    def __init__(
        self,
        preference: Optional[Preference] = None,
        max_entries: int = 16,
        min_entries: Optional[int] = None,
        store_products: bool = True,
    ) -> None:
        self.preference = preference
        self.store_products = store_products
        #: Number of tree nodes touched by probe-style queries; reset
        #: freely — benchmarks use it to compare traversal work.
        self.node_accesses = 0
        super().__init__(max_entries=max_entries, min_entries=min_entries)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        tuples: Iterable[UncertainTuple],
        preference: Optional[Preference] = None,
        max_entries: int = 16,
        min_entries: Optional[int] = None,
        store_products: bool = True,
    ) -> "PRTree":
        """Bulk-load a PR-tree from uncertain tuples (STR packing)."""
        tree = cls(
            preference=preference,
            max_entries=max_entries,
            min_entries=min_entries,
            store_products=store_products,
        )
        items = [tree._item_for(t) for t in tuples]
        return str_bulk_load(tree, items)

    def _item_for(self, t: UncertainTuple) -> IndexedItem:
        values = (
            self.preference.project(t.values)
            if self.preference is not None
            else t.values
        )
        return IndexedItem(
            key=t.key, values=tuple(values), probability=t.probability, payload=t
        )

    def add(self, t: UncertainTuple) -> None:
        """Insert one uncertain tuple."""
        self.insert(self._item_for(t))

    def remove(self, t: UncertainTuple) -> bool:
        """Delete one uncertain tuple; True if it was present."""
        item = self._item_for(t)
        return self.delete(item.key, item.values)

    def tuples(self) -> Iterator[UncertainTuple]:
        """Iterate the stored uncertain tuples."""
        for item in self.items():
            yield item.payload

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def _aggregate_items(self, items: Sequence[IndexedItem]) -> ProbAggregate:
        if not items:
            return ProbAggregate(count=0, p_min=1.0, p_max=0.0, non_occurrence=1.0)
        p_min = min(it.probability for it in items)
        p_max = max(it.probability for it in items)
        product = 1.0
        if self.store_products:
            for it in items:
                product *= 1.0 - it.probability
        return ProbAggregate(
            count=len(items), p_min=p_min, p_max=p_max, non_occurrence=product
        )

    def _aggregate_children(self, children: Sequence[Node]) -> ProbAggregate:
        if not children:
            return ProbAggregate(count=0, p_min=1.0, p_max=0.0, non_occurrence=1.0)
        product = 1.0
        if self.store_products:
            for c in children:
                product *= c.aggregate.non_occurrence
        return ProbAggregate(
            count=sum(c.aggregate.count for c in children),
            p_min=min(c.aggregate.p_min for c in children),
            p_max=max(c.aggregate.p_max for c in children),
            non_occurrence=product,
        )

    def _assert_aggregate(self, actual: ProbAggregate, expected: ProbAggregate) -> None:
        assert actual.count == expected.count, (
            f"stale aggregate count: {actual.count} != {expected.count}"
        )
        if actual.count:
            assert abs(actual.p_min - expected.p_min) < 1e-12, "stale P1"
            assert abs(actual.p_max - expected.p_max) < 1e-12, "stale P2"
            if self.store_products:
                assert abs(actual.non_occurrence - expected.non_occurrence) < 1e-9, (
                    "stale non-occurrence product"
                )

    # ------------------------------------------------------------------
    # probability probes (§6.3 window query)
    # ------------------------------------------------------------------

    def dominators_product(
        self,
        target: UncertainTuple,
        floor: float = 0.0,
        exclude_key: Optional[int] = None,
    ) -> float:
        """``∏ (1 − P(t'))`` over stored tuples dominating ``target``.

        This is the §6.3 window query: the dominance region of the
        target (the box between the space origin and the target, in
        min-space) is traversed; subtrees entirely inside the region
        contribute their aggregated non-occurrence product, subtrees
        entirely outside are skipped, and boundary leaves are checked
        tuple by tuple.  ``floor`` allows early exit once the product
        provably sinks below a threshold (the returned partial product
        is an upper bound on the true value).

        ``exclude_key`` defaults to ``target.key`` so a tuple never
        dominates itself even when it is stored in this tree.
        """
        if exclude_key is None:
            exclude_key = target.key
        point = (
            self.preference.project(target.values)
            if self.preference is not None
            else tuple(target.values)
        )
        product = 1.0
        if self.root.rect is None:
            return product
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            self.node_accesses += 1
            rect = node.rect
            if rect is None or rect.disjoint_from_dominance_region(point):
                continue
            if (
                self.store_products
                and rect.fully_inside_dominance_region(point)
                and not self._subtree_contains_key(node, exclude_key, point)
            ):
                product *= node.aggregate.non_occurrence
            elif node.is_leaf:
                for item in node.entries:
                    if item.key == exclude_key:
                        continue
                    if _point_dominates(item.values, point):
                        product *= 1.0 - item.probability
                        if product < floor:
                            return product
            else:
                stack.extend(node.entries)
            if product < floor:
                return product
        return product

    def dominators_products(
        self, targets: Sequence[UncertainTuple], floor: float = 0.0
    ) -> List[float]:
        """Batched §6.3 window query: one Eq.-9 product per target.

        The batch entry point the coordinator's batched FEEDBACK rounds
        use; each target gets the same traversal (and the same
        ``floor`` early-exit contract) as :meth:`dominators_product`.
        """
        return [self.dominators_product(t, floor=floor) for t in targets]

    def _subtree_contains_key(
        self, node: Node, key: Optional[int], point: Tuple[float, ...]
    ) -> bool:
        """Whether the excluded key might sit inside this subtree.

        The excluded tuple's point equals ``target``'s projection only
        when the target itself is stored here; a subtree fully inside
        the *strict* dominance region can never contain the target's
        own point, so this is almost always False without any walk.
        """
        if key is None or node.rect is None:
            return False
        return node.rect.contains_point(point)

    def dominators(self, target: UncertainTuple) -> List[UncertainTuple]:
        """Materialise the tuples dominating ``target`` (mostly for tests)."""
        point = (
            self.preference.project(target.values)
            if self.preference is not None
            else tuple(target.values)
        )
        out = []
        for item in self.items():
            if item.key != target.key and _point_dominates(item.values, point):
                out.append(item.payload)
        return out


def _point_dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Min-space dominance between projected points."""
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict

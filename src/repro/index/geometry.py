"""Axis-aligned rectangle (MBR) geometry for the R-tree family.

Everything is plain tuples of floats — deliberately no numpy in the
per-node hot path, and this stays true even now that columnar kernels
exist: tree traversal touches one small fixed-``d`` box at a time,
where interpreter-level tuple comparisons beat numpy's per-call
dispatch overhead by a wide margin.  Vectorization pays only at
partition granularity, and that lives in :mod:`repro.core.kernels`
(the PR-tree's batched ``dominators_products`` loops these scalar
traversals rather than columnising nodes).  Rectangles are immutable
values, which keeps node updates explicit: a node's MBR is only ever
*recomputed*, never mutated in place, so a stale bound is a bug the
invariant checker can catch.
Coordinates are assumed to live in canonical min-space (preferences are
applied before anything reaches the index; see
:meth:`repro.core.dominance.Preference.project`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[lower, upper]``."""

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    def __post_init__(self) -> None:
        lo = tuple(float(v) for v in self.lower)
        up = tuple(float(v) for v in self.upper)
        if len(lo) != len(up):
            raise ValueError("lower and upper corners disagree on dimensionality")
        if any(low > high for low, high in zip(lo, up)):
            raise ValueError(f"degenerate rectangle: lower {lo} exceeds upper {up}")
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", up)

    @classmethod
    def from_point(cls, values: Sequence[float]) -> "Rect":
        """The degenerate rectangle covering one point."""
        pt = tuple(float(v) for v in values)
        return cls(pt, pt)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing all ``rects`` (must be non-empty)."""
        rects = list(rects)
        if not rects:
            raise ValueError("cannot take the union of zero rectangles")
        lower = list(rects[0].lower)
        upper = list(rects[0].upper)
        for r in rects[1:]:
            for i, (lo, up) in enumerate(zip(r.lower, r.upper)):
                if lo < lower[i]:
                    lower[i] = lo
                if up > upper[i]:
                    upper[i] = up
        return cls(tuple(lower), tuple(upper))

    @property
    def dimensionality(self) -> int:
        return len(self.lower)

    def union(self, other: "Rect") -> "Rect":
        return Rect.union_of((self, other))

    def area(self) -> float:
        """Hyper-volume; zero for degenerate boxes."""
        area = 1.0
        for lo, up in zip(self.lower, self.upper):
            area *= up - lo
        return area

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree 'margin' tiebreaker)."""
        return float(sum(up - lo for lo, up in zip(self.lower, self.upper)))

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` — Guttman's ChooseLeaf metric."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return all(
            lo <= o_up and o_lo <= up
            for lo, up, o_lo, o_up in zip(self.lower, self.upper, other.lower, other.upper)
        )

    def contains_point(self, values: Sequence[float]) -> bool:
        return all(lo <= v <= up for lo, up, v in zip(self.lower, self.upper, values))

    def contains_rect(self, other: "Rect") -> bool:
        return all(
            lo <= o_lo and o_up <= up
            for lo, up, o_lo, o_up in zip(self.lower, self.upper, other.lower, other.upper)
        )

    def min_coordinate_sum(self) -> float:
        """Lower bound on the coordinate sum of any contained point.

        This is BBS's ``mindist`` generalised to data that may be
        negative in min-space (e.g. a MAX preference negates values):
        the dominance-monotone sort key of a subtree is the sum of its
        lower corner.
        """
        return float(sum(self.lower))

    def fully_inside_dominance_region(self, target: Sequence[float]) -> bool:
        """True iff *every* point of the box dominates ``target``.

        Requires ``upper ≤ target`` everywhere and strictly ``<`` on at
        least one dimension — the strict dimension makes every box
        point strictly better somewhere, including the box's own upper
        corner.
        """
        strict = False
        for up, t in zip(self.upper, target):
            if up > t:
                return False
            if up < t:
                strict = True
        return strict

    def disjoint_from_dominance_region(self, target: Sequence[float]) -> bool:
        """True iff *no* point of the box can dominate ``target``.

        A dominating point must be ≤ ``target`` on every dimension, so
        a box whose lower corner exceeds the target anywhere is out.
        The remaining boxes may still contain only the target point
        itself (which does not dominate); leaf-level exact checks
        handle that case.
        """
        return any(lo > t for lo, t in zip(self.lower, target))

"""Branch-and-Bound probabilistic skyline over a PR-tree (§6.2).

The local-skyline procedure of the paper adapts the BBS algorithm of
Papadias et al. to uncertain data: traverse the PR-tree in ascending
*mindist* order (here: minimum coordinate sum, which stays monotone for
dominance even when preferences map values negative) and prune any
subtree that provably contains no tuple whose skyline probability can
reach the threshold ``q``.

Pruning rule (generalising the paper's statement): for an intermediate
entry ``e`` and already-visited objects ``a`` that dominate *all* of
``e``'s MBR,

    upper bound on P_sky of anything in e  =  P2(e) × ∏ (1 − P(a))

because every tuple below ``e`` occurs with probability at most
``P2(e)`` and inherits every region-dominating object as a dominator.
If the bound falls below ``q`` the subtree is skipped.

Visited objects are kept as an incomparable *pruner window* (dominated
pruners are redundant for the dominance test by transitivity).  The
exact probability of each surviving object is then resolved with the
§6.3 window query on the same tree, with early exit at ``q``.

:func:`bbs_prob_skyline_progressive` yields qualified members as they
are discovered — ascending coordinate-sum order — which is the
progressive behaviour the paper inherits from BBS.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List

from ..core.dominance import strictly_dominates_region
from ..core.prob_skyline import ProbabilisticSkyline, SkylineMember
from .prtree import PRTree, _point_dominates
from .rtree import IndexedItem, Node

__all__ = ["bbs_prob_skyline", "bbs_prob_skyline_progressive"]


def bbs_prob_skyline(tree: PRTree, threshold: float) -> ProbabilisticSkyline:
    """The qualified probabilistic skyline of everything stored in ``tree``."""
    members = list(bbs_prob_skyline_progressive(tree, threshold))
    return ProbabilisticSkyline(threshold, members)


def bbs_prob_skyline_progressive(
    tree: PRTree, threshold: float
) -> Iterator[SkylineMember]:
    """Yield qualified :class:`SkylineMember`s in discovery (mindist) order."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold q must be in (0, 1], got {threshold!r}")
    if tree.root.rect is None:
        return
    counter = itertools.count()
    heap: List = []
    heapq.heappush(
        heap, (tree.root.rect.min_coordinate_sum(), next(counter), tree.root)
    )
    pruners: List[IndexedItem] = []

    while heap:
        _, _, entry = heapq.heappop(heap)
        tree.node_accesses += 1
        if isinstance(entry, IndexedItem):
            # Re-check against pruners gathered since this item was
            # pushed; only then pay for the exact probe.
            if not _item_pruned(pruners, entry, threshold):
                floor = threshold / entry.probability
                product = tree.dominators_product(
                    entry.payload, floor=floor, exclude_key=entry.key
                )
                if product >= floor:
                    yield SkylineMember(entry.payload, entry.probability * product)
            _absorb_pruner(pruners, entry)
            continue
        node: Node = entry
        if _node_pruned(pruners, node, threshold):
            # Pruners that arrived after this node was pushed can now
            # disqualify the whole subtree without expanding it.
            continue
        for child in node.entries:
            if node.is_leaf:
                item: IndexedItem = child
                if _item_pruned(pruners, item, threshold):
                    # Even a pruned item remains a legitimate pruner for
                    # later, more dominated regions.
                    _absorb_pruner(pruners, item)
                    continue
                heapq.heappush(
                    heap, (float(sum(item.values)), next(counter), item)
                )
            else:
                if _node_pruned(pruners, child, threshold):
                    continue
                heapq.heappush(
                    heap,
                    (child.rect.min_coordinate_sum(), next(counter), child),
                )


def _node_pruned(pruners: List[IndexedItem], node: Node, threshold: float) -> bool:
    """True iff no tuple under ``node`` can reach the threshold."""
    bound = node.aggregate.p_max
    if bound < threshold:
        return True
    lower = node.rect.lower
    for w in pruners:
        if strictly_dominates_region(w.values, lower, node.rect.upper):
            bound *= 1.0 - w.probability
            if bound < threshold:
                return True
    return False


def _item_pruned(pruners: List[IndexedItem], item: IndexedItem, threshold: float) -> bool:
    """True iff ``item`` itself provably misses the threshold."""
    bound = item.probability
    if bound < threshold:
        return True
    for w in pruners:
        if _point_dominates(w.values, item.values):
            bound *= 1.0 - w.probability
            if bound < threshold:
                return True
    return False


def _absorb_pruner(pruners: List[IndexedItem], item: IndexedItem) -> None:
    """BNL-style insert keeping the pruner window incomparable."""
    survivors = []
    for w in pruners:
        if _point_dominates(w.values, item.values):
            return  # a stronger-or-equal pruner is already present
        if not _point_dominates(item.values, w.values):
            survivors.append(w)
    survivors.append(item)
    pruners[:] = survivors

"""Space-filling curves: Hilbert and Morton (Z-order) keys.

Sort-by-curve is the classic alternative to STR for packing R-trees:
quantize each point onto a ``2^bits`` grid, order by its position along
a space-filling curve, and cut the order into node-sized runs.  The
Hilbert curve's defining property — consecutive indices map to cells at
Manhattan distance 1, so runs stay spatially compact — makes it the
stronger packer; Morton interleaving is cheaper but jumps at power-of-
two boundaries.  Both are provided (and property-tested against exactly
those structural facts) so the bulk-loading benchmark can price the
difference.

The Hilbert mapping uses John Skilling's transpose algorithm
("Programming the Hilbert curve", AIP 2004): a handful of bit
manipulations converts a coordinate vector to/from the transposed index
form, valid for any dimensionality and precision.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "morton_index",
    "hilbert_index",
    "hilbert_coords",
    "quantize",
]


def quantize(
    values: Sequence[float],
    lower: Sequence[float],
    upper: Sequence[float],
    bits: int,
) -> Tuple[int, ...]:
    """Map a point into integer grid coordinates on ``[0, 2^bits)``."""
    if bits < 1 or bits > 32:
        raise ValueError("bits must be in [1, 32]")
    side = (1 << bits) - 1
    out = []
    for v, lo, up in zip(values, lower, upper):
        if up <= lo:
            out.append(0)
            continue
        scaled = int((v - lo) / (up - lo) * side)
        out.append(max(0, min(side, scaled)))
    return tuple(out)


def morton_index(coords: Sequence[int], bits: int) -> int:
    """Z-order key: interleave the coordinate bits, MSB first."""
    _check(coords, bits)
    index = 0
    for bit in range(bits - 1, -1, -1):
        for c in coords:
            index = (index << 1) | ((c >> bit) & 1)
    return index


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Position of a grid cell along the d-dimensional Hilbert curve."""
    _check(coords, bits)
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)

    # Inverse undo excess work (Skilling's transform, forward direction).
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t

    # The transposed form holds bit b of the index in x[b % n]; weave
    # them into one integer, most significant first.
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(n):
            index = (index << 1) | ((x[i] >> bit) & 1)
    return index


def hilbert_coords(index: int, dimensions: int, bits: int) -> Tuple[int, ...]:
    """Inverse of :func:`hilbert_index` (used by the bijectivity tests)."""
    if dimensions < 1:
        raise ValueError("need at least one dimension")
    if index < 0 or index >= 1 << (dimensions * bits):
        raise ValueError("index out of range for the grid")
    # Un-weave into transposed form.
    x = [0] * dimensions
    for pos in range(dimensions * bits):
        bit = (index >> (dimensions * bits - 1 - pos)) & 1
        x[pos % dimensions] = (x[pos % dimensions] << 1) | bit

    n = dimensions
    m = 2 << (bits - 1)

    # Gray decode.
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work (Skilling's transform, inverse direction).
    q = 2
    while q != m:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)


def _check(coords: Sequence[int], bits: int) -> None:
    if bits < 1 or bits > 32:
        raise ValueError("bits must be in [1, 32]")
    if not coords:
        raise ValueError("need at least one coordinate")
    limit = 1 << bits
    for c in coords:
        if not 0 <= c < limit:
            raise ValueError(f"coordinate {c} outside [0, 2^{bits})")

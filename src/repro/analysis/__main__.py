"""The skylint command line: ``python -m repro.analysis``.

Runs the two-phase whole-program analyzer (per-file summaries + module
rules, then the call-graph SKY6xx rules) with the incremental summary
cache on by default.  Exit status is 0 only when the run is *clean*: no
finding outside the baseline and no stale baseline entry.
``--write-baseline`` accepts the current findings as the new baseline
(justifications must then be filled in by hand — the self-check test
refuses empty ones).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE_NAME,
    compare,
    load_baseline,
    write_baseline,
)
from .cache import DEFAULT_CACHE_NAME
from .engine import ENGINE_VERSION, analyze_project
from .reporters import render_json, render_sarif, render_text
from .rules import ALL_RULES, PROGRAM_RULES, rules_by_id

#: Directories scanned when no explicit paths are given.  Benchmarks
#: and examples are protocol clients too — an unbilled RPC or unseeded
#: workload there corrupts the paper's figures just as surely.
DEFAULT_SCAN_DIRS = ("src", "benchmarks", "examples")


def _repo_root(start: Path) -> Path:
    """The nearest ancestor holding pyproject.toml (fallback: cwd)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="skylint: repo-specific whole-program static analysis "
        "(protocol accounting, determinism, probability safety, "
        "RPC discipline, event-loop and lock discipline)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyse "
        f"(default: {'/, '.join(DEFAULT_SCAN_DIRS)}/ under the repo root)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: <repo-root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding is new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list findings matched by the baseline (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="SKY###",
        default=None,
        help="print one rule's full description (and what supersedes "
        "or is superseded by it) and exit",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=None,
        help="summary cache file "
        f"(default: <repo-root>/{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the summary cache (cold run)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print phase timings and cache hit counts to stderr",
    )
    return parser


def _explain(rule_id: str) -> int:
    registry = rules_by_id()
    rule = registry.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(registry))
        print(f"unknown rule {rule_id!r}; known rules: {known}", file=sys.stderr)
        return 2
    kind = "whole-program" if rule in PROGRAM_RULES else "per-module"
    print(f"{rule.id}  {rule.name}  [{rule.severity}]  ({kind})")
    print()
    print(rule.description.strip())
    if rule.supersedes:
        print()
        print(
            f"Supersedes {rule.supersedes}: when this rule runs, "
            f"{rule.supersedes} steps back to avoid double-reporting."
        )
    if rule.superseded_by:
        print()
        print(
            f"Superseded by {rule.superseded_by} in whole-program runs; "
            "this rule remains the per-file fallback."
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.explain:
        return _explain(args.explain)

    if args.list_rules:
        for rule in [*ALL_RULES, *PROGRAM_RULES]:
            print(f"{rule.id}  {rule.name}  [{rule.severity}]")
            print(f"    {rule.description.strip()}")
        return 0

    root = _repo_root(Path.cwd())
    if args.paths:
        paths: List[Path] = [Path(p) for p in args.paths]
    else:
        paths = [root / d for d in DEFAULT_SCAN_DIRS if (root / d).is_dir()]
        if not paths:
            paths = [root]

    cache_path: Optional[Path]
    if args.no_cache:
        cache_path = None
    elif args.cache:
        cache_path = Path(args.cache)
    else:
        cache_path = root / DEFAULT_CACHE_NAME

    findings, stats = analyze_project(
        paths, ALL_RULES, PROGRAM_RULES, root=root, cache_path=cache_path
    )
    if args.stats:
        print(stats.render(), file=sys.stderr)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}; "
            "add a justification to every entry"
        )
        return 0

    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    comparison = compare(findings, baseline)

    rules = [*ALL_RULES, *PROGRAM_RULES]
    if args.format == "json":
        print(render_json(comparison, rules))
    elif args.format == "sarif":
        print(render_sarif(comparison, rules, engine_version=ENGINE_VERSION))
    else:
        print(render_text(comparison, rules, show_matched=args.show_baselined))
    return 0 if comparison.clean else 1


if __name__ == "__main__":
    sys.exit(main())

"""The skylint command line: ``python -m repro.analysis``.

Exit status is 0 only when the run is *clean*: no finding outside the
baseline and no stale baseline entry.  ``--write-baseline`` accepts the
current findings as the new baseline (justifications must then be
filled in by hand — the self-check test refuses empty ones).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE_NAME,
    compare,
    load_baseline,
    write_baseline,
)
from .framework import analyze_paths
from .reporters import render_json, render_text
from .rules import ALL_RULES


def _repo_root(start: Path) -> Path:
    """The nearest ancestor holding pyproject.toml (fallback: cwd)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="skylint: repo-specific static analysis "
        "(protocol accounting, determinism, probability safety, "
        "RPC discipline, thread-shared state)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyse (default: src/ under the repo root)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: <repo-root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding is new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list findings matched by the baseline (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}  [{rule.severity}]")
            print(f"    {rule.description.strip()}")
        return 0

    root = _repo_root(Path.cwd())
    if args.paths:
        paths: List[Path] = [Path(p) for p in args.paths]
    else:
        src = root / "src"
        paths = [src if src.is_dir() else root]

    findings = analyze_paths(paths, ALL_RULES, root=root)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}; "
            "add a justification to every entry"
        )
        return 0

    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    comparison = compare(findings, baseline)

    if args.format == "json":
        print(render_json(comparison, ALL_RULES))
    else:
        print(render_text(comparison, ALL_RULES, show_matched=args.show_baselined))
    return 0 if comparison.clean else 1


if __name__ == "__main__":
    sys.exit(main())

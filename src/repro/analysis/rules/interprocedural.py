"""SKY601–SKY605 — the whole-program (interprocedural) rule family.

These rules run in phase 2 over the linked
:class:`~repro.analysis.callgraph.Program` rather than one file at a
time, so they see properties that are *global* to the protocol: a
blocking call three frames below an ``async def``, an RPC billed by a
wrapper two calls up, a MessageKind member nothing ever bills.  They
supersede the single-function approximations SKY101 (same-function
billing) and SKY503's blocking checks, which remain available as
fallbacks for per-file runs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..callgraph import Program, ProgramFunction, ProgramRule
from ..framework import Finding, Severity
from ..summaries import (
    MESSAGE_MARKERS,
    BlockFact,
    ModuleSummary,
    RngFact,
    Site,
    WriteFact,
)

__all__ = [
    "TransitiveBlockingRule",
    "InterproceduralBillingRule",
    "LedgerSymmetryRule",
    "SeedProvenanceRule",
    "LockDisciplineRule",
]

#: One step of a blocking chain: the function entered and (for the last
#: step) the blocking fact inside it.
_Chain = List[Tuple[ProgramFunction, Optional[BlockFact]]]


class TransitiveBlockingRule(ProgramRule):
    """Invariant: no call chain from an ``async def`` reaches a
    blocking call — ``time.sleep``, raw socket ops, ``select``, a pool
    join/shutdown, or a *sync* ``SiteEndpoint`` RPC — without crossing
    an ``await``-shaped boundary (an async callee or a generator).

    Paper hook: the serving layer multiplexes every concurrent
    progressive query over one event loop; a single blocked frame
    stalls every in-flight session, so the latency trajectories in
    ``BENCH_service.json`` would measure the bug, not the §6
    progressiveness of the protocol.
    """

    id = "SKY601"
    name = "async-transitive-blocking"
    severity = Severity.ERROR
    description = (
        "Blocking call reachable from an `async def` through the project "
        "call graph: sleeps, raw sockets, pool joins, and sync "
        "SiteEndpoint RPCs stall the event loop for every in-flight "
        "session, no matter how many sync helpers deep they hide. "
        "Supersedes SKY503's two-module blocking scope."
    )
    supersedes = "SKY503"

    def check_program(self, program: Program) -> Iterator[Finding]:
        memo: Dict[str, Optional[_Chain]] = {}

        def first_block(pf: ProgramFunction, stack: Set[str]) -> Optional[_Chain]:
            if pf.key in memo:
                return memo[pf.key]
            if pf.key in stack:
                return None
            own = list(pf.summary.blocking) + list(pf.linked_blocking)
            if own:
                memo[pf.key] = [(pf, own[0])]
                return memo[pf.key]
            stack.add(pf.key)
            result: Optional[_Chain] = None
            for callee, _raw, _site in pf.callees:
                if callee.is_async or callee.is_generator:
                    continue
                sub = first_block(callee, stack)
                if sub is not None:
                    result = [(pf, None)] + sub
                    break
            stack.discard(pf.key)
            memo[pf.key] = result
            return result

        for pf in program.functions.values():
            if not pf.is_async:
                continue
            for fact in list(pf.summary.blocking) + list(pf.linked_blocking):
                yield self.finding_at(
                    pf.module, fact.site, self._direct_message(fact)
                )
            for callee, raw, site in pf.callees:
                if callee.is_async or callee.is_generator:
                    continue
                chain = first_block(callee, set())
                if chain is None:
                    continue
                path = " -> ".join(step.summary.qualname for step, _ in chain)
                fact = chain[-1][1]
                assert fact is not None
                yield self.finding_at(
                    pf.module,
                    site,
                    f"`{raw}(...)` called from async "
                    f"`{pf.summary.qualname}` reaches blocking "
                    f"`{fact.name}` ({fact.kind}) via {path} "
                    f"[{chain[-1][0].module.relpath}:{fact.site.lineno}]; "
                    "the event loop stalls for every in-flight session — "
                    "make the chain awaitable or move the blocking step "
                    "off the loop",
                )

    @staticmethod
    def _direct_message(fact: BlockFact) -> str:
        if fact.kind == "pool-join":
            return (
                f"`{fact.name}(...)` blocks the loop until every queued "
                "worker job drains; tear pools down from a sync `close()` "
                "(or `shutdown(wait=False)`) — async code should await "
                "`asyncio.wrap_future` handles"
            )
        if fact.kind == "sync-rpc":
            return (
                f"`{fact.name}(...)` is a *sync* SiteEndpoint RPC on the "
                "event loop: network/compute with no await point — use "
                "the AsyncSiteEndpoint mirror or hand the call to a thread"
            )
        return (
            f"`{fact.name}(...)` blocks the event loop; every other "
            "in-flight session stalls with it — use the asyncio "
            "equivalent (`await asyncio.sleep`, `asyncio.open_connection`, …)"
        )


class InterproceduralBillingRule(ProgramRule):
    """Invariant: every call path from an entry point to a
    ``SiteEndpoint`` RPC crosses **exactly one** ``NetworkStats``
    billing site — either the RPC-bearing function bills locally, or
    exactly one pure wrapper (a biller with no RPCs of its own) above
    it does.

    Paper hook: Eq. 10 prices a DSUD run in transmitted tuples and
    Corollary 1 bounds degraded runs; an unbilled path under-counts the
    central metric and a double-billed path over-counts it, and both
    falsify every bandwidth figure downstream.
    """

    id = "SKY602"
    name = "rpc-billing-paths"
    severity = Severity.ERROR
    description = (
        "Interprocedural RPC billing: every path from an entry point to "
        "a site RPC must cross exactly one NetworkStats billing site. "
        "Catches RPCs billed nowhere on some path (helpers) and RPCs "
        "billed twice (local bill plus a billing wrapper above). "
        "Supersedes SKY101's same-function approximation."
    )
    supersedes = "SKY101"

    def check_program(self, program: Program) -> Iterator[Finding]:
        tops = [
            pf for pf in program.functions.values() if pf.summary.parent is None
        ]
        edges: Dict[str, Set[str]] = {pf.key: set() for pf in tops}
        incoming: Dict[str, int] = {pf.key: 0 for pf in tops}
        by_key = {pf.key: pf for pf in tops}
        for pf in program.functions.values():
            top = program.toplevel(pf)
            for callee, _raw, _site in pf.callees:
                callee_top = program.toplevel(callee)
                if callee_top.key == top.key:
                    continue
                if callee_top.key not in edges[top.key]:
                    edges[top.key].add(callee_top.key)
                    incoming[callee_top.key] = incoming.get(callee_top.key, 0) + 1

        def rpc_methods(pf: ProgramFunction) -> Set[str]:
            return {
                r.method
                for r in program.lexical_rpcs(pf)
                if r.receiver != "self" and not r.receiver.startswith("self.")
            }

        def wrapper_biller(pf: ProgramFunction) -> bool:
            bills = program.lexical_bills(pf)
            return (
                any(b.marker in MESSAGE_MARKERS for b in bills)
                and not rpc_methods(pf)
            )

        # Worklist: for each top-level function, the set of
        # wrapper-biller counts over call chains from entry points,
        # capped at 2 ("two or more"), each with a witness chain.
        counts: Dict[str, Dict[int, Tuple[str, Tuple[str, ...]]]] = {}
        worklist: List[str] = []
        for pf in tops:
            if incoming.get(pf.key, 0) == 0:
                n = 1 if wrapper_biller(pf) else 0
                wrappers = (pf.summary.qualname,) if n else ()
                counts[pf.key] = {n: (pf.summary.qualname, wrappers)}
                worklist.append(pf.key)
        while worklist:
            key = worklist.pop()
            for callee_key in edges.get(key, ()):  # caller -> callee
                callee = by_key[callee_key]
                extra = 1 if wrapper_biller(callee) else 0
                bucket = counts.setdefault(callee_key, {})
                changed = False
                for n, (root, wrappers) in list(counts[key].items()):
                    n2 = min(n + extra, 2)
                    if n2 not in bucket:
                        wrappers2 = (
                            wrappers + (callee.summary.qualname,)
                            if extra
                            else wrappers
                        )
                        bucket[n2] = (root, wrappers2)
                        changed = True
                if changed:
                    worklist.append(callee_key)

        for pf in tops:
            if not self._in_scope(pf):
                continue
            rpcs = [
                r
                for r in program.lexical_rpcs(pf)
                if r.receiver != "self" and not r.receiver.startswith("self.")
            ]
            if not rpcs:
                continue
            local = 1 if program.lexical_bills(pf) else 0
            reached = counts.get(pf.key) or {0: (pf.summary.qualname, ())}
            totals = {n + local: wit for n, wit in reached.items()}
            if 0 in totals:
                root, _ = totals[0]
                for rpc in rpcs:
                    label = "bound as a thunk" if rpc.is_ref else "called"
                    yield self.finding_at(
                        pf.module,
                        rpc.site,
                        f"site RPC `{rpc.receiver}.{rpc.method}` ({label}) "
                        f"crosses no NetworkStats billing site on the call "
                        f"path from `{root}`; bill it locally or in exactly "
                        "one wrapper, or the Eq. 10 bandwidth metric "
                        "under-counts",
                    )
            doubles = {n: wit for n, wit in totals.items() if n >= 2}
            if doubles:
                n = max(doubles)
                root, wrappers = doubles[n]
                via = ", ".join(wrappers) or "<local>"
                yield self.finding_at(
                    pf.module,
                    rpcs[0].site,
                    f"site RPCs in `{pf.summary.qualname}` are billed "
                    f"{'at least twice' if n >= 2 else 'twice'} on the "
                    f"path from `{root}`: "
                    + (
                        f"locally and again by wrapper(s) {via}"
                        if local
                        else f"by multiple wrappers ({via})"
                    )
                    + " — the Eq. 10 bandwidth metric over-counts; bill "
                    "exactly once per message",
                )

    @staticmethod
    def _in_scope(pf: ProgramFunction) -> bool:
        relpath = pf.module.relpath
        if relpath.endswith(("distributed/site.py", "stream/site.py")):
            # These modules *are* the endpoints: their calls onto the
            # local engine are compute, not protocol messages.
            return False
        return "distributed/" in relpath or "stream/" in relpath


#: MessageKind member -> the RPC methods whose send it prices.  ``None``
#: means the kind is control/result traffic with no paired RPC (it only
#: needs *some* billed send site).
_KIND_RPCS: Dict[str, Optional[FrozenSet[str]]] = {
    "PREPARE": frozenset({"prepare"}),
    "PREPARE_REPLY": frozenset({"prepare"}),
    "NEXT_REQUEST": frozenset({"pop_representative"}),
    "REPRESENTATIVE": frozenset({"pop_representative"}),
    "EXHAUSTED": frozenset({"pop_representative"}),
    "FEEDBACK": frozenset(
        {"probe", "probe_batch", "probe_and_prune", "probe_and_prune_batch"}
    ),
    "PROBE_REPLY": frozenset(
        {
            "probe",
            "probe_batch",
            "probe_and_prune",
            "probe_and_prune_batch",
            "queue_size",
        }
    ),
    "RESULT": None,
    # UPDATE is the maintenance protocol's generic tuple-bearing
    # message: the inserted/deleted tuple itself, plus the probe and
    # candidate-recovery traffic §5.4 prices per tuple.
    "UPDATE": frozenset(
        {
            "insert_tuple",
            "delete_tuple",
            "fast_forward",
            "probe",
            "probe_batch",
            "dominated_local_candidates",
        }
    ),
    "DATA": frozenset({"ship_all", "ship_local_skyline"}),
    "CONTROL": None,
    "REPLICA_SYNC": frozenset(
        {"set_replica", "fast_forward", "insert_tuple", "delete_tuple",
         "sync_candidates"}
    ),
    "DIGEST": frozenset({"partition_digest"}),
    "FAILOVER_PROBE": None,
    # Continuous-query (stream/) push path: standing-query registration
    # rides SUBSCRIBE, per-epoch site digests ride DELTA, windowed
    # departures ride EXPIRE, and NOTIFY is pure coordinator->client
    # control traffic with no paired site RPC.
    "SUBSCRIBE": frozenset({"register_group", "drop_group"}),
    "DELTA": frozenset({"close_epoch", "sync_candidates"}),
    "NOTIFY": None,
    "EXPIRE": frozenset({"close_epoch"}),
}


class LedgerSymmetryRule(ProgramRule):
    """Invariant: every ``MessageKind`` member has at least one billed
    send site, and kinds that price a specific RPC are billed from a
    function that actually issues a matching RPC.

    Paper hook: the ledger is the experiment — a message kind that is
    defined but never billed is a protocol leg the Eq. 10 bandwidth
    figures silently omit (the §6.2 message-count comparisons assume
    every leg is priced).
    """

    id = "SKY603"
    name = "message-kind-ledger"
    severity = Severity.ERROR
    description = (
        "MessageKind ledger symmetry: every enum member needs a billed "
        "send site somewhere in the program, and kinds tied to an RPC "
        "(PREPARE, REPRESENTATIVE, FEEDBACK, …) must be billed from a "
        "function issuing that RPC — table-driven from the net/ message "
        "definitions."
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        members: List[Tuple[str, Site, ModuleSummary]] = []
        for module, cls in program.classes.get("MessageKind", []):
            if not any("Enum" in base for base in cls.bases):
                continue
            for name, site in cls.attrs.items():
                if name.isupper():
                    members.append((name, site, module))
        if not members:
            return

        billed: Dict[str, List[ProgramFunction]] = {}
        for pf in program.functions.values():
            for bill in pf.summary.bills:
                if bill.kind is not None:
                    billed.setdefault(bill.kind, []).append(program.toplevel(pf))

        def rpc_methods(pf: ProgramFunction) -> Set[str]:
            return {
                r.method
                for r in program.lexical_rpcs(pf)
                if r.receiver != "self" and not r.receiver.startswith("self.")
            }

        def effective_rpcs(pf: ProgramFunction) -> Set[str]:
            """RPC methods at the bill's real send site.

            A bill inside a pure billing helper (``_tuple_message``)
            prices a message its *caller* sends, so when the billing
            function issues no RPC itself, walk up the caller graph to
            the nearest RPC-issuing ancestors and use their methods.
            """
            own = rpc_methods(pf)
            if own:
                return own
            out: Set[str] = set()
            seen: Set[str] = {pf.key}
            frontier: List[ProgramFunction] = [pf]
            while frontier:
                current = frontier.pop()
                for caller in current.callers:
                    top = program.toplevel(caller)
                    if top.key in seen:
                        continue
                    seen.add(top.key)
                    methods = rpc_methods(top)
                    if methods:
                        out |= methods
                    else:
                        frontier.append(top)
            return out

        for name, site, module in members:
            senders = billed.get(name)
            if not senders:
                yield self.finding_at(
                    module,
                    site,
                    f"MessageKind.{name} has no billed send site anywhere "
                    "in the program: either a protocol leg is not being "
                    "priced into the Eq. 10 ledger, or the kind is dead "
                    "and should be removed",
                )
                continue
            allowed = _KIND_RPCS.get(name)
            if allowed and not any(effective_rpcs(pf) & allowed for pf in senders):
                expected = ", ".join(sorted(allowed))
                yield self.finding_at(
                    module,
                    site,
                    f"MessageKind.{name} is billed, but never from a "
                    f"function issuing its matching RPC ({expected}); the "
                    "ledger entry does not correspond to the message it "
                    "claims to price",
                )


class SeedProvenanceRule(ProgramRule):
    """Invariant: no unseeded (or wall-clock-seeded) RNG value flows —
    through assignments, arguments, or returns — into ``distributed/``,
    ``replica/``, ``serve/``, or ``stream/`` code.

    Paper hook: the reproduction's chaos, replica, and serving
    exactness contracts all assert bit-identical replay; a generator
    seeded from OS entropy that leaks into protocol code breaks replay
    in a way SKY201 (which only sees the constructing file) cannot
    attribute.
    """

    id = "SKY604"
    name = "seed-provenance"
    severity = Severity.ERROR
    description = (
        "Seed provenance: an unseeded or wall-clock-seeded "
        "Random/default_rng constructed anywhere (bench drivers, CLI, "
        "tests) must not flow into distributed/, replica/, serve/, or "
        "stream/ code — deterministic replay requires every protocol "
        "draw to derive from an explicit seed."
    )

    _PROTECTED = ("distributed/", "replica/", "serve/", "stream/")

    def check_program(self, program: Program) -> Iterator[Finding]:
        findings: List[Finding] = []
        visited: Set[Tuple[str, str]] = set()

        def protected(pf: ProgramFunction) -> bool:
            return any(part in pf.module.relpath for part in self._PROTECTED)

        def emit(origin: Tuple[ProgramFunction, RngFact], dest: str) -> None:
            pf, fact = origin
            label = (
                "wall-clock-seeded" if fact.seeding == "wall" else "unseeded"
            )
            findings.append(
                self.finding_at(
                    pf.module,
                    fact.site,
                    f"{label} `{fact.callee}(...)` flows into {dest}; "
                    "distributed/replica/serve code must only ever see "
                    "explicitly seeded generators (deterministic replay)",
                )
            )

        def follow(
            pf: ProgramFunction,
            flows: List[str],
            origin: Tuple[ProgramFunction, RngFact],
        ) -> None:
            for flow in flows:
                if flow == "return":
                    propagate_return(pf, origin)
                elif flow.startswith("attr:"):
                    if protected(pf):
                        target = flow.split(":", 1)[1]
                        emit(origin, f"`{target}` in {pf.module.relpath}")
                elif flow.startswith("call:"):
                    _, raw, arg = flow.split(":", 2)
                    target_fn = program.resolve(pf, raw)
                    if target_fn is None:
                        continue
                    if protected(target_fn) and not protected(pf):
                        emit(
                            origin,
                            f"`{target_fn.summary.qualname}` "
                            f"({target_fn.module.relpath})",
                        )
                        continue
                    params = target_fn.summary.params
                    param = (
                        params[int(arg)]
                        if arg.isdigit() and int(arg) < len(params)
                        else arg
                    )
                    token = (target_fn.key, f"param:{param}")
                    if token in visited:
                        continue
                    visited.add(token)
                    follow(
                        target_fn,
                        target_fn.summary.param_flows.get(param, []),
                        origin,
                    )

        def propagate_return(
            pf: ProgramFunction, origin: Tuple[ProgramFunction, RngFact]
        ) -> None:
            token = (pf.key, "ret")
            if token in visited:
                return
            visited.add(token)
            for caller in pf.callers:
                for callee, raw, _site in caller.callees:
                    if callee is not pf:
                        continue
                    flows = caller.summary.result_flows.get(raw, [])
                    if protected(caller) and not protected(pf):
                        emit(
                            origin,
                            f"the return value consumed by "
                            f"`{caller.summary.qualname}` "
                            f"({caller.module.relpath})",
                        )
                    elif flows:
                        follow(caller, flows, origin)

        for pf in program.functions.values():
            if protected(pf):
                # An unseeded ctor *inside* protocol code is SKY201's
                # finding; this rule attributes cross-package flows.
                continue
            for fact in pf.summary.rng:
                if fact.seeding == "seeded":
                    continue
                follow(pf, list(fact.flows), (pf, fact))
        yield from findings


class LockDisciplineRule(ProgramRule):
    """Invariant: an attribute written under a lock anywhere in a class
    is written under that lock at *every* write site (``__init__``
    excepted — construction happens-before sharing).

    Paper hook: the coordinator's broadcast pool mutates shared
    bookkeeping (`NetworkStats` counters, lifecycle state) from worker
    threads; a single unguarded write to state the rest of the class
    protects with ``_state_lock`` reintroduces the lost-update races
    the ledger's exactness contract forbids.
    """

    id = "SKY605"
    name = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "Lock discipline: if any write to `self.x.y` in a class happens "
        "inside `with <lock>:`, every write to that attribute path in "
        "the class must be guarded too (except in __init__). "
        "Generalizes SKY501 beyond pool-dispatch call sites."
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for module in program.modules.values():
            by_class: Dict[str, List[Tuple[ProgramFunction, WriteFact]]] = {}
            for pf in program.functions.values():
                if pf.module is not module or pf.summary.class_name is None:
                    continue
                for write in pf.summary.writes:
                    by_class.setdefault(pf.summary.class_name, []).append(
                        (pf, write)
                    )
            for class_name, writes in sorted(by_class.items()):
                guarded_at: Dict[str, int] = {}
                for _pf, write in writes:
                    if write.guarded:
                        guarded_at.setdefault(write.target, write.site.lineno)
                if not guarded_at:
                    continue
                for _pf, write in writes:
                    if (
                        write.guarded
                        or write.method == "__init__"
                        or write.target not in guarded_at
                    ):
                        continue
                    yield self.finding_at(
                        module,
                        write.site,
                        f"`{write.target}` is written under a lock at "
                        f"{module.relpath}:{guarded_at[write.target]} "
                        f"but unguarded here in `{class_name}."
                        f"{write.method}`; hold the same lock at every "
                        "write site or the guarded sites protect nothing",
                    )

"""SKY101/SKY102 — protocol-accounting and emission discipline.

SKY101 — protocol-accounting: every site RPC is billed.

The paper's contribution *is* the bandwidth ledger: Eq. 10 prices a
DSUD run in transmitted tuples, Corollary 1 bounds a degraded one, and
every experiment figure is a read of :class:`~repro.net.stats.NetworkStats`.
A coordinator-side call onto a site endpoint that is not paired with
accounting silently falsifies all of that — the protocol still answers
correctly, but the books no longer match the messages.

The rule therefore walks every top-level function in ``distributed/``
(excluding ``site.py``, which *is* the endpoint, so its self-calls are
not messages): if the function invokes a :class:`SiteEndpoint` method
on a non-``self`` receiver, the same function must also contain an
accounting call — ``stats.record(...)`` or one of the repo's billing
helpers (``_account`` / ``_lan`` / ``_tuple_message`` /
``_control_message`` / ``record_round``).  Calls inside nested defs and
lambdas count toward their outermost enclosing function, matching how
the coordinator wraps RPC thunks.

SKY102 — emission-discipline: results leave through the coverage-aware
funnel.

Under ``limit=`` a resolved tuple's probability may be a mere
Corollary-1 *upper bound* (a site was DOWN during its broadcast); the
``Coordinator.emit`` funnel buffers it with its live ``TupleCoverage``
so reintegration re-scores it before release, and ``drain_topk`` caps
early stop by what a DOWN site could still surface.  A run loop that
calls ``self.report(...)`` or ``buffer.offer(...)`` directly freezes
the bound at offer time and reintroduces the chaos × ``limit=``
unsoundness this machinery exists to close.  Passing ``self.report``
*as a callback* (the drain path) stays legal — only direct calls
outside ``emit`` are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name

__all__ = [
    "ProtocolAccountingRule",
    "EmissionDisciplineRule",
    "RPC_METHODS",
    "ACCOUNTING_MARKERS",
]

#: The SiteEndpoint surface (plus the strawman bulk-ship calls and the
#: continuous-query stream-site surface): invoking any of these on
#: another object is a protocol message.
RPC_METHODS = frozenset(
    {
        "prepare",
        "pop_representative",
        "probe_and_prune",
        "probe_and_prune_batch",
        "queue_size",
        "fast_forward",
        "partition_digest",
        "ship_all",
        "ship_local_skyline",
        "probe",
        "probe_batch",
        "dominated_local_candidates",
        "set_replica",
        "register_group",
        "drop_group",
        "close_epoch",
        "sync_candidates",
    }
)

#: A call whose dotted name ends in one of these counts as accounting.
ACCOUNTING_MARKERS = (
    "record",
    "record_round",
    "record_rpc_time",
    "_account",
    "_lan",
    "_tuple_message",
    "_control_message",
)


def _is_rpc_call(node: ast.Call) -> Optional[str]:
    """The RPC method name if this call hits a site endpoint, else None."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in RPC_METHODS:
        return None
    receiver = dotted_name(func.value)
    if receiver == "self" or receiver.startswith("self."):
        return None
    return func.attr


def _is_accounting_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    tail = name.split(".")[-1]
    return tail in ACCOUNTING_MARKERS


class ProtocolAccountingRule(Rule):
    id = "SKY101"
    name = "protocol-accounting"
    severity = Severity.ERROR
    description = (
        "Site RPC without NetworkStats accounting in the same function: "
        "every message must hit the Eq. 10 / Corollary 1 bandwidth books, "
        "or the paper's central metric under-counts. Fallback for "
        "per-file runs; whole-program runs use SKY602's path-sensitive "
        "version instead."
    )
    superseded_by = "SKY602"

    def applies_to(self, module: ModuleContext) -> bool:
        if module.relpath.endswith(("distributed/site.py", "stream/site.py")):
            # These modules *are* the endpoints: their calls onto the
            # local engine are compute, not messages.
            return False
        return "distributed/" in module.relpath or "stream/" in module.relpath

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        if "SKY602" in project.superseding:
            # The interprocedural billing rule subsumes this
            # same-function approximation (and legalises the
            # billed-in-a-wrapper pattern it cannot see).
            return
        # Group every call by its outermost enclosing function so that
        # RPC thunks defined inline (lambdas, nested `probe` helpers)
        # are judged against the function that actually runs them.
        buckets: Dict[ast.AST, Tuple[List[Tuple[ast.Call, str]], List[ast.Call]]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            scope = self._outermost_function(module, node)
            if scope is None:
                continue
            rpcs, bills = buckets.setdefault(scope, ([], []))
            method = _is_rpc_call(node)
            if method is not None:
                rpcs.append((node, method))
            elif _is_accounting_call(node):
                bills.append(node)
        for scope, (rpcs, bills) in buckets.items():
            if not rpcs or bills:
                continue
            for call, method in rpcs:
                yield module.finding(
                    self,
                    call,
                    f"site RPC `{dotted_name(call.func)}(...)` "
                    f"({method}) has no NetworkStats accounting anywhere in "
                    f"`{scope.name}`; bill it (stats.record / _account / "  # type: ignore[attr-defined]
                    "_lan / _tuple_message) or the bandwidth metric lies",
                )

    @staticmethod
    def _outermost_function(
        module: ModuleContext, node: ast.AST
    ) -> Optional[ast.AST]:
        outermost = None
        for anc in module.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                outermost = anc
        return outermost


#: The only Coordinator method allowed to invoke report/offer directly —
#: it is the coverage-aware funnel itself.
EMISSION_FUNNEL = frozenset({"emit"})


class EmissionDisciplineRule(Rule):
    id = "SKY102"
    name = "emission-discipline"
    severity = Severity.ERROR
    description = (
        "Progressive emission outside the coverage-aware funnel: a direct "
        "self.report(...) / buffer.offer(...) in a Coordinator freezes a "
        "possibly degraded (Corollary-1 upper bound) probability at offer "
        "time, bypassing the TopKBuffer/CoverageTracker re-scoring that "
        "keeps limit= queries sound under site failures."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return "distributed/" in module.relpath

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "report":
                # Only the coordinator's own report — `self.coverage
                # .report(...)` / `self.progress.report(...)` are
                # bookkeeping reads, not client emission.
                if dotted_name(func.value) != "self":
                    continue
                offence = "self.report(...)"
            elif func.attr == "offer":
                offence = f"`{dotted_name(func.value)}.offer(...)`"
            else:
                continue
            cls = module.enclosing_class(node)
            if cls is None or not project.inherits_from(cls.name, "Coordinator"):
                continue
            enclosing = module.enclosing_function(node)
            if enclosing is not None and enclosing.name in EMISSION_FUNNEL:
                continue
            yield module.finding(
                self,
                node,
                f"{offence} bypasses the coverage-aware emission funnel; "
                "route resolved candidates through `self.emit(t, p)` (and "
                "`self.drain_topk(...)` / `self.finish_topk()` for limit= "
                "release) so degraded bounds re-score before release",
            )

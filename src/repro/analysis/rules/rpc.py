"""SKY401 — rpc-discipline: coordinator→site calls ride the fault funnel.

PR 1 made site failure a first-class protocol event: every
coordinator→site RPC flows through :meth:`Coordinator._rpc`, which
retries under the :class:`RetryPolicy`, escalates exhausted retries to
the lifecycle FSM, and keeps the Corollary-1 coverage books honest.  A
direct endpoint call from a coordinator bypasses all of it — one
transport fault unwinds the whole query instead of degrading it.

The rule checks functions of classes that (transitively) subclass
``Coordinator`` inside ``distributed/``.  A site-endpoint call on a
non-``self`` receiver is legal only when it is

* inside ``_rpc`` itself (the funnel's own body),
* inside a lambda/nested function passed as an argument to
  ``self._rpc(...)`` or ``call_with_retry(...)``, or
* inside a ``try`` whose handler catches ``RETRYABLE_FAULTS`` (the
  deliberately unretried single-shot liveness probe pattern).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name
from .protocol import RPC_METHODS, _is_rpc_call

__all__ = ["RpcDisciplineRule"]

#: Function names whose call arguments are the fault-aware path.
_FUNNELS = ("_rpc", "call_with_retry")


class RpcDisciplineRule(Rule):
    id = "SKY401"
    name = "rpc-discipline"
    severity = Severity.ERROR
    description = (
        "Coordinator→site RPC outside the _rpc/RetryPolicy funnel: a direct "
        "endpoint call turns one transport fault into a full-query failure "
        "instead of a Corollary-1 degraded answer."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return "distributed/" in module.relpath

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _is_rpc_call(node)
            if method is None:
                continue
            cls = module.enclosing_class(node)
            if cls is None or not project.inherits_from(cls.name, "Coordinator"):
                continue  # regions/maintainers have their own surfaces
            if self._funnelled(module, node):
                continue
            yield module.finding(
                self,
                node,
                f"`{dotted_name(node.func)}(...)` is a direct site RPC; wrap "
                f'it as `self._rpc(site, "{method}", lambda: ...)` so retries, '
                "FSM escalation, and coverage tracking apply",
            )

    def _funnelled(self, module: ModuleContext, node: ast.Call) -> bool:
        previous: ast.AST = node
        for anc in module.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if anc.name == "_rpc":
                    return True
            if isinstance(anc, ast.Try) and previous in anc.body:
                if self._catches_retryable(anc):
                    return True
            if isinstance(anc, ast.Call) and previous is not anc:
                tail = dotted_name(anc.func).split(".")[-1]
                if tail in _FUNNELS and previous in anc.args:
                    return True
            previous = anc
        return False

    @staticmethod
    def _catches_retryable(node: ast.Try) -> bool:
        for handler in node.handlers:
            if handler.type is None:
                continue
            for sub in ast.walk(handler.type):
                if isinstance(sub, ast.Name) and sub.id == "RETRYABLE_FAULTS":
                    return True
                if isinstance(sub, ast.Attribute) and sub.attr == "RETRYABLE_FAULTS":
                    return True
        return False

"""SKY501 — thread-shared-state: attribute writes reachable from pool workers.

PR 2 gave the coordinator a lifetime :class:`ThreadPoolExecutor`; every
parallel broadcast runs its probe thunks on worker threads.  Any
``self``-rooted attribute those thunks write — directly or through
methods they call — is shared mutable state, and an unlocked
read-modify-write (``self.stats.sites_lost += 1``) is a lost-update
race: two sites failing in the same broadcast can be booked as one.

The heuristic:

1. Find executor dispatches — ``X.map(fn, …)`` / ``X.submit(fn, …)``
   where ``X``'s dotted form mentions ``pool`` or ``executor`` (the
   lazily-built ``self._broadcast_pool()`` renders as
   ``self._broadcast_pool().map``).
2. Resolve ``fn`` to a local ``lambda``/``def`` in the same scope.
3. Collect attribute writes in its body, following ``self.method()``
   calls transitively through the same class (visited-set bounded).
4. Report ``+=``-style augmented writes not under a ``with …lock…:``
   block as errors; plain assignments written both inside and outside
   the thread-reachable region (excluding ``__init__``) as warnings.

It is deliberately a *heuristic* — cross-class flows (e.g. methods of
``NetworkStats`` called from workers) are out of reach; the rule's job
is the pattern that actually bit this codebase.

PR 7 added *process* pools (:mod:`repro.distributed.workers`), which
sharpen the failure mode: a ``self`` attribute written inside a
callable submitted to a ``ProcessPoolExecutor`` does not race — it
mutates a **pickled copy** in the child and is silently discarded, and
no lock helps, because locks do not cross process boundaries either.
Dispatches whose receiver mentions ``process`` (or is a name bound to
``ProcessPoolExecutor(...)``) therefore flag *every* reachable
``self`` write, locked or not: state must cross a process boundary via
explicit serialization — ship arrays in, return a payload out — never
through shared mutation.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name

__all__ = ["ThreadSharedStateRule"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _attribute_target(node: ast.AST) -> Optional[str]:
    """Dotted form of a ``self``-rooted attribute write target."""
    if isinstance(node, ast.Attribute):
        name = dotted_name(node)
        if name.startswith("self."):
            return name
    if isinstance(node, ast.Subscript):
        return _attribute_target(node.value)
    return None


def _under_lock(module: ModuleContext, node: ast.AST) -> bool:
    for anc in module.ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if "lock" in dotted_name(item.context_expr).lower():
                    return True
    return False


class ThreadSharedStateRule(Rule):
    id = "SKY501"
    name = "thread-shared-state"
    severity = Severity.ERROR
    description = (
        "self attribute written from executor-submitted callables without a "
        "lock: broadcast workers run concurrently, so unlocked += on shared "
        "counters (NetworkStats, FSM state) loses updates.  In process-pool "
        "callables any self write is flagged — it mutates a pickled copy, "
        "and locks do not cross process boundaries."
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(module, cls)

    # ------------------------------------------------------------------

    def _check_class(self, module: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        methods: Dict[str, _FunctionNode] = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        process_aliases = self._process_pool_aliases(module)
        dispatches = self._executor_callables(module, cls, methods, process_aliases)
        if not dispatches:
            return
        # Process-pool callables first: any reachable self write is a
        # lost update by construction (it mutates the child's pickled
        # copy), so locks are no defence and there is no warning tier.
        process_entry = [fn for fn, is_process in dispatches if is_process]
        process_writes: List[Tuple[ast.AST, str, bool]] = []
        visited_p: Set[str] = set()
        for fn in process_entry:
            self._collect_writes(module, fn, methods, visited_p, process_writes)
        for node, target, _augmented in process_writes:
            yield module.finding(
                self,
                node,
                f"`{target}` is written inside a process-pool callable: the "
                "worker mutates a pickled copy and the write is silently "
                "lost (locks do not cross processes) — pass state in as "
                "arguments and return a serialized payload instead",
            )
        entry_points = [fn for fn, is_process in dispatches if not is_process]
        if not entry_points:
            return
        # Every self-attribute write reachable from a worker thread.
        threaded_writes: List[Tuple[ast.AST, str, bool]] = []
        visited: Set[str] = set()
        for fn in entry_points:
            self._collect_writes(module, fn, methods, visited, threaded_writes)
        if not threaded_writes:
            return
        threaded_targets = {target for _n, target, _aug in threaded_writes}
        for node, target, augmented in threaded_writes:
            if _under_lock(module, node):
                continue
            if augmented:
                yield module.finding(
                    self,
                    node,
                    f"`{target} +=` runs on broadcast-pool worker threads; "
                    "the read-modify-write needs a lock (two concurrent "
                    "failures would be booked as one)",
                )
        # Plain assigns: racy only if the same attribute is also written
        # outside the thread-reachable region (construction aside).
        for fn_name, fn in methods.items():
            if fn_name == "__init__" or fn in entry_points:
                continue
            for node, target, augmented in self._direct_writes(fn):
                if augmented or target not in threaded_targets:
                    continue
                if any(n is node for n, _t, _a in threaded_writes):
                    continue
                if _under_lock(module, node):
                    continue
                yield module.finding(
                    self,
                    node,
                    f"`{target}` is written both on worker threads and in "
                    f"`{fn_name}` without a lock; reads may interleave "
                    "with broadcast workers",
                    severity=Severity.WARNING,
                )

    # ------------------------------------------------------------------

    @staticmethod
    def _process_pool_aliases(module: ModuleContext) -> Set[str]:
        """Names bound to ``ProcessPoolExecutor(...)`` in this module.

        Covers ``pool = ProcessPoolExecutor()``, ``self._pool =
        ProcessPoolExecutor()`` and ``with ProcessPoolExecutor() as p:``
        — so a dispatch receiver that does not say "process" is still
        classified by what it was constructed from.
        """
        aliases: Set[str] = set()

        def _ctor(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Call) and dotted_name(expr.func).endswith(
                "ProcessPoolExecutor"
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and _ctor(node.value):
                for target in node.targets:
                    aliases.add(dotted_name(target).lower())
            elif isinstance(node, ast.With):
                for item in node.items:
                    if _ctor(item.context_expr) and item.optional_vars is not None:
                        aliases.add(dotted_name(item.optional_vars).lower())
        return aliases

    def _executor_callables(
        self,
        module: ModuleContext,
        cls: ast.ClassDef,
        methods: Dict[str, _FunctionNode],
        process_aliases: Set[str],
    ) -> List[Tuple[_FunctionNode, bool]]:
        """``(callable, is_process_pool)`` for ``pool.map``/``pool.submit``."""
        out: List[Tuple[_FunctionNode, bool]] = []
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in ("map", "submit"):
                continue
            receiver = dotted_name(func.value).lower()
            if "pool" not in receiver and "executor" not in receiver:
                continue
            if not node.args:
                continue
            resolved = self._resolve_callable(module, node.args[0], methods)
            if resolved is not None:
                is_process = "process" in receiver or receiver in process_aliases
                out.append((resolved, is_process))
        return out

    def _resolve_callable(
        self,
        module: ModuleContext,
        arg: ast.expr,
        methods: Dict[str, _FunctionNode],
    ) -> Optional[_FunctionNode]:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Attribute):
            name = dotted_name(arg)
            if name.startswith("self."):
                return methods.get(name[len("self."):])
            return None
        if not isinstance(arg, ast.Name):
            return None
        if arg.id in methods:
            return methods[arg.id]
        # A local `probe = lambda …` / `def probe(…)` in the dispatching scope.
        scope = module.enclosing_function(arg)
        if scope is None:
            return None
        for node in ast.walk(scope):
            if isinstance(node, ast.FunctionDef) and node.name == arg.id:
                return node
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == arg.id:
                        return node.value
        return None

    def _collect_writes(
        self,
        module: ModuleContext,
        fn: _FunctionNode,
        methods: Dict[str, _FunctionNode],
        visited: Set[str],
        out: List[Tuple[ast.AST, str, bool]],
    ) -> None:
        out.extend(self._direct_writes(fn))
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name.startswith("self."):
                continue
            method_name = name[len("self."):]
            if "." in method_name or method_name in visited:
                continue
            callee = methods.get(method_name)
            if callee is None:
                continue
            visited.add(method_name)
            self._collect_writes(module, callee, methods, visited, out)

    @staticmethod
    def _direct_writes(fn: _FunctionNode) -> List[Tuple[ast.AST, str, bool]]:
        writes: List[Tuple[ast.AST, str, bool]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.AugAssign):
                target = _attribute_target(node.target)
                if target:
                    writes.append((node, target, True))
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    target = _attribute_target(tgt)
                    if target:
                        writes.append((node, target, False))
        return writes

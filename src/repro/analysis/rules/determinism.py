"""SKY201/SKY202 — determinism: seeded randomness, no wall clocks.

Chaos tests, synthetic workloads, and ``BENCH_kernels.json`` are
reproducible only because every random draw is a pure function of an
explicit seed (``FaultSchedule``'s jitter, ``Workload``'s generators)
and no decision reads the wall clock.  These rules keep that property
machine-checked:

* **SKY201** forbids the process-global RNGs (``random.random()``,
  ``numpy.random.rand`` …) and unseeded generator construction —
  ``random.Random()``, ``np.random.default_rng()``, or passing a
  maybe-``None`` seed parameter straight through without a default.
* **SKY202** forbids wall-clock reads (``time.time``,
  ``datetime.now`` …).  The monotonic/CPU clocks used for *measuring*
  (``perf_counter``, ``process_time``, ``monotonic``) stay legal: they
  feed reports, never decisions.

Benchmark drivers, the CLI entry points, and the real-socket transport
are exempt — wall time and OS entropy are their job.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name

__all__ = ["UnseededRandomRule", "WallClockRule"]

#: Paths where nondeterminism is the point, not a bug.
EXEMPT_PATH_PARTS = ("bench/", "/cli.py", "/__main__.py", "net/sockets.py")

#: Additional wall-clock-only exemptions: benchmark and example drivers
#: time real runs (SKY202 would flag their wall-clock stamps), but their
#: *workloads* must still replay from explicit seeds (SKY201 stays on).
WALL_CLOCK_EXEMPT_PARTS = EXEMPT_PATH_PARTS + ("benchmarks/", "examples/")

#: ``random.<attr>`` calls that are fine: explicit-seed construction and
#: state plumbing.  Everything else on the module object draws from the
#: hidden process-global generator.
_RANDOM_MODULE_OK = {"Random", "SystemRandom", "getstate", "setstate"}

#: Legacy ``numpy.random`` module-level functions (global RandomState).
_NUMPY_LEGACY_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "BitGenerator"}

_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


def _path_exempt(module: ModuleContext) -> bool:
    path = "/" + module.relpath
    return any(part in path for part in EXEMPT_PATH_PARTS)


def _may_evaluate_none(node: ast.AST) -> bool:
    """True if the expression can *evaluate to* ``None``.

    Only positions whose value can become the result count: an
    ``IfExp``'s body/orelse (not its test — ``0 if seed is None else
    seed`` is the correct normalisation and must stay clean) and a
    ``BoolOp``'s operands.
    """
    if isinstance(node, ast.Constant):
        return node.value is None
    if isinstance(node, ast.IfExp):
        return _may_evaluate_none(node.body) or _may_evaluate_none(node.orelse)
    if isinstance(node, ast.BoolOp):
        return any(_may_evaluate_none(v) for v in node.values)
    return False


def _maybe_none_parameter(
    module: ModuleContext, call: ast.Call, arg: ast.expr
) -> Optional[str]:
    """Name of a param that can still be ``None`` at this call, if any.

    Flags ``default_rng(seed)`` where ``seed`` is a parameter whose
    default is ``None`` and which was never reassigned earlier in the
    function — the caller-forgot-a-seed path that silently loses
    reproducibility.
    """
    if not isinstance(arg, ast.Name):
        return None
    fn = module.enclosing_function(call)
    if fn is None:
        return None
    args = fn.args
    params = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    defaulted = dict(zip([p.arg for p in params[len(params) - len(defaults):]], defaults))
    for kwarg, kwdefault in zip(args.kwonlyargs, args.kw_defaults):
        if kwdefault is not None:
            defaulted[kwarg.arg] = kwdefault
    default = defaulted.get(arg.id)
    if default is None or not (
        isinstance(default, ast.Constant) and default.value is None
    ):
        return None
    # A prior assignment (e.g. ``seed = 0 if seed is None else seed``)
    # counts as normalisation and clears the flag.
    for node in ast.walk(fn):
        if getattr(node, "lineno", 10**9) >= call.lineno:
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == arg.id:
                    return None
    return arg.id


class UnseededRandomRule(Rule):
    id = "SKY201"
    name = "determinism-rng"
    severity = Severity.ERROR
    description = (
        "Unseeded or process-global RNG use outside bench/CLI/socket code: "
        "every draw must come from an explicitly seeded generator so chaos "
        "runs and synthetic workloads replay exactly."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return not _path_exempt(module)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        imported = _imported_random_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            yield from self._check_global_rng(module, node, name, imported)
            yield from self._check_ctor(module, node, name)

    def _check_global_rng(
        self,
        module: ModuleContext,
        node: ast.Call,
        name: str,
        imported: Set[str],
    ) -> Iterator[Finding]:
        parts = name.split(".")
        if parts[0] == "random" and "random" in imported:
            if len(parts) == 2 and parts[1] not in _RANDOM_MODULE_OK:
                yield module.finding(
                    self,
                    node,
                    f"`{name}(...)` draws from the process-global RNG; "
                    "construct a `random.Random(seed)` and thread it through",
                )
        if parts[:2] in (["np", "random"], ["numpy", "random"]):
            if len(parts) == 3 and parts[2] not in _NUMPY_LEGACY_OK:
                yield module.finding(
                    self,
                    node,
                    f"`{name}(...)` uses numpy's legacy global RandomState; "
                    "use an explicitly seeded `np.random.default_rng(seed)`",
                )

    def _check_ctor(
        self, module: ModuleContext, node: ast.Call, name: str
    ) -> Iterator[Finding]:
        is_random_ctor = name in ("random.Random", "Random")
        is_default_rng = name.endswith("default_rng")
        if not (is_random_ctor or is_default_rng):
            return
        label = "random.Random" if is_random_ctor else "np.random.default_rng"
        if not node.args and not node.keywords:
            yield module.finding(
                self,
                node,
                f"`{label}()` without a seed is entropy-seeded and "
                "unreproducible; pass an explicit seed",
            )
            return
        seed_arg: Optional[ast.expr] = node.args[0] if node.args else None
        if seed_arg is None:
            for kw in node.keywords:
                if kw.arg in ("seed", "x"):
                    seed_arg = kw.value
        if seed_arg is None:
            return
        if _may_evaluate_none(seed_arg):
            yield module.finding(
                self,
                node,
                f"`{label}(...)` can receive `None` here, which falls back "
                "to OS entropy; normalise the seed to an int first",
            )
            return
        param = _maybe_none_parameter(module, node, seed_arg)
        if param is not None:
            yield module.finding(
                self,
                node,
                f"`{label}({param})` where `{param}` defaults to None: the "
                "no-argument path is unseeded; default the seed to an int "
                f"or normalise `{param}` before constructing the generator",
            )


class WallClockRule(Rule):
    id = "SKY202"
    name = "determinism-clock"
    severity = Severity.ERROR
    description = (
        "Wall-clock reads (time.time, datetime.now) outside bench/CLI/socket "
        "code: simulated time comes from LatencyModel and measurements from "
        "the monotonic/CPU clocks, so reruns never depend on the real clock."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        path = "/" + module.relpath
        return not any(part in path for part in WALL_CLOCK_EXEMPT_PARTS)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCKS:
                yield module.finding(
                    self,
                    node,
                    f"`{name}()` reads the wall clock; use "
                    "`time.perf_counter`/`time.process_time` for measurement "
                    "or the simulated `LatencyModel` clock for protocol time",
                )


def _imported_random_names(module: ModuleContext) -> Set[str]:
    """Top-level module names imported as ``random`` (guards false hits
    on unrelated locals that happen to be called ``random``)."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names

"""SKY301/SKY302 — probability-safety: no float-equality, no raw ∏(1−P).

The paper's arithmetic is a web of non-occurrence products: Eq. 3
(``P_sky = P(t)·∏(1−P(t'))``), Eq. 9 (the foreign-site factor), the
Local-Pruning bound, Lemma 1's cross-site combination.
:mod:`repro.core.probability` implements each exactly once, with the
floor-based early exit every threshold test depends on.  Ad-hoc copies
are where correctness drifts (arXiv:2303.00259 documents exactly this
failure mode for restricted-skyline code): a re-rolled loop product
associates differently, forgets the self-key exclusion, or loses the
floor semantics.

* **SKY301** flags ``==``/``!=`` between probability-typed float
  expressions — threshold logic must use ``<``/``>=`` (or an explicit
  tolerance), never exact float equality.
* **SKY302** flags loop products over ``(1 − P)`` terms — an
  ``*=``-accumulation inside a loop, or ``math.prod``/``np.prod`` over
  ``1 - p`` elements — outside the blessed helper module.  Vectorised
  kernels (``core/kernels.py``) and the §6 index traversals are exempt:
  they implement Eq. 9 over column masks / subtree aggregates that the
  flat helpers cannot express, and the exactness suite diffs them
  against the helpers directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name

__all__ = ["FloatEqualityRule", "RawNonOccurrenceProductRule"]

#: Identifier fragments that mark an expression as probability-valued.
_PROB_MARKERS = ("prob", "factor", "likelihood", "p_sky", "psky")

#: Modules allowed to spell the arithmetic out directly.
_EXEMPT_PARTS = (
    "core/probability.py",   # the helpers themselves
    "core/kernels.py",       # vectorised column kernels (diffed vs helpers)
    "core/tuples.py",        # the (1 − P) accessor definition
    "index/",                # §6 tree traversals over subtree aggregates
)


def _probability_typed(node: ast.AST) -> bool:
    """Heuristic: does this expression smell like a probability?"""
    for sub in ast.walk(node):
        name = ""
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        lowered = name.lower()
        if any(marker in lowered for marker in _PROB_MARKERS):
            return True
    return False


def _is_float_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_one_minus_probability(node: ast.AST) -> bool:
    """Matches ``1 - <probability expr>`` / ``1.0 - <probability expr>``."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and isinstance(node.left, ast.Constant)
        and node.left.value in (1, 1.0)
        and _probability_typed(node.right)
    )


def _contains_one_minus_probability(node: ast.AST) -> bool:
    return any(_is_one_minus_probability(sub) for sub in ast.walk(node))


def _path_exempt(module: ModuleContext) -> bool:
    return any(part in module.relpath for part in _EXEMPT_PARTS)


class FloatEqualityRule(Rule):
    id = "SKY301"
    name = "probability-float-equality"
    severity = Severity.ERROR
    description = (
        "==/!= between float probability expressions: threshold semantics "
        "(Eq. 3, P_sky >= q) are order comparisons; exact float equality on "
        "a product of (1 - P) terms is a latent always-false branch."
    )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                prob_side = any(_probability_typed(x) for x in pair)
                float_side = any(_is_float_constant(x) for x in pair)
                # Flag p == p2 (both probability-typed) and p == 0.5
                # (probability vs float literal).  Integer sentinels
                # (e.g. `count == 0`) stay legal.
                if prob_side and (
                    float_side or all(_probability_typed(x) for x in pair)
                ):
                    op_text = "==" if isinstance(op, ast.Eq) else "!="
                    yield module.finding(
                        self,
                        node,
                        f"float probability compared with `{op_text}`; use an "
                        "order comparison against the threshold or an explicit "
                        "tolerance",
                    )
                    break


class RawNonOccurrenceProductRule(Rule):
    id = "SKY302"
    name = "probability-raw-product"
    severity = Severity.ERROR
    description = (
        "Loop product over (1 - P) terms outside core.probability: re-rolled "
        "Eq. 3/9 products drift (association order, self-key exclusion, "
        "floor early-exit); use non_occurrence_product / skyline_probability "
        "/ feedback_pruning_bound instead."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return not _path_exempt(module)

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.AugAssign, ast.Assign)):
                yield from self._check_accumulation(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_prod_call(module, node)

    def _check_accumulation(self, module: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.op, ast.Mult):
                return
            value = node.value
        else:
            value = node.value  # type: ignore[union-attr]
            if not (isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult)):
                return
        if not _contains_one_minus_probability(value):
            return
        if not self._inside_loop(module, node):
            return
        yield module.finding(
            self,
            node,
            "loop product over (1 - P) terms; route through the "
            "core.probability helpers (non_occurrence_product / "
            "feedback_pruning_bound) so exclusion and floor semantics "
            "stay in one place",
        )

    def _check_prod_call(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name.split(".")[-1] != "prod":
            return
        if any(_contains_one_minus_probability(arg) for arg in node.args):
            yield module.finding(
                self,
                node,
                f"`{name}` over (1 - P) terms bypasses core.probability; "
                "use non_occurrence_product (it also gives the floor "
                "early-exit for free)",
            )

    @staticmethod
    def _inside_loop(module: ModuleContext, node: ast.AST) -> bool:
        for anc in module.ancestors(node):
            if isinstance(anc, (ast.For, ast.While)):
                return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

"""SKY503 — asyncio-discipline: the serving layer never blocks its loop.

The serving layer (PR 6) multiplexes every concurrent query session —
and every async transport exchange — over **one** event loop.  That
design has two failure modes generic linters miss:

* a *blocking* call inside an ``async def`` (``time.sleep``, a raw
  ``socket`` dial, a bare ``select``) stalls the whole service: every
  in-flight session's latency inherits the stall, and the load-test
  percentiles silently measure the bug instead of the protocol;
* a *fire-and-forget* task — ``asyncio.create_task(...)`` /
  ``ensure_future(...)`` as a bare expression statement — drops the
  only strong reference to the task, so the event loop may garbage-
  collect it mid-flight and its exceptions vanish instead of failing
  the query that spawned it.

The rule is scoped to the async modules (``repro/serve/``,
``repro/net/aio.py``, and the worker-pool module
``repro/distributed/workers.py``): blocking calls elsewhere are legal
(the threaded transport in ``net/sockets.py`` *should* block), and the
repo-wide clock rule (SKY202) already polices ``time.time``.

The worker-pool module adds a third failure mode: a *blocking pool
join* — ``pool.shutdown(...)`` / ``pool.join(...)`` on an executor
receiver inside an ``async def`` — parks the loop until every queued
table build drains.  Teardown belongs in sync ``close()`` paths; async
code awaits ``asyncio.wrap_future`` handles instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name

__all__ = ["AsyncioDisciplineRule"]

#: Dotted call forms that block the thread — and therefore the loop.
_BLOCKING = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.socketpair",
        "select.select",
    }
)

#: Task-spawning calls whose return value must be kept.
_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Executor methods that block until queued work drains.
_POOL_JOINS = frozenset({"shutdown", "join"})


class AsyncioDisciplineRule(Rule):
    id = "SKY503"
    name = "asyncio-discipline"
    severity = Severity.ERROR
    description = (
        "Event-loop discipline in the serving layer: no blocking "
        "sleep/socket calls inside `async def` (one stall freezes every "
        "in-flight session), no blocking pool joins/shutdowns in "
        "`async def` (teardown belongs in sync close paths), and no "
        "fire-and-forget create_task (a dropped reference loses the "
        "task and swallows its exceptions). The blocking and pool-join "
        "checks are the per-file fallback for SKY601, which follows "
        "calls through sync helpers."
    )
    superseded_by = "SKY601"

    def applies_to(self, module: ModuleContext) -> bool:
        return (
            "repro/serve/" in module.relpath
            or module.relpath.endswith("net/aio.py")
            or module.relpath.endswith("distributed/workers.py")
        )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        # SKY601 reports every blocking/pool-join case below *plus* the
        # transitive ones this rule's single-function view cannot see;
        # under it, only the fire-and-forget check (which SKY601 does
        # not cover) remains ours.
        transitive = "SKY601" in project.superseding
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if transitive:
                if name.split(".")[-1] in _SPAWNERS and self._is_dropped(module, node):
                    yield module.finding(
                        self,
                        node,
                        f"fire-and-forget `{name}(...)`: nothing holds the "
                        "task, so the loop may garbage-collect it mid-flight "
                        "and its exceptions vanish — store the handle and "
                        "await (or cancel) it on close",
                    )
                continue
            if name in _BLOCKING and self._in_async_def(module, node):
                yield module.finding(
                    self,
                    node,
                    f"`{name}(...)` blocks the event loop; every other "
                    "in-flight session stalls with it — use the asyncio "
                    "equivalent (`await asyncio.sleep`, "
                    "`asyncio.open_connection`, …)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_JOINS
                and self._is_pool_receiver(node.func)
                and self._in_async_def(module, node)
            ):
                yield module.finding(
                    self,
                    node,
                    f"`{name}(...)` blocks the loop until every queued "
                    "worker job drains; tear pools down from a sync "
                    "`close()` (or hand the wait to a thread) — async "
                    "code should await `asyncio.wrap_future` handles",
                )
            elif name.split(".")[-1] in _SPAWNERS and self._is_dropped(module, node):
                yield module.finding(
                    self,
                    node,
                    f"fire-and-forget `{name}(...)`: nothing holds the "
                    "task, so the loop may garbage-collect it mid-flight "
                    "and its exceptions vanish — store the handle and "
                    "await (or cancel) it on close",
                )

    @staticmethod
    def _is_pool_receiver(func: ast.Attribute) -> bool:
        """True when the method's receiver looks like an executor."""
        receiver = dotted_name(func.value).lower()
        return "pool" in receiver or "executor" in receiver

    @staticmethod
    def _in_async_def(module: ModuleContext, node: ast.AST) -> bool:
        """True when the nearest enclosing function is ``async def``.

        A blocking call inside a *sync* helper nested in an async scope
        is out of reach here (resolving who calls it needs flow
        analysis); the pattern that bites is the direct one.
        """
        return isinstance(module.enclosing_function(node), ast.AsyncFunctionDef)

    @staticmethod
    def _is_dropped(module: ModuleContext, node: ast.Call) -> bool:
        """True when the spawned task's handle is discarded.

        Only a *bare expression statement* drops the reference —
        assignments, ``append(...)`` arguments, comprehension elements,
        returns, and awaits all keep (or consume) the handle.
        """
        parent = module.parent(node)
        return isinstance(parent, ast.Expr)

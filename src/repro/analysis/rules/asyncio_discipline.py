"""SKY503 — asyncio-discipline: the serving layer never blocks its loop.

The serving layer (PR 6) multiplexes every concurrent query session —
and every async transport exchange — over **one** event loop.  That
design has two failure modes generic linters miss:

* a *blocking* call inside an ``async def`` (``time.sleep``, a raw
  ``socket`` dial, a bare ``select``) stalls the whole service: every
  in-flight session's latency inherits the stall, and the load-test
  percentiles silently measure the bug instead of the protocol;
* a *fire-and-forget* task — ``asyncio.create_task(...)`` /
  ``ensure_future(...)`` as a bare expression statement — drops the
  only strong reference to the task, so the event loop may garbage-
  collect it mid-flight and its exceptions vanish instead of failing
  the query that spawned it.

The rule is scoped to the async modules (``repro/serve/`` and
``repro/net/aio.py``): blocking calls elsewhere are legal (the
threaded transport in ``net/sockets.py`` *should* block), and the
repo-wide clock rule (SKY202) already polices ``time.time``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name

__all__ = ["AsyncioDisciplineRule"]

#: Dotted call forms that block the thread — and therefore the loop.
_BLOCKING = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.socketpair",
        "select.select",
    }
)

#: Task-spawning calls whose return value must be kept.
_SPAWNERS = frozenset({"create_task", "ensure_future"})


class AsyncioDisciplineRule(Rule):
    id = "SKY503"
    name = "asyncio-discipline"
    severity = Severity.ERROR
    description = (
        "Event-loop discipline in the serving layer: no blocking "
        "sleep/socket calls inside `async def` (one stall freezes every "
        "in-flight session), and no fire-and-forget create_task (a "
        "dropped reference loses the task and swallows its exceptions)."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return (
            "repro/serve/" in module.relpath
            or module.relpath.endswith("net/aio.py")
        )

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _BLOCKING and self._in_async_def(module, node):
                yield module.finding(
                    self,
                    node,
                    f"`{name}(...)` blocks the event loop; every other "
                    "in-flight session stalls with it — use the asyncio "
                    "equivalent (`await asyncio.sleep`, "
                    "`asyncio.open_connection`, …)",
                )
            elif name.split(".")[-1] in _SPAWNERS and self._is_dropped(module, node):
                yield module.finding(
                    self,
                    node,
                    f"fire-and-forget `{name}(...)`: nothing holds the "
                    "task, so the loop may garbage-collect it mid-flight "
                    "and its exceptions vanish — store the handle and "
                    "await (or cancel) it on close",
                )

    @staticmethod
    def _in_async_def(module: ModuleContext, node: ast.AST) -> bool:
        """True when the nearest enclosing function is ``async def``.

        A blocking call inside a *sync* helper nested in an async scope
        is out of reach here (resolving who calls it needs flow
        analysis); the pattern that bites is the direct one.
        """
        return isinstance(module.enclosing_function(node), ast.AsyncFunctionDef)

    @staticmethod
    def _is_dropped(module: ModuleContext, node: ast.Call) -> bool:
        """True when the spawned task's handle is discarded.

        Only a *bare expression statement* drops the reference —
        assignments, ``append(...)`` arguments, comprehension elements,
        returns, and awaits all keep (or consume) the handle.
        """
        parent = module.parent(node)
        return isinstance(parent, ast.Expr)

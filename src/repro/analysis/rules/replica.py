"""SKY103 — replica-accounting: every replica-path RPC is billed.

The replication subsystem moves the same §3.2 currency the query
protocol does — provisioning ships whole partitions, write-forwarding
ships one tuple per forwarded insert, anti-entropy crosses digests and
ships repair diffs.  If any of those touches a replica endpoint without
a :class:`~repro.net.stats.NetworkStats` entry in the same function,
the rf≥2 bandwidth comparison (the whole point of the replica bench)
silently under-counts, exactly the failure mode SKY101 closes for the
coordinator.

The rule is SKY101's twin for ``replica/`` modules: any function that
invokes a site-endpoint method — the query surface *plus* the
maintenance surface replicas add (``insert_tuple`` / ``delete_tuple`` /
``fast_forward`` / ``partition_digest``) — on a non-``self`` receiver
must also contain an accounting call (``stats.record`` or one of the
billing helpers).  Nested defs and lambdas count toward their
outermost enclosing function.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import Finding, ModuleContext, Project, Rule, Severity, dotted_name
from .protocol import ACCOUNTING_MARKERS, RPC_METHODS

__all__ = ["ReplicaAccountingRule", "REPLICA_RPC_METHODS"]

#: The replica path speaks the full endpoint surface plus the
#: maintenance calls the coordinator never issues directly.
REPLICA_RPC_METHODS = RPC_METHODS | frozenset(
    {
        "insert_tuple",
        "delete_tuple",
        "fast_forward",
        "partition_digest",
    }
)


def _is_replica_rpc_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in REPLICA_RPC_METHODS:
        return None
    receiver = dotted_name(func.value)
    if receiver == "self" or receiver.startswith("self."):
        return None
    return func.attr


def _is_accounting_call(node: ast.Call) -> bool:
    tail = dotted_name(node.func).split(".")[-1]
    return tail in ACCOUNTING_MARKERS


class ReplicaAccountingRule(Rule):
    id = "SKY103"
    name = "replica-accounting"
    severity = Severity.ERROR
    description = (
        "Replica-path RPC without NetworkStats accounting in the same "
        "function: provisioning, write-forwarding, digests, and repairs "
        "are real wide-area traffic, or the rf>=2 bandwidth comparison "
        "under-counts."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return "replica/" in module.relpath

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        buckets: Dict[ast.AST, Tuple[List[Tuple[ast.Call, str]], List[ast.Call]]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            scope = self._outermost_function(module, node)
            if scope is None:
                continue
            rpcs, bills = buckets.setdefault(scope, ([], []))
            method = _is_replica_rpc_call(node)
            if method is not None:
                rpcs.append((node, method))
            elif _is_accounting_call(node):
                bills.append(node)
        for scope, (rpcs, bills) in buckets.items():
            if not rpcs or bills:
                continue
            for call, method in rpcs:
                yield module.finding(
                    self,
                    call,
                    f"replica-path RPC `{dotted_name(call.func)}(...)` "
                    f"({method}) has no NetworkStats accounting anywhere "
                    f"in `{scope.name}`; bill it "  # type: ignore[attr-defined]
                    "(stats.record / _account) or the rf>=2 bandwidth "
                    "books lie",
                )

    @staticmethod
    def _outermost_function(
        module: ModuleContext, node: ast.AST
    ) -> Optional[ast.AST]:
        outermost = None
        for anc in module.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                outermost = anc
        return outermost

"""The skylint rule registry.

Every rule family lives in its own module; :data:`ALL_RULES` is the
canonical ordered registry of per-module rules and
:data:`PROGRAM_RULES` the whole-program (SKY6xx) family.  The CLI and
the self-check tests run both; per-file callers (editor integrations,
unit fixtures) may run :data:`ALL_RULES` alone, in which case the
superseded module rules (SKY101, SKY503's blocking checks) act as
single-function fallbacks.
"""

from __future__ import annotations

from typing import Dict, List

from ..callgraph import ProgramRule
from ..framework import Rule
from .asyncio_discipline import AsyncioDisciplineRule
from .concurrency import ThreadSharedStateRule
from .determinism import UnseededRandomRule, WallClockRule
from .interprocedural import (
    InterproceduralBillingRule,
    LedgerSymmetryRule,
    LockDisciplineRule,
    SeedProvenanceRule,
    TransitiveBlockingRule,
)
from .probability import FloatEqualityRule, RawNonOccurrenceProductRule
from .protocol import EmissionDisciplineRule, ProtocolAccountingRule
from .replica import ReplicaAccountingRule
from .rpc import RpcDisciplineRule

__all__ = ["ALL_RULES", "PROGRAM_RULES", "rules_by_id"]

ALL_RULES: List[Rule] = [
    ProtocolAccountingRule(),
    EmissionDisciplineRule(),
    ReplicaAccountingRule(),
    UnseededRandomRule(),
    WallClockRule(),
    FloatEqualityRule(),
    RawNonOccurrenceProductRule(),
    RpcDisciplineRule(),
    ThreadSharedStateRule(),
    AsyncioDisciplineRule(),
]

PROGRAM_RULES: List[ProgramRule] = [
    TransitiveBlockingRule(),
    InterproceduralBillingRule(),
    LedgerSymmetryRule(),
    SeedProvenanceRule(),
    LockDisciplineRule(),
]


def rules_by_id() -> Dict[str, Rule]:
    rules: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
    rules.update({rule.id: rule for rule in PROGRAM_RULES})
    return rules

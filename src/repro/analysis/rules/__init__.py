"""The skylint rule registry.

Every rule family lives in its own module; :data:`ALL_RULES` is the
canonical ordered registry the CLI and the self-check tests run.
"""

from __future__ import annotations

from typing import Dict, List

from ..framework import Rule
from .asyncio_discipline import AsyncioDisciplineRule
from .concurrency import ThreadSharedStateRule
from .determinism import UnseededRandomRule, WallClockRule
from .probability import FloatEqualityRule, RawNonOccurrenceProductRule
from .protocol import EmissionDisciplineRule, ProtocolAccountingRule
from .replica import ReplicaAccountingRule
from .rpc import RpcDisciplineRule

__all__ = ["ALL_RULES", "rules_by_id"]

ALL_RULES: List[Rule] = [
    ProtocolAccountingRule(),
    EmissionDisciplineRule(),
    ReplicaAccountingRule(),
    UnseededRandomRule(),
    WallClockRule(),
    FloatEqualityRule(),
    RawNonOccurrenceProductRule(),
    RpcDisciplineRule(),
    ThreadSharedStateRule(),
    AsyncioDisciplineRule(),
]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}

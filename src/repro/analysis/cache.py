"""The content-hash-keyed summary cache (``.skylint-cache.json``).

Phase 1 of the whole-program analyzer is the expensive half: parsing
every file and distilling it into a summary.  The cache persists, per
file, the summary and that file's module-rule findings keyed by

* the SHA-256 of the file's *content* — touching a file without
  changing it is a hit, editing one byte is a miss;
* an engine **signature** (engine version + the rule registry) — any
  change to the analyzer itself discards the whole cache;
* a per-run **findings signature** covering the cross-file facts
  module rules can see (the class hierarchy and the active
  superseding set) — if another file's edit changes the project class
  graph, cached findings are recomputed (the summaries stay valid).

The file lives at the repo root, is never committed (gitignored), and
is safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .framework import Finding
from .summaries import ModuleSummary

__all__ = ["CacheEntry", "SummaryCache", "DEFAULT_CACHE_NAME", "content_sha"]

DEFAULT_CACHE_NAME = ".skylint-cache.json"

_CACHE_VERSION = 1


def content_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def engine_signature(engine_version: str, rule_ids: Sequence[str]) -> str:
    payload = json.dumps([engine_version, sorted(rule_ids)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    sha: str
    summary: ModuleSummary
    findings_sig: str
    findings: List[Finding]

    def to_dict(self) -> Dict[str, object]:
        return {
            "sha": self.sha,
            "summary": self.summary.to_dict(),
            "findings_sig": self.findings_sig,
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CacheEntry":
        return cls(
            sha=str(data["sha"]),
            summary=ModuleSummary.from_dict(data["summary"]),  # type: ignore[arg-type]
            findings_sig=str(data["findings_sig"]),
            findings=[Finding.from_dict(d) for d in data["findings"]],  # type: ignore[union-attr]
        )


class SummaryCache:
    """Load/store per-file summaries and module-rule findings."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.entries: Dict[str, CacheEntry] = {}
        self._dirty = False

    @classmethod
    def load(cls, path: Path, signature: str) -> "SummaryCache":
        cache = cls(path, signature)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(raw, dict)
            or raw.get("version") != _CACHE_VERSION
            or raw.get("signature") != signature
        ):
            cache._dirty = True
            return cache
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return cache
        for relpath, entry in entries.items():
            try:
                cache.entries[str(relpath)] = CacheEntry.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue
        return cache

    def get(self, relpath: str, sha: str) -> Optional[CacheEntry]:
        entry = self.entries.get(relpath)
        if entry is not None and entry.sha == sha:
            return entry
        return None

    def put(
        self,
        relpath: str,
        sha: str,
        summary: ModuleSummary,
        findings_sig: str,
        findings: List[Finding],
    ) -> None:
        self.entries[relpath] = CacheEntry(
            sha=sha, summary=summary, findings_sig=findings_sig, findings=findings
        )
        self._dirty = True

    def prune(self, keep: Set[str]) -> None:
        stale = [relpath for relpath in self.entries if relpath not in keep]
        for relpath in stale:
            del self.entries[relpath]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "signature": self.signature,
            "entries": {
                relpath: entry.to_dict()
                for relpath, entry in sorted(self.entries.items())
            },
        }
        try:
            self.path.write_text(
                json.dumps(payload, separators=(",", ":")), encoding="utf-8"
            )
        except OSError:
            # A read-only checkout (CI without the cache step) just
            # runs cold every time; caching is an optimisation only.
            pass
        self._dirty = False

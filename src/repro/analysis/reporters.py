"""Text, JSON, and SARIF rendering of a skylint run."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .baseline import BaselineComparison
from .framework import Finding, Rule, Severity

__all__ = ["render_text", "render_json", "render_sarif", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    summary = {
        "total": len(findings),
        "errors": sum(1 for f in findings if f.severity == Severity.ERROR),
        "warnings": sum(1 for f in findings if f.severity == Severity.WARNING),
    }
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary.update({f"rule:{rule}": n for rule, n in sorted(by_rule.items())})
    return summary


def render_text(
    comparison: BaselineComparison,
    rules: Sequence[Rule],
    show_matched: bool = False,
) -> str:
    """Human-oriented report: one line per finding, grouped by file."""
    lines: List[str] = []
    visible = list(comparison.new) + (comparison.matched if show_matched else [])
    current_path: Optional[str] = None
    for finding in sorted(visible, key=lambda f: (f.path, f.line, f.column)):
        if finding.path != current_path:
            current_path = finding.path
            lines.append(finding.path)
        baselined = finding in comparison.matched
        tag = f"{finding.rule} [{finding.severity}]"
        if baselined:
            tag += " (baselined)"
        lines.append(
            f"  {finding.line}:{finding.column}  {tag}  {finding.message}"
        )
    for entry in comparison.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path} "
            f"({entry.context}) — the finding no longer exists; remove it"
        )
    new, matched, stale = (
        len(comparison.new),
        len(comparison.matched),
        len(comparison.stale),
    )
    if comparison.clean:
        lines.append(
            f"skylint: clean ({matched} baselined finding(s), "
            f"{len(rules)} rule(s) ran)"
        )
    else:
        lines.append(
            f"skylint: {new} new finding(s), {stale} stale baseline "
            f"entr(y/ies), {matched} baselined"
        )
    return "\n".join(lines)


def render_json(
    comparison: BaselineComparison, rules: Sequence[Rule]
) -> str:
    """Machine-oriented report for CI annotation tooling."""
    payload = {
        "clean": comparison.clean,
        "summary": summarize(list(comparison.new)),
        "new": [f.to_dict() for f in comparison.new],
        "baselined": [f.to_dict() for f in comparison.matched],
        "stale_baseline": [e.to_dict() for e in comparison.stale],
        "rules": [
            {
                "id": rule.id,
                "name": rule.name,
                "severity": rule.severity,
                "description": rule.description.strip(),
            }
            for rule in rules
        ],
    }
    return json.dumps(payload, indent=2)


#: SARIF uses error/warning/note levels; skylint severities map directly.
_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(
    comparison: BaselineComparison,
    rules: Sequence[Rule],
    engine_version: str = "2.0",
) -> str:
    """SARIF 2.1.0 report (GitHub code-scanning upload format).

    Only *new* findings become results — baselined ones are the repo's
    accepted debt and stale entries are a baseline-hygiene problem the
    text/JSON reporters surface; neither belongs in a code-scanning
    alert stream.
    """
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    sarif_rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description.strip()},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL.get(rule.severity, "warning")
            },
        }
        for rule in rules
    ]
    results = []
    for finding in comparison.new:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVEL.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    },
                    "logicalLocations": [
                        {"fullyQualifiedName": finding.context}
                    ],
                }
            ],
            # The line-free fingerprint keeps alerts stable across
            # unrelated edits, mirroring the baseline machinery.
            "partialFingerprints": {
                "skylint/v1": "|".join(finding.fingerprint())
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "skylint",
                        "version": engine_version,
                        "informationUri": "docs/static-analysis.md",
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)

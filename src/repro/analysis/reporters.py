"""Text and JSON rendering of a skylint run."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .baseline import BaselineComparison
from .framework import Finding, Rule, Severity

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    summary = {
        "total": len(findings),
        "errors": sum(1 for f in findings if f.severity == Severity.ERROR),
        "warnings": sum(1 for f in findings if f.severity == Severity.WARNING),
    }
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary.update({f"rule:{rule}": n for rule, n in sorted(by_rule.items())})
    return summary


def render_text(
    comparison: BaselineComparison,
    rules: Sequence[Rule],
    show_matched: bool = False,
) -> str:
    """Human-oriented report: one line per finding, grouped by file."""
    lines: List[str] = []
    visible = list(comparison.new) + (comparison.matched if show_matched else [])
    current_path: Optional[str] = None
    for finding in sorted(visible, key=lambda f: (f.path, f.line, f.column)):
        if finding.path != current_path:
            current_path = finding.path
            lines.append(finding.path)
        baselined = finding in comparison.matched
        tag = f"{finding.rule} [{finding.severity}]"
        if baselined:
            tag += " (baselined)"
        lines.append(
            f"  {finding.line}:{finding.column}  {tag}  {finding.message}"
        )
    for entry in comparison.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path} "
            f"({entry.context}) — the finding no longer exists; remove it"
        )
    new, matched, stale = (
        len(comparison.new),
        len(comparison.matched),
        len(comparison.stale),
    )
    if comparison.clean:
        lines.append(
            f"skylint: clean ({matched} baselined finding(s), "
            f"{len(rules)} rule(s) ran)"
        )
    else:
        lines.append(
            f"skylint: {new} new finding(s), {stale} stale baseline "
            f"entr(y/ies), {matched} baselined"
        )
    return "\n".join(lines)


def render_json(
    comparison: BaselineComparison, rules: Sequence[Rule]
) -> str:
    """Machine-oriented report for CI annotation tooling."""
    payload = {
        "clean": comparison.clean,
        "summary": summarize(list(comparison.new)),
        "new": [f.to_dict() for f in comparison.new],
        "baselined": [f.to_dict() for f in comparison.matched],
        "stale_baseline": [e.to_dict() for e in comparison.stale],
        "rules": [
            {
                "id": rule.id,
                "name": rule.name,
                "severity": rule.severity,
                "description": rule.description.strip(),
            }
            for rule in rules
        ],
    }
    return json.dumps(payload, indent=2)

"""Baseline bookkeeping: grandfathered findings, matched by fingerprint.

A baseline lets skylint gate *new* violations without forcing a
historical cleanup in the same change.  The committed file
(``skylint-baseline.json`` at the repo root) stores one entry per
accepted finding — its fingerprint plus a mandatory justification —
and comparison is exact in both directions:

* a finding not covered by the baseline is **new** (fails the run);
* a baseline entry matching no current finding is **stale** (also
  fails: the debt was paid, so the entry must be deleted, keeping the
  file an honest inventory rather than a growing allowlist).

Matching is by multiset of fingerprints, so two identical offending
lines in the same function need two entries.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .framework import Finding

__all__ = ["BaselineEntry", "BaselineComparison", "load_baseline", "write_baseline", "compare"]

DEFAULT_BASELINE_NAME = "skylint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is acceptable."""

    rule: str
    path: str
    context: str
    snippet: str
    justification: str = ""

    def fingerprint(self) -> Tuple[str, str, str, str]:
        return (self.rule, self.path, self.context, self.snippet)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "snippet": self.snippet,
            "justification": self.justification,
        }


@dataclass
class BaselineComparison:
    """The verdict of findings vs. baseline."""

    new: List[Finding]
    matched: List[Finding]
    stale: List[BaselineEntry]

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data["entries"] if isinstance(data, dict) else data
    return [
        BaselineEntry(
            rule=str(e["rule"]),
            path=str(e["path"]),
            context=str(e.get("context", "")),
            snippet=str(e.get("snippet", "")),
            justification=str(e.get("justification", "")),
        )
        for e in entries
    ]


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Accept the current findings as the new baseline.

    Justifications are emitted empty on purpose: whoever baselines a
    finding owes the one-line reason, and the self-check test refuses
    entries that never received one.
    """
    entries = [
        BaselineEntry(
            rule=f.rule,
            path=f.path,
            context=f.context,
            snippet=f.snippet,
            justification="",
        ).to_dict()
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"version": 1, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def compare(
    findings: Sequence[Finding], baseline: Sequence[BaselineEntry]
) -> BaselineComparison:
    """Split findings into new/matched and surface stale baseline entries."""
    available = Counter(entry.fingerprint() for entry in baseline)
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if available.get(fp, 0) > 0:
            available[fp] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = []
    for entry in baseline:
        fp = entry.fingerprint()
        if available.get(fp, 0) > 0:
            available[fp] -= 1
            stale.append(entry)
    return BaselineComparison(new=new, matched=matched, stale=stale)

"""Phase 1 of the whole-program analyzer: per-file summaries.

skylint v1 re-walked every AST for every rule on every run, and each
rule saw exactly one file.  v2 splits the work:

* **Phase 1** (this module) parses a file once and distills everything
  the interprocedural rules need into a :class:`ModuleSummary` — the
  defined functions and classes, raw call edges, and per-function
  protocol facts (endpoint RPCs, `NetworkStats` billing, blocking
  calls, awaits, RNG constructions, lock-guarded attribute writes).
  Summaries are plain data with a JSON round-trip, so
  :mod:`repro.analysis.cache` can persist them keyed by content hash
  and unchanged files are never re-parsed.
* **Phase 2** (:mod:`repro.analysis.callgraph`) links summaries into a
  project call graph and runs the SKY6xx rules over it.

Every recorded fact carries a :class:`Site` — line, column, enclosing
``Class.method`` context, and the stripped source line — so findings
raised from a *cached* summary fingerprint identically to findings
raised from a fresh parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import ModuleContext, dotted_name

__all__ = [
    "Site",
    "CallFact",
    "RpcFact",
    "BillFact",
    "BlockFact",
    "RngFact",
    "WriteFact",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "build_summary",
    "RPC_METHODS",
    "ACCOUNTING_MARKERS",
    "MESSAGE_MARKERS",
    "BLOCKING_CALLS",
]

#: The SiteEndpoint surface (plus the strawman bulk-ship calls, the
#: replica write-forwarding RPCs, and the continuous-query stream-site
#: surface): invoking any of these on another object is a protocol
#: message.
RPC_METHODS = frozenset(
    {
        "prepare",
        "pop_representative",
        "probe_and_prune",
        "probe_and_prune_batch",
        "queue_size",
        "fast_forward",
        "partition_digest",
        "ship_all",
        "ship_local_skyline",
        "probe",
        "probe_batch",
        "dominated_local_candidates",
        "set_replica",
        "insert_tuple",
        "delete_tuple",
        "register_group",
        "drop_group",
        "close_epoch",
        "sync_candidates",
    }
)

#: A call whose dotted name ends in one of these counts as accounting.
ACCOUNTING_MARKERS = (
    "record",
    "record_round",
    "record_rpc_time",
    "_account",
    "_lan",
    "_tuple_message",
    "_control_message",
)

#: The subset of :data:`ACCOUNTING_MARKERS` that bills an individual
#: *message* (``record_round`` / ``record_rpc_time`` price rounds and
#: time, not messages — a run loop calling them is not a wrapper that
#: bills its callees' RPCs).
MESSAGE_MARKERS = frozenset(
    {"record", "_account", "_lan", "_tuple_message", "_control_message"}
)

#: Dotted call forms that block the calling thread outright.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.socketpair",
        "select.select",
    }
)

_POOL_JOINS = frozenset({"shutdown", "join"})

_RNG_WALL_SEEDS = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow"}
)


@dataclass(frozen=True)
class Site:
    """Anchor for a fact: enough to raise a stable-fingerprint finding."""

    lineno: int
    col: int
    context: str
    snippet: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "lineno": self.lineno,
            "col": self.col,
            "context": self.context,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Site":
        return cls(
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            context=str(data["context"]),
            snippet=str(data["snippet"]),
        )


@dataclass(frozen=True)
class CallFact:
    """One call site: the raw dotted callee text, resolved in phase 2."""

    callee: str
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {"callee": self.callee, "site": self.site.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CallFact":
        return cls(str(data["callee"]), Site.from_dict(data["site"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class RpcFact:
    """A site-endpoint RPC: a call, or a bound-method reference passed
    as an argument (the coordinator's ``self._rpc(site, "x", site.x)``
    thunk pattern)."""

    method: str
    receiver: str
    is_ref: bool
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "receiver": self.receiver,
            "is_ref": self.is_ref,
            "site": self.site.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RpcFact":
        return cls(
            str(data["method"]),
            str(data["receiver"]),
            bool(data["is_ref"]),
            Site.from_dict(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BillFact:
    """A `NetworkStats` accounting call, with the MessageKind member it
    bills when one is syntactically present in the arguments."""

    marker: str
    kind: Optional[str]
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {"marker": self.marker, "kind": self.kind, "site": self.site.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BillFact":
        kind = data.get("kind")
        return cls(
            str(data["marker"]),
            None if kind is None else str(kind),
            Site.from_dict(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BlockFact:
    """A call that blocks the thread (sleep, raw socket, pool join)."""

    name: str
    kind: str  # "sleep" | "socket" | "select" | "pool-join"
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind, "site": self.site.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BlockFact":
        return cls(
            str(data["name"]), str(data["kind"]), Site.from_dict(data["site"])  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RngFact:
    """An RNG construction and where its value flows.

    ``flows`` entries: ``"return"``, ``"call:<raw callee>:<arg>"``
    (``<arg>`` a position or keyword name), ``"attr:<self path>"``.
    """

    callee: str
    seeding: str  # "unseeded" | "wall" | "seeded"
    flows: Tuple[str, ...]
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {
            "callee": self.callee,
            "seeding": self.seeding,
            "flows": list(self.flows),
            "site": self.site.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RngFact":
        return cls(
            str(data["callee"]),
            str(data["seeding"]),
            tuple(str(f) for f in data["flows"]),  # type: ignore[union-attr]
            Site.from_dict(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class WriteFact:
    """An attribute write on ``self`` (full dotted target path)."""

    target: str  # e.g. "self.stats.sites_lost"
    guarded: bool  # lexically inside a `with …lock…:` block
    method: str
    site: Site

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "guarded": self.guarded,
            "method": self.method,
            "site": self.site.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WriteFact":
        return cls(
            str(data["target"]),
            bool(data["guarded"]),
            str(data["method"]),
            Site.from_dict(data["site"]),  # type: ignore[arg-type]
        )


@dataclass
class FunctionSummary:
    """Everything phase 2 needs to know about one function."""

    qualname: str
    name: str
    class_name: Optional[str]
    parent: Optional[str]  # qualname of the lexically enclosing function
    lineno: int
    is_async: bool
    is_generator: bool
    params: List[str] = field(default_factory=list)
    calls: List[CallFact] = field(default_factory=list)
    rpcs: List[RpcFact] = field(default_factory=list)
    bills: List[BillFact] = field(default_factory=list)
    blocking: List[BlockFact] = field(default_factory=list)
    rng: List[RngFact] = field(default_factory=list)
    writes: List[WriteFact] = field(default_factory=list)
    #: parameter name -> flow descriptors (same alphabet as RngFact.flows)
    param_flows: Dict[str, List[str]] = field(default_factory=dict)
    #: raw callee -> flows of values produced by calling it
    result_flows: Dict[str, List[str]] = field(default_factory=dict)
    has_await: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "class_name": self.class_name,
            "parent": self.parent,
            "lineno": self.lineno,
            "is_async": self.is_async,
            "is_generator": self.is_generator,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
            "rpcs": [r.to_dict() for r in self.rpcs],
            "bills": [b.to_dict() for b in self.bills],
            "blocking": [b.to_dict() for b in self.blocking],
            "rng": [r.to_dict() for r in self.rng],
            "writes": [w.to_dict() for w in self.writes],
            "param_flows": {k: list(v) for k, v in self.param_flows.items()},
            "result_flows": {k: list(v) for k, v in self.result_flows.items()},
            "has_await": self.has_await,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            class_name=(
                None if data["class_name"] is None else str(data["class_name"])
            ),
            parent=None if data["parent"] is None else str(data["parent"]),
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
            is_async=bool(data["is_async"]),
            is_generator=bool(data["is_generator"]),
            params=[str(p) for p in data["params"]],  # type: ignore[union-attr]
            calls=[CallFact.from_dict(d) for d in data["calls"]],  # type: ignore[union-attr]
            rpcs=[RpcFact.from_dict(d) for d in data["rpcs"]],  # type: ignore[union-attr]
            bills=[BillFact.from_dict(d) for d in data["bills"]],  # type: ignore[union-attr]
            blocking=[BlockFact.from_dict(d) for d in data["blocking"]],  # type: ignore[union-attr]
            rng=[RngFact.from_dict(d) for d in data["rng"]],  # type: ignore[union-attr]
            writes=[WriteFact.from_dict(d) for d in data["writes"]],  # type: ignore[union-attr]
            param_flows={
                str(k): [str(f) for f in v]
                for k, v in data["param_flows"].items()  # type: ignore[union-attr]
            },
            result_flows={
                str(k): [str(f) for f in v]
                for k, v in data["result_flows"].items()  # type: ignore[union-attr]
            },
            has_await=bool(data["has_await"]),
        )


@dataclass
class ClassSummary:
    name: str
    bases: List[str]
    lineno: int
    methods: List[str] = field(default_factory=list)
    #: self attribute -> class name it was constructed/annotated as
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: class-body assignments (enum members, class constants) -> site
    attrs: Dict[str, Site] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "bases": list(self.bases),
            "lineno": self.lineno,
            "methods": list(self.methods),
            "attr_types": dict(self.attr_types),
            "attrs": {k: v.to_dict() for k, v in self.attrs.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClassSummary":
        return cls(
            name=str(data["name"]),
            bases=[str(b) for b in data["bases"]],  # type: ignore[union-attr]
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
            methods=[str(m) for m in data["methods"]],  # type: ignore[union-attr]
            attr_types={
                str(k): str(v) for k, v in data["attr_types"].items()  # type: ignore[union-attr]
            },
            attrs={
                str(k): Site.from_dict(v)
                for k, v in data["attrs"].items()  # type: ignore[union-attr]
            },
        )


@dataclass
class ModuleSummary:
    relpath: str
    module_name: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: line -> (suppressed rule ids, reason)
    suppressions: Dict[int, Tuple[List[str], str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        entry = self.suppressions.get(lineno)
        if entry is None:
            return False
        ids, _reason = entry
        return "*" in ids or rule_id in ids

    def to_dict(self) -> Dict[str, object]:
        return {
            "relpath": self.relpath,
            "module_name": self.module_name,
            "imports": dict(self.imports),
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "suppressions": {
                str(line): [list(ids), reason]
                for line, (ids, reason) in self.suppressions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        return cls(
            relpath=str(data["relpath"]),
            module_name=str(data["module_name"]),
            imports={str(k): str(v) for k, v in data["imports"].items()},  # type: ignore[union-attr]
            functions={
                str(k): FunctionSummary.from_dict(v)
                for k, v in data["functions"].items()  # type: ignore[union-attr]
            },
            classes={
                str(k): ClassSummary.from_dict(v)
                for k, v in data["classes"].items()  # type: ignore[union-attr]
            },
            suppressions={
                int(line): ([str(i) for i in entry[0]], str(entry[1]))
                for line, entry in data["suppressions"].items()  # type: ignore[union-attr]
            },
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/net/aio.py`` and ``repro/net/aio.py`` both map to
    ``repro.net.aio``; harness files keep their directory as the
    package (``benchmarks.test_x``).
    """
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s.

    Lambdas stay inline (they run in the defining function's frame for
    our purposes — the coordinator's RPC thunks are lambdas), nested
    named functions get their own summaries.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _self_attr_path(node: ast.AST) -> Optional[str]:
    """``self.a.b`` -> ``"self.a.b"``; None for anything else."""
    name = dotted_name(node)
    if name == "self" or name.startswith("self."):
        return name
    return None


def _under_lock(module: ModuleContext, node: ast.AST) -> bool:
    for anc in module.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                if "lock" in dotted_name(item.context_expr).lower():
                    return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


def _is_pool_receiver(func: ast.Attribute) -> bool:
    receiver = dotted_name(func.value).lower()
    return "pool" in receiver or "executor" in receiver


def _wait_false(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "wait" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def _bill_kind(call: ast.Call) -> Optional[str]:
    """The ``MessageKind.X`` member named anywhere in the arguments."""
    for arg in ast.walk(call):
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "MessageKind"
        ):
            return arg.attr
    return None


def _rng_seeding(call: ast.Call) -> str:
    if not call.args and not call.keywords:
        return "unseeded"
    seed: Optional[ast.expr] = call.args[0] if call.args else None
    if seed is None:
        for kw in call.keywords:
            if kw.arg in ("seed", "x"):
                seed = kw.value
    if seed is None:
        return "seeded"
    if isinstance(seed, ast.Constant) and seed.value is None:
        return "unseeded"
    for sub in ast.walk(seed):
        if isinstance(sub, ast.Call) and dotted_name(sub.func) in _RNG_WALL_SEEDS:
            return "wall"
    return "seeded"


def _is_rng_ctor(raw: str) -> bool:
    return (
        raw in ("random.Random", "Random")
        or raw.endswith("default_rng")
        or raw.endswith(".RandomState")
    )


class _SummaryBuilder:
    def __init__(self, module: ModuleContext) -> None:
        self.module = module
        self.summary = ModuleSummary(
            relpath=module.relpath,
            module_name=module_name_for(module.relpath),
            suppressions={
                line: (sorted(ids), reason)
                for line, (ids, reason) in module.suppressions.items()
            },
        )

    # -- helpers -------------------------------------------------------

    def _site(self, node: ast.AST) -> Site:
        lineno = getattr(node, "lineno", 1)
        return Site(
            lineno=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            context=self.module.enclosing_context(node),
            snippet=self.module.source_line(lineno),
        )

    # -- imports -------------------------------------------------------

    def _collect_imports(self) -> None:
        package = self.summary.module_name.rsplit(".", 1)[0]
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.summary.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = self.summary.module_name.split(".")
                    anchor = anchor[: len(anchor) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                elif not base:
                    base = package
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.summary.imports[local] = f"{base}.{alias.name}"

    # -- classes -------------------------------------------------------

    def _collect_class(self, node: ast.ClassDef) -> None:
        bases: List[str] = []
        for b in node.bases:
            if isinstance(b, ast.Name):
                bases.append(b.id)
            elif isinstance(b, ast.Attribute):
                bases.append(b.attr)
        cls = ClassSummary(name=node.name, bases=bases, lineno=node.lineno)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.append(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.attrs[target.id] = self._site(stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls.attrs[stmt.target.id] = self._site(stmt)
        self.summary.classes[node.name] = cls

    def _collect_attr_types(
        self, cls: ClassSummary, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        annotations: Dict[str, str] = {}
        for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        ):
            if arg.annotation is not None:
                ann = arg.annotation
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    annotations[arg.arg] = ann.value.split(".")[-1].strip("\"'")
                else:
                    tail = dotted_name(ann).split(".")[-1]
                    if tail:
                        annotations[arg.arg] = tail
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if attr in cls.attr_types:
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in annotations:
                cls.attr_types[attr] = annotations[value.id]
            elif isinstance(value, ast.Call):
                tail = dotted_name(value.func).split(".")[-1]
                if tail[:1].isupper():
                    cls.attr_types[attr] = tail

    # -- functions -----------------------------------------------------

    def build(self) -> ModuleSummary:
        self._collect_imports()
        self._visit_body(self.module.tree.body, class_name=None, parent=None)
        return self.summary

    def _visit_body(
        self,
        body: List[ast.stmt],
        class_name: Optional[str],
        parent: Optional[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)
                self._visit_body(stmt.body, class_name=stmt.name, parent=None)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(stmt, class_name, parent)

    def _collect_function(
        self,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_name: Optional[str],
        parent: Optional[str],
    ) -> None:
        qualname = self.module.enclosing_context(fn)
        qualname = f"{qualname}.{fn.name}" if qualname != "<module>" else fn.name
        params = [
            a.arg
            for a in list(fn.args.posonlyargs)
            + list(fn.args.args)
            + list(fn.args.kwonlyargs)
            if a.arg not in ("self", "cls")
        ]
        summary = FunctionSummary(
            qualname=qualname,
            name=fn.name,
            class_name=class_name,
            parent=parent,
            lineno=fn.lineno,
            is_async=isinstance(fn, ast.AsyncFunctionDef),
            is_generator=any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _own_nodes(fn)
            ),
            params=params,
        )
        if class_name is not None:
            self._collect_attr_types(self.summary.classes[class_name], fn)
        own = list(_own_nodes(fn))
        self._collect_calls(summary, own)
        self._collect_writes(summary, own, class_name)
        self._collect_flows(summary, fn, own)
        summary.has_await = any(isinstance(n, ast.Await) for n in own)
        self.summary.functions[qualname] = summary
        # Recurse into nested named defs (they get their own summaries,
        # linked by an implicit parent->child call edge in phase 2).
        for node in own:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(node, class_name, qualname)

    def _collect_calls(
        self, summary: FunctionSummary, own: List[ast.AST]
    ) -> None:
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw:
                summary.calls.append(CallFact(callee=raw, site=self._site(node)))
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in RPC_METHODS:
                receiver = dotted_name(func.value)
                summary.rpcs.append(
                    RpcFact(
                        method=func.attr,
                        receiver=receiver,
                        is_ref=False,
                        site=self._site(node),
                    )
                )
            # Script descriptors: `_Rpc(site, "method", ...)` is the
            # point where a protocol message is decided — the shared
            # sync/async drivers only relay it — so the construction
            # site carries the RpcFact the billing ledger matches.
            if (
                isinstance(func, ast.Name)
                and func.id == "_Rpc"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and node.args[1].value in RPC_METHODS
            ):
                summary.rpcs.append(
                    RpcFact(
                        method=node.args[1].value,
                        receiver=dotted_name(node.args[0]),
                        is_ref=False,
                        site=self._site(node),
                    )
                )
            # Bound RPC methods passed as arguments (the `_rpc` thunk
            # pattern) are messages too even though nothing calls them
            # lexically here.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Attribute) and arg.attr in RPC_METHODS:
                    summary.rpcs.append(
                        RpcFact(
                            method=arg.attr,
                            receiver=dotted_name(arg.value),
                            is_ref=True,
                            site=self._site(arg),
                        )
                    )
            tail = raw.split(".")[-1] if raw else ""
            if tail in ACCOUNTING_MARKERS:
                summary.bills.append(
                    BillFact(marker=tail, kind=_bill_kind(node), site=self._site(node))
                )
            if raw in BLOCKING_CALLS:
                kind = (
                    "sleep"
                    if raw == "time.sleep"
                    else "select"
                    if raw == "select.select"
                    else "socket"
                )
                summary.blocking.append(
                    BlockFact(name=raw, kind=kind, site=self._site(node))
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _POOL_JOINS
                and _is_pool_receiver(func)
                and not _wait_false(node)
            ):
                summary.blocking.append(
                    BlockFact(name=raw, kind="pool-join", site=self._site(node))
                )

    def _collect_writes(
        self,
        summary: FunctionSummary,
        own: List[ast.AST],
        class_name: Optional[str],
    ) -> None:
        if class_name is None:
            return
        for node in own:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                path = _self_attr_path(target)
                if path is None or path == "self":
                    continue
                summary.writes.append(
                    WriteFact(
                        target=path,
                        guarded=_under_lock(self.module, node),
                        method=summary.name,
                        site=self._site(node),
                    )
                )

    # -- dataflow facts ------------------------------------------------

    def _flows_of(
        self, own: List[ast.AST], matches: "ast.expr | str"
    ) -> List[str]:
        """Where a value flows inside this function.

        ``matches`` is either a specific expression node (a construction
        used in place) or a local name (a parameter or a binding).
        """

        def hit(expr: ast.expr) -> bool:
            if isinstance(matches, str):
                return isinstance(expr, ast.Name) and expr.id == matches
            return expr is matches

        flows: List[str] = []
        for node in own:
            if isinstance(node, ast.Return) and node.value is not None:
                if hit(node.value):
                    flows.append("return")
            elif isinstance(node, ast.Call):
                raw = dotted_name(node.func)
                if not raw:
                    continue
                for pos, arg in enumerate(node.args):
                    if hit(arg):
                        flows.append(f"call:{raw}:{pos}")
                for kw in node.keywords:
                    if kw.arg is not None and hit(kw.value):
                        flows.append(f"call:{raw}:{kw.arg}")
            elif isinstance(node, ast.Assign) and hit(node.value):
                for target in node.targets:
                    path = _self_attr_path(target)
                    if path:
                        flows.append(f"attr:{path}")
        return flows

    def _collect_flows(
        self,
        summary: FunctionSummary,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        own: List[ast.AST],
    ) -> None:
        bindings: Dict[str, ast.Call] = {}
        for node in own:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                bindings[node.targets[0].id] = node.value

        # RNG constructions and where they flow.
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if not raw or not _is_rng_ctor(raw):
                continue
            bound = [n for n, c in bindings.items() if c is node]
            flows = self._flows_of(own, bound[0]) if bound else self._flows_of(own, node)
            summary.rng.append(
                RngFact(
                    callee=raw,
                    seeding=_rng_seeding(node),
                    flows=tuple(sorted(set(flows))),
                    site=self._site(node),
                )
            )

        # Parameter flows (for interprocedural taint propagation).
        for param in summary.params:
            flows = self._flows_of(own, param)
            if flows:
                summary.param_flows[param] = sorted(set(flows))

        # Result flows: values produced by calls and where they go.
        for name, call in bindings.items():
            raw = dotted_name(call.func)
            if not raw:
                continue
            flows = self._flows_of(own, name)
            if flows:
                summary.result_flows.setdefault(raw, [])
                summary.result_flows[raw] = sorted(
                    set(summary.result_flows[raw]) | set(flows)
                )
        for node in own:
            if isinstance(node, ast.Call):
                raw = dotted_name(node.func)
                if not raw:
                    continue
                direct = self._flows_of(own, node)
                if direct:
                    summary.result_flows.setdefault(raw, [])
                    summary.result_flows[raw] = sorted(
                        set(summary.result_flows[raw]) | set(direct)
                    )


def build_summary(module: ModuleContext) -> ModuleSummary:
    """Distill one parsed module into its phase-1 summary."""
    return _SummaryBuilder(module).build()


def collect_rpc_set(summary: FunctionSummary) -> Set[str]:
    """RPC methods lexically present in a function (non-self receivers)."""
    return {
        r.method
        for r in summary.rpcs
        if r.receiver != "self" and not r.receiver.startswith("self.")
    }

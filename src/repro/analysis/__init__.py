"""skylint — repo-specific static analysis for the skyline reproduction.

Run as ``python -m repro.analysis [paths] [--format json] [--baseline FILE]``.

The framework (:mod:`~repro.analysis.framework`) is plain-``ast`` and
dependency-free; the rules (:mod:`~repro.analysis.rules`) encode the
invariants ordinary linters cannot see — protocol accounting (Eq. 10),
deterministic replay, Eq. 3/9 probability arithmetic, the fault-aware
RPC funnel, and executor-shared state.  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

from .baseline import (
    BaselineComparison,
    BaselineEntry,
    compare,
    load_baseline,
    write_baseline,
)
from .framework import (
    Finding,
    ModuleContext,
    Project,
    Rule,
    Severity,
    analyze_paths,
    run_rules,
)
from .callgraph import Program, ProgramRule
from .engine import ENGINE_VERSION, RunStats, analyze_project
from .reporters import render_json, render_sarif, render_text, summarize
from .rules import ALL_RULES, PROGRAM_RULES, rules_by_id
from .summaries import ModuleSummary, build_summary

__all__ = [
    "ALL_RULES",
    "ENGINE_VERSION",
    "BaselineComparison",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "ModuleSummary",
    "PROGRAM_RULES",
    "Program",
    "ProgramRule",
    "Project",
    "Rule",
    "RunStats",
    "Severity",
    "analyze_paths",
    "analyze_project",
    "build_summary",
    "compare",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_by_id",
    "run_rules",
    "summarize",
    "write_baseline",
]

"""The two-phase whole-program driver.

Phase 1 walks the requested paths, parses changed files into
:class:`~repro.analysis.summaries.ModuleSummary` objects (unchanged
files come straight from the cache, never re-parsed), and runs the
per-module rules.  Phase 2 links every summary into a
:class:`~repro.analysis.callgraph.Program` and runs the SKY6xx
interprocedural rules over the call graph.

``# skylint: ignore[...]`` suppressions apply uniformly: module-rule
findings are filtered while the file's AST is in hand, program-rule
findings against the suppression map recorded in the summary — so a
cached file's suppressions keep working without re-parsing it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .cache import SummaryCache, content_sha, engine_signature
from .callgraph import Program, ProgramRule
from .framework import (
    Finding,
    ModuleContext,
    Project,
    Rule,
    iter_source_files,
    module_findings,
)
from .summaries import ModuleSummary, build_summary

__all__ = ["ENGINE_VERSION", "RunStats", "analyze_project"]

#: Bump on any change to summary extraction, linking, or rule logic —
#: it keys the on-disk cache, so stale summaries can never leak across
#: analyzer versions.
ENGINE_VERSION = "2.1"


@dataclass
class RunStats:
    """Where a run spent its time, for the CLI ``--stats`` flag."""

    files: int = 0
    parsed: int = 0
    summary_hits: int = 0
    findings_hits: int = 0
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    total_seconds: float = 0.0
    cache_path: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    @property
    def warm(self) -> bool:
        return self.files > 0 and self.parsed == 0

    def render(self) -> str:
        temperature = "warm" if self.warm else "cold"
        lines = [
            f"skylint --stats: {temperature} run over {self.files} file(s): "
            f"{self.parsed} parsed, {self.summary_hits} summary cache hit(s), "
            f"{self.findings_hits} findings cache hit(s)",
            f"  phase 1 (parse+summaries+module rules): "
            f"{self.phase1_seconds:.3f}s",
            f"  phase 2 (call graph+interprocedural):   "
            f"{self.phase2_seconds:.3f}s",
            f"  total:                                  "
            f"{self.total_seconds:.3f}s",
        ]
        if self.cache_path:
            lines.append(f"  cache: {self.cache_path}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def analyze_project(
    paths: Sequence[Path],
    module_rules: Sequence[Rule],
    program_rules: Sequence[ProgramRule],
    root: Optional[Path] = None,
    cache_path: Optional[Path] = None,
) -> Tuple[List[Finding], RunStats]:
    """Run the full two-phase analysis; returns (findings, stats)."""
    t_start = time.perf_counter()
    root = root or Path.cwd()
    stats = RunStats()

    signature = engine_signature(
        ENGINE_VERSION,
        [r.id for r in module_rules] + [r.id for r in program_rules],
    )
    cache = (
        SummaryCache.load(cache_path, signature) if cache_path is not None else None
    )
    if cache_path is not None:
        stats.cache_path = str(cache_path)

    # ------------------------------------------------------------------
    # phase 1a: summaries (from cache, or by parsing)
    # ------------------------------------------------------------------
    loaded: List[Tuple[str, str, str, Optional[ModuleContext], ModuleSummary]] = []
    for path in iter_source_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            stats.notes.append(f"unreadable {path}: {exc}")
            continue
        relpath = _relpath(path, root)
        sha = content_sha(text)
        entry = cache.get(relpath, sha) if cache is not None else None
        if entry is not None:
            loaded.append((relpath, sha, text, None, entry.summary))
            stats.summary_hits += 1
        else:
            try:
                ctx = ModuleContext(relpath, text)
            except SyntaxError as exc:
                stats.notes.append(f"syntax error in {relpath}: {exc}")
                continue
            loaded.append((relpath, sha, text, ctx, build_summary(ctx)))
            stats.parsed += 1
    stats.files = len(loaded)

    # ------------------------------------------------------------------
    # phase 1b: module rules (cached per file, keyed by the cross-file
    # facts they can observe: class hierarchy + the superseding set)
    # ------------------------------------------------------------------
    superseding = {rule.id for rule in program_rules}
    class_bases: Dict[str, Set[str]] = {}
    for _relp, _sha, _text, _ctx, summary in loaded:
        for cls in summary.classes.values():
            class_bases.setdefault(cls.name, set()).update(cls.bases)
    findings_sig = engine_signature(
        signature,
        sorted(superseding)
        + [f"{name}<-{','.join(sorted(bases))}" for name, bases in sorted(class_bases.items())],
    )
    project = Project([], superseding=superseding, class_bases=class_bases)

    findings: List[Finding] = []
    for relpath, sha, text, ctx, summary in loaded:
        entry = cache.get(relpath, sha) if cache is not None else None
        if entry is not None and entry.findings_sig == findings_sig:
            findings.extend(entry.findings)
            stats.findings_hits += 1
            continue
        if ctx is None:
            # Summary was cached but the project-level signature moved:
            # re-parse just for the module rules.
            ctx = ModuleContext(relpath, text)
            stats.parsed += 1
        file_findings = module_findings(ctx, module_rules, project)
        findings.extend(file_findings)
        if cache is not None:
            cache.put(relpath, sha, summary, findings_sig, file_findings)
    stats.phase1_seconds = time.perf_counter() - t_start

    # ------------------------------------------------------------------
    # phase 2: link and run the interprocedural rules
    # ------------------------------------------------------------------
    t_phase2 = time.perf_counter()
    program = Program([summary for _r, _s, _t, _c, summary in loaded])
    for rule in program_rules:
        for finding in rule.check_program(program):
            if program.is_suppressed(finding.path, finding.rule, finding.line):
                continue
            findings.append(finding)
    stats.phase2_seconds = time.perf_counter() - t_phase2

    if cache is not None:
        cache.prune({relpath for relpath, _s, _t, _c, _m in loaded})
        cache.save()

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    stats.total_seconds = time.perf_counter() - t_start
    return findings, stats

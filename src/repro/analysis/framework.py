"""The skylint core: findings, rules, module/project context, suppression.

Ordinary linters see syntax; this framework exists so rules can see the
*repo's* invariants — protocol accounting, deterministic replay,
probability arithmetic, RPC fault discipline, and executor-shared state.
It is deliberately dependency-free (``ast`` + stdlib only) so the CI
job needs nothing beyond the checkout.

Building blocks:

* :class:`Finding` — one diagnostic, with a line-drift-tolerant
  fingerprint (rule, path, enclosing context, source snippet) used by
  the baseline machinery.
* :class:`Rule` — a named, severity-carrying check over one
  :class:`ModuleContext` (per-file AST + source) with access to the
  cross-file :class:`Project` (class hierarchy, module index).
* :class:`ModuleContext` — parsed file plus the parent map and
  per-line ``# skylint: ignore[RULE]`` suppressions.
* :func:`run_rules` / :func:`analyze_paths` — the drivers.

Suppression syntax, checked on the finding's own line::

    p *= 1.0 - t.probability  # skylint: ignore[SKY302] Eq. 1 oracle

A reason after the closing bracket is required — an unexplained
suppression is itself reported (rule ``SKY000``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "ModuleContext",
    "Project",
    "module_findings",
    "run_rules",
    "analyze_paths",
    "dotted_name",
    "iter_source_files",
]


class Severity:
    """Finding severities, ordered: errors gate, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    _ORDER = {ERROR: 0, WARNING: 1}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, 99)


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    severity: str
    path: str       # posix path, repo-relative
    line: int
    column: int
    message: str
    context: str    # enclosing ``Class.method`` (or ``<module>``)
    snippet: str    # the stripped source line, for fingerprinting

    def fingerprint(self) -> Tuple[str, str, str, str]:
        """Line-number-free identity used to match baseline entries.

        Using (rule, path, context, snippet) instead of the line number
        keeps a baselined finding recognised when unrelated edits shift
        the file, while an edit to the offending line itself correctly
        surfaces it as new.
        """
        return (self.rule, self.path, self.context, self.snippet)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "context": self.context,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            context=str(data["context"]),
            snippet=str(data["snippet"]),
        )


_SUPPRESS_RE = re.compile(
    r"#\s*skylint:\s*ignore\[(?P<rules>[A-Z0-9*,\s]+)\]\s*(?P<reason>.*)$"
)


class ModuleContext:
    """One parsed source file plus the navigation aids rules need."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        #: line number -> (set of suppressed rule ids, reason text)
        self.suppressions: Dict[int, Tuple[Set[str], str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                ids = {r.strip() for r in match.group("rules").split(",") if r.strip()}
                self.suppressions[lineno] = (ids, match.group("reason").strip())
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    @classmethod
    def from_file(cls, path: Path, root: Path) -> "ModuleContext":
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = path
        return cls(rel.as_posix(), path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_context(self, node: ast.AST) -> str:
        """``Class.method`` (innermost def/class chain) for a node."""
        names: List[str] = []
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(anc.name)
        return ".".join(reversed(names)) or "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional["ast.FunctionDef | ast.AsyncFunctionDef"]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        entry = self.suppressions.get(lineno)
        if entry is None:
            return False
        ids, _reason = entry
        return "*" in ids or rule_id in ids

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule.id,
            severity=severity or rule.severity,
            path=self.relpath,
            line=lineno,
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            context=self.enclosing_context(node),
            snippet=self.source_line(lineno),
        )


class Project:
    """Cross-module facts shared by every rule in one run.

    ``superseding`` names the whole-program rules active in this run:
    a module rule whose approximation a program rule replaces (SKY101
    under SKY602, SKY503's blocking checks under SKY601) consults it
    and steps back, so per-file runs keep the fallback behaviour while
    whole-program runs never double-report.

    ``class_bases`` may be injected pre-built (the incremental engine
    derives it from cached summaries without re-parsing files); classes
    found in ``modules`` are merged on top.
    """

    def __init__(
        self,
        modules: Sequence[ModuleContext],
        superseding: Iterable[str] = (),
        class_bases: Optional[Dict[str, Set[str]]] = None,
    ) -> None:
        self.modules = list(modules)
        self.superseding: Set[str] = set(superseding)
        #: class name -> set of textual base-class names, across all files.
        self.class_bases: Dict[str, Set[str]] = {
            name: set(bases) for name, bases in (class_bases or {}).items()
        }
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases = {
                        base.id if isinstance(base, ast.Name) else _attr_tail(base)
                        for base in node.bases
                    }
                    self.class_bases.setdefault(node.name, set()).update(
                        b for b in bases if b
                    )

    def inherits_from(self, class_name: str, root: str) -> bool:
        """Transitive, name-based subclass test (``DSUD`` → ``Coordinator``)."""
        seen: Set[str] = set()
        frontier = [class_name]
        while frontier:
            name = frontier.pop()
            if name == root:
                return True
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self.class_bases.get(name, ()))
        return False


class Rule:
    """Base class: subclasses define ``id``/``name``/``severity`` and ``check``."""

    id: str = "SKY000"
    name: str = "abstract"
    severity: str = Severity.WARNING
    description: str = ""
    #: id of the whole-program rule that replaces this one when active
    #: (the module rule then acts as a per-file fallback only).
    superseded_by: Optional[str] = None
    #: id of the module rule this (program) rule replaces, if any.
    supersedes: Optional[str] = None

    def check(self, module: ModuleContext, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def applies_to(self, module: ModuleContext) -> bool:
        """Path-based scoping hook; default is every module."""
        return True


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted source form: ``self.stats.record``, ``np.random.default_rng``.

    Call nodes in the chain contribute ``()`` so receivers like
    ``self._broadcast_pool().map`` stay recognisable.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    if isinstance(node, ast.Call):
        prefix = dotted_name(node.func)
        return f"{prefix}()" if prefix else ""
    return ""


def _attr_tail(node: ast.AST) -> str:
    return node.attr if isinstance(node, ast.Attribute) else ""


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def module_findings(
    module: ModuleContext,
    rules: Sequence[Rule],
    project: Project,
) -> List[Finding]:
    """Run module rules over one file: findings, suppressions honoured.

    A ``# skylint: ignore[...]`` comment with no reason text is itself
    reported (SKY000): a suppression must justify the invariant it waives.
    """
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module, project):
            if module.is_suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    for lineno, (ids, reason) in sorted(module.suppressions.items()):
        if not reason:
            findings.append(
                Finding(
                    rule="SKY000",
                    severity=Severity.ERROR,
                    path=module.relpath,
                    line=lineno,
                    column=1,
                    message=(
                        "skylint suppression without a reason: say why "
                        f"{sorted(ids)} may be ignored here"
                    ),
                    context="<module>",
                    snippet=module.source_line(lineno),
                )
            )
    return findings


def run_rules(
    modules: Sequence[ModuleContext],
    rules: Sequence[Rule],
    superseding: Iterable[str] = (),
) -> List[Finding]:
    """Run every rule over every module (the non-incremental driver)."""
    project = Project(modules, superseding=superseding)
    findings: List[Finding] = []
    for module in modules:
        findings.extend(module_findings(module, rules, project))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings


def analyze_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Finding]:
    """Parse every ``.py`` under ``paths`` and run ``rules`` over them."""
    root = root or Path.cwd()
    modules = [
        ModuleContext.from_file(path, root) for path in iter_source_files(paths)
    ]
    return run_rules(modules, rules)


def iter_rule_findings(
    findings: Iterable[Finding], severity: str
) -> List[Finding]:
    return [f for f in findings if f.severity == severity]

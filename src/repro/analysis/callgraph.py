"""Phase 2 of the whole-program analyzer: the project call graph.

Links the per-file :class:`~repro.analysis.summaries.ModuleSummary`
objects into a :class:`Program` — functions keyed by
``relpath::Qual.name``, call edges resolved from raw dotted callee text
— and defines :class:`ProgramRule`, the base class for the SKY6xx
interprocedural family.

Call resolution is deliberately conservative: an edge exists only when
the target is near-certain —

* ``self.m(...)`` / ``cls.m(...)`` → the method on the caller's class
  or a (name-resolved) base class;
* ``self.attr.m(...)`` → the method on the class ``attr`` was
  constructed or annotated as in ``__init__``;
* ``f(...)`` → a module-level function, an imported function, or an
  imported/local class constructor;
* ``alias.f(...)`` → a module-level function of an imported module;
* ``obj.m(...)`` on an untyped receiver → only when exactly **one**
  class in the whole program defines ``m`` and ``m`` is not an ambient
  name (``close``, ``get``, ``append`` …).

Unresolved calls simply have no edge — a missing edge can hide a
finding but never invent one.  Generator functions are a hard call
boundary: *calling* one executes nothing, so blocking-reachability
never propagates through them (the serving layer's
``next(self._steps)`` drive of a sync coordinator is the documented
example — see ROADMAP).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .framework import Finding, Rule
from .summaries import (
    BillFact,
    BlockFact,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    RpcFact,
    Site,
)

__all__ = ["Program", "ProgramFunction", "ProgramRule"]


#: Method names too ubiquitous for unique-definer fallback resolution:
#: an edge guessed from one of these is more likely stdlib/duck-typed
#: than the single repo class that happens to define it.
_AMBIENT_METHODS = frozenset(
    {
        "append", "appendleft", "add", "get", "put", "pop", "popleft",
        "items", "keys", "values", "update", "extend", "remove", "sort",
        "split", "strip", "join", "read", "write", "open", "close",
        "run", "send", "recv", "submit", "map", "result", "done",
        "cancel", "shutdown", "acquire", "release", "wait", "notify",
        "notify_all", "set", "clear", "copy", "index", "count",
        "format", "encode", "decode", "flush", "to_dict", "from_dict",
        "info", "debug", "warning", "error", "exception", "name",
        "start", "stop", "reset", "register", "record",
    }
)


class ProgramFunction:
    """One function in the linked program."""

    def __init__(self, module: ModuleSummary, summary: FunctionSummary) -> None:
        self.module = module
        self.summary = summary
        self.key = f"{module.relpath}::{summary.qualname}"
        #: resolved call edges, with the raw callee text that produced them
        self.callees: List[Tuple["ProgramFunction", str, Site]] = []
        self.callers: List["ProgramFunction"] = []
        #: blocking facts synthesized by linking (sync-endpoint RPCs)
        self.linked_blocking: List[BlockFact] = []
        #: nested defs lexically inside this function
        self.children: List["ProgramFunction"] = []

    @property
    def is_async(self) -> bool:
        return self.summary.is_async

    @property
    def is_generator(self) -> bool:
        return self.summary.is_generator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProgramFunction {self.key}>"


class Program:
    """The linked whole-program view phase-2 rules run over."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {s.relpath: s for s in summaries}
        self.by_module_name: Dict[str, ModuleSummary] = {
            s.module_name: s for s in summaries
        }
        self.functions: Dict[str, ProgramFunction] = {}
        #: class name -> [(module, summary)] definitions
        self.classes: Dict[str, List[Tuple[ModuleSummary, ClassSummary]]] = {}
        self.class_bases: Dict[str, Set[str]] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        for module in summaries:
            for cls in module.classes.values():
                self.classes.setdefault(cls.name, []).append((module, cls))
                self.class_bases.setdefault(cls.name, set()).update(cls.bases)
            for fn in module.functions.values():
                pf = ProgramFunction(module, fn)
                self.functions[pf.key] = pf
        for pf in self.functions.values():
            if pf.summary.class_name is not None and pf.summary.parent is None:
                self._methods_by_name.setdefault(pf.summary.name, []).append(pf.key)
        self._link()

    # ------------------------------------------------------------------
    # linking
    # ------------------------------------------------------------------

    def _link(self) -> None:
        for pf in self.functions.values():
            # Implicit edge: defining a nested function. Conservative
            # and cheap — the coordinator invokes its nested thunks.
            if pf.summary.parent is not None:
                parent_key = f"{pf.module.relpath}::{pf.summary.parent}"
                parent = self.functions.get(parent_key)
                if parent is not None:
                    parent.children.append(pf)
                    parent.callees.append(
                        (
                            pf,
                            pf.summary.name,
                            Site(pf.summary.lineno, 1, pf.summary.qualname, ""),
                        )
                    )
                    pf.callers.append(parent)
            for call in pf.summary.calls:
                target = self.resolve(pf, call.callee)
                if target is None:
                    continue
                if self._is_sync_endpoint_stub(target):
                    # A resolved call onto the *sync* SiteEndpoint
                    # protocol: network I/O with no await point.
                    pf.linked_blocking.append(
                        BlockFact(name=call.callee, kind="sync-rpc", site=call.site)
                    )
                    continue
                pf.callees.append((target, call.callee, call.site))
                target.callers.append(pf)

    @staticmethod
    def _is_sync_endpoint_stub(target: ProgramFunction) -> bool:
        return (
            target.summary.class_name == "SiteEndpoint"
            and target.module.relpath.endswith("net/transport.py")
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve(self, caller: ProgramFunction, raw: str) -> Optional[ProgramFunction]:
        parts = raw.split(".")
        if parts[0] in ("self", "cls") and caller.summary.class_name is not None:
            if len(parts) == 2:
                return self.resolve_method(
                    caller.summary.class_name, parts[1], caller.module
                )
            if len(parts) == 3:
                attr_type = self._attr_type(caller.summary.class_name, parts[1])
                if attr_type is not None:
                    return self.resolve_method(attr_type, parts[2], caller.module)
            return None
        if len(parts) == 1:
            return self._resolve_bare(caller, parts[0])
        if len(parts) >= 2:
            resolved = self._resolve_imported(caller, parts)
            if resolved is not None:
                return resolved
        return self._resolve_unique_method(parts[-1])

    def _resolve_bare(self, caller: ProgramFunction, name: str) -> Optional[ProgramFunction]:
        local = self.functions.get(f"{caller.module.relpath}::{name}")
        if local is not None:
            return local
        if name in caller.module.classes:
            return self.resolve_method(name, "__init__", caller.module)
        target = caller.module.imports.get(name)
        if target is not None:
            mod_name, _, attr = target.rpartition(".")
            module = self.by_module_name.get(mod_name)
            if module is not None:
                fn = self.functions.get(f"{module.relpath}::{attr}")
                if fn is not None:
                    return fn
                if attr in module.classes:
                    return self.resolve_method(attr, "__init__", module)
        if name in self.classes and len(self.classes[name]) == 1:
            return self.resolve_method(name, "__init__", caller.module)
        return None

    def _resolve_imported(
        self, caller: ProgramFunction, parts: List[str]
    ) -> Optional[ProgramFunction]:
        target = caller.module.imports.get(parts[0])
        if target is None:
            return None
        module = self.by_module_name.get(target)
        if module is not None and len(parts) == 2:
            fn = self.functions.get(f"{module.relpath}::{parts[1]}")
            if fn is not None:
                return fn
            if parts[1] in module.classes:
                return self.resolve_method(parts[1], "__init__", module)
            return None
        # `from pkg import Class` used as `Class.method(...)`
        _, _, attr = target.rpartition(".")
        if attr in self.classes and len(parts) == 2:
            return self.resolve_method(attr, parts[1], caller.module)
        return None

    def _resolve_unique_method(self, method: str) -> Optional[ProgramFunction]:
        if method in _AMBIENT_METHODS:
            return None
        keys = self._methods_by_name.get(method, [])
        if len(keys) == 1:
            return self.functions[keys[0]]
        return None

    def resolve_method(
        self, class_name: str, method: str, prefer: Optional[ModuleSummary]
    ) -> Optional[ProgramFunction]:
        """Method lookup by class name, walking name-resolved bases."""
        seen: Set[str] = set()
        frontier = [class_name]
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            defs = self.classes.get(name, [])
            ordered = sorted(
                defs,
                key=lambda mc: (prefer is None or mc[0] is not prefer, mc[0].relpath),
            )
            for module, _cls in ordered:
                fn = self.functions.get(f"{module.relpath}::{name}.{method}")
                if fn is not None:
                    return fn
            frontier.extend(sorted(self.class_bases.get(name, ())))
        return None

    def _attr_type(self, class_name: str, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        frontier = [class_name]
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for _module, cls in self.classes.get(name, []):
                if attr in cls.attr_types:
                    return cls.attr_types[attr]
            frontier.extend(sorted(self.class_bases.get(name, ())))
        return None

    # ------------------------------------------------------------------
    # lexical aggregation (outermost-function attribution, as SKY101 had)
    # ------------------------------------------------------------------

    def toplevel(self, pf: ProgramFunction) -> ProgramFunction:
        current = pf
        while current.summary.parent is not None:
            parent = self.functions.get(
                f"{current.module.relpath}::{current.summary.parent}"
            )
            if parent is None:
                break
            current = parent
        return current

    def lexical_rpcs(self, pf: ProgramFunction) -> List[RpcFact]:
        facts = list(pf.summary.rpcs)
        for child in pf.children:
            facts.extend(self.lexical_rpcs(child))
        return facts

    def lexical_bills(self, pf: ProgramFunction) -> List[BillFact]:
        facts = list(pf.summary.bills)
        for child in pf.children:
            facts.extend(self.lexical_bills(child))
        return facts

    def is_suppressed(self, relpath: str, rule_id: str, lineno: int) -> bool:
        module = self.modules.get(relpath)
        return module is not None and module.is_suppressed(rule_id, lineno)


class ProgramRule(Rule):
    """Base class for whole-program (SKY6xx) rules.

    Subclasses implement :meth:`check_program` over a linked
    :class:`Program` instead of per-module :meth:`check`.  The driver
    honours ``# skylint: ignore[...]`` suppressions on the finding's
    anchor line exactly as for module rules.
    """

    def check_program(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: object, project: object) -> Iterator[Finding]:
        return iter(())

    def finding_at(
        self,
        module: ModuleSummary,
        site: Site,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=module.relpath,
            line=site.lineno,
            column=site.col,
            message=message,
            context=site.context,
            snippet=site.snippet,
        )
